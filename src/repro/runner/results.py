"""Result objects of the sweep runner.

:class:`EntryResult` is the per-task outcome: the full serialised
:class:`~repro.report.ImplementabilityReport`, the traversal statistics,
the expected-metadata mismatches and the execution status.  It exists in
exactly one schema -- :meth:`EntryResult.to_dict` -- which is what worker
processes ship over their result pipe, what the
:class:`~repro.runner.store.RunStore` persists as JSONL, and what the
CLI's ``--json`` report emits.

:class:`SweepResult` aggregates the ordered entry results of one sweep
with the counts the CLI summarises and the determinism digest the tests
compare across worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.report import ImplementabilityReport

#: Execution statuses an entry can end in.  ``ok``/``mismatch`` carry a
#: full report; ``error``/``timeout`` carry a message instead.
STATUSES = ("ok", "mismatch", "error", "timeout")

#: Traversal-statistics fields that vary with execution circumstances
#: (wall clock, manager working set, operation-cache state, warm and
#: delta-seeded starts) rather than with the verdict; stripped from
#: :meth:`EntryResult.stable_dict` so stable JSON stays byte-identical
#: across backends, machines and BDD-cache states.  ``iterations``,
#: ``images_computed`` and ``peak_nodes`` joined the list with the delta
#: warm-starts of :mod:`repro.delta`: a seeded traversal walks a
#: different path to the *same* canonical fixpoint, so only the
#: fixpoint-derived fields (states, final nodes, variables) stay stable.
VOLATILE_TRAVERSAL_FIELDS = ("wall_time_s", "peak_live_nodes",
                             "cache_lookups", "cache_hits",
                             "iterations", "images_computed", "peak_nodes")


@dataclass
class EntryResult:
    """Outcome of one sweep task."""

    name: str
    status: str
    engine: str
    fingerprint: str
    report: Optional[Dict[str, object]] = None
    traversal: Optional[Dict[str, int]] = None
    mismatches: List[str] = field(default_factory=list)
    error: Optional[str] = None
    duration: float = 0.0
    #: True when this result was served from the RunStore instead of
    #: being recomputed (never persisted as True: the cache stores the
    #: original computation).
    cached: bool = False
    #: Execution provenance stamped by the runner -- which backend and
    #: shard computed this result.  Persisted with the record and kept
    #: through :meth:`~repro.runner.store.RunStore.merge`, so a report
    #: assembled from N shard stores still says where each entry ran.
    #: Excluded from :meth:`stable_dict` (provenance, like timing, must
    #: not break cross-backend byte-identity).
    provenance: Optional[Dict[str, str]] = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown entry status {self.status!r}")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def display_status(self) -> str:
        """The status tag the CLI prints (``cached`` marks provenance).

        Only ``ok`` results can be cached: the store never serves error
        or timeout records, and cached mismatches print ``MISMATCH``.
        """
        if self.status == "ok":
            return "cached" if self.cached else "ok"
        return self.status.upper()

    def report_object(self) -> Optional[ImplementabilityReport]:
        """The deserialised report (``None`` for error/timeout results)."""
        if self.report is None:
            return None
        return ImplementabilityReport.from_dict(self.report)

    # ------------------------------------------------------------------
    # The one schema (pipes, JSONL cache, --json report)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "engine": self.engine,
            "fingerprint": self.fingerprint,
            "report": dict(self.report) if self.report is not None else None,
            "traversal": (dict(self.traversal)
                          if self.traversal is not None else None),
            "mismatches": list(self.mismatches),
            "error": self.error,
            "duration": self.duration,
            "cached": self.cached,
            "provenance": (dict(self.provenance)
                           if self.provenance is not None else None),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "EntryResult":
        return cls(
            name=str(data["name"]),
            status=str(data["status"]),
            engine=str(data["engine"]),
            fingerprint=str(data["fingerprint"]),
            report=data.get("report"),
            traversal=data.get("traversal"),
            mismatches=list(data.get("mismatches") or []),
            error=data.get("error"),
            duration=float(data.get("duration") or 0.0),
            cached=bool(data.get("cached", False)),
            provenance=data.get("provenance"))

    def stable_dict(self) -> Dict[str, object]:
        """The timing-free view: identical across worker counts and cache
        states for the same task content (the determinism contract the
        runner tests pin)."""
        data = self.to_dict()
        del data["duration"]
        del data["cached"]
        del data["provenance"]
        if data["report"] is not None:
            data["report"] = dict(data["report"])
            data["report"]["timings"] = None
            # Path-dependent / provenance report fields (see
            # VOLATILE_TRAVERSAL_FIELDS on peak nodes; ``delta`` is
            # execution provenance by construction).
            data["report"]["bdd_peak_nodes"] = None
            data["report"]["delta"] = None
        if data["traversal"] is not None:
            data["traversal"] = {
                key: value for key, value in data["traversal"].items()
                if key not in VOLATILE_TRAVERSAL_FIELDS}
        return data


@dataclass
class SweepResult:
    """Ordered outcome of one sweep (one shard's worth of tasks)."""

    engine: str
    jobs: int
    shard: str
    #: Name of the execution backend that ran the sweep (``merge`` for
    #: reports assembled from merged shard stores; each entry's
    #: ``provenance`` then records the backend that actually computed it).
    backend: str = "process"
    results: List[EntryResult] = field(default_factory=list)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def _count(self, status: str) -> int:
        return sum(1 for result in self.results if result.status == status)

    @property
    def matching(self) -> int:
        return self._count("ok")

    @property
    def mismatching(self) -> int:
        return self._count("mismatch")

    @property
    def errors(self) -> int:
        """Entries that produced no verdict (worker error or timeout)."""
        return self._count("error") + self._count("timeout")

    @property
    def cached(self) -> int:
        return sum(1 for result in self.results if result.cached)

    @property
    def succeeded(self) -> bool:
        return self.mismatching == 0 and self.errors == 0

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "jobs": self.jobs,
            "shard": self.shard,
            "backend": self.backend,
            "total": len(self.results),
            "matching": self.matching,
            "mismatching": self.mismatching,
            "errors": self.errors,
            "cached": self.cached,
            "entries": [result.to_dict() for result in self.results],
        }

    def stable_json_dict(self) -> Dict[str, object]:
        """Timing-free view for determinism comparisons (see
        :meth:`EntryResult.stable_dict`); also independent of ``jobs``,
        ``backend`` and cache state -- the cross-backend and shard-merge
        byte-identity contract the tests and the CI gate compare."""
        return {
            "engine": self.engine,
            "shard": self.shard,
            "entries": [result.stable_dict() for result in self.results],
        }
