"""The persistent result cache of the sweep runner.

A :class:`RunStore` lives in a cache directory and persists every
computed :class:`~repro.runner.results.EntryResult` as one JSON line of
``results.jsonl`` (append-only, latest record per ``(name, fingerprint)``
key wins).  A subsequent sweep looks results up by the same key: the
fingerprint hashes the entry's canonical ``.g`` text plus the engine
configuration (see :attr:`repro.runner.plan.SweepTask.fingerprint`), so
editing a specification, switching engines or bumping the result schema
invalidates exactly the affected entries and nothing else -- and because
the key includes the fingerprint, sweeps with different engine configs
(or alternating content edits) can share one cache directory without
evicting each other.

Error and timeout records are persisted (they are useful history) but
never *served* as cache hits -- a failed entry is always retried on the
next sweep.  Corrupt lines -- most commonly the truncated trailing line a
killed sweep leaves behind -- are skipped with a :class:`RunStoreWarning`
on load (never a crash: resuming from exactly that state is the point)
and dropped for good by :meth:`RunStore.compact`.

Beyond caching, the store is the unit of distribution: N machines sweep
disjoint ``--shard i/N`` slices into their own stores, and
:meth:`RunStore.merge` combines them into one (verdict records beat
retryable failures; identical keys are deterministic by construction).
Long-lived stores are bounded by :meth:`RunStore.gc`, which evicts
records beyond ``max_entries`` (oldest first) or older than ``max_age``
seconds -- every record is stamped with its ``stored_at`` time for
exactly this.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from typing import Dict, Optional, Tuple, Union

from repro.runner.results import EntryResult

RESULTS_FILE = "results.jsonl"

#: Statuses that carry a complete, reproducible verdict.  Only these are
#: served as cache hits, and they win fingerprint conflicts on merge.
_VERDICT_STATUSES = ("ok", "mismatch")


class RunStoreWarning(UserWarning):
    """A non-fatal store problem (e.g. a corrupt JSONL line skipped)."""


class RunStore:
    """JSONL-backed persistent cache of sweep entry results."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, RESULTS_FILE)
        self._index: Dict[Tuple[str, str], Dict[str, object]] = {}
        #: Corrupt lines skipped by the last load; ``compact()`` repairs
        #: the file (resume flows check this to know a repair is due).
        self.skipped_lines = 0
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = (record["name"], record["fingerprint"])
                except (ValueError, TypeError, KeyError):
                    # The classic killed-sweep state: a trailing line cut
                    # mid-write.  Never fatal -- resume depends on loading
                    # everything that *did* land.
                    self.skipped_lines += 1
                    warnings.warn(
                        f"{self.path}:{number}: skipping corrupt result "
                        f"record (interrupted write?); compact() repairs "
                        f"the file", RunStoreWarning, stacklevel=2)
                    continue
                self._index[key] = record

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, name: str) -> bool:
        return any(key_name == name for key_name, _ in self._index)

    # ------------------------------------------------------------------
    # Cache protocol
    # ------------------------------------------------------------------
    def lookup(self, name: str, fingerprint: str) -> Optional[EntryResult]:
        """A reusable result for ``name``, or ``None``.

        Serves only records whose fingerprint matches the current task
        content and that actually carry a verdict; the returned result is
        marked :attr:`~repro.runner.results.EntryResult.cached`.
        """
        record = self._index.get((name, fingerprint))
        if record is None:
            return None
        if record.get("status") not in _VERDICT_STATUSES:
            return None  # always retry errors and timeouts
        result = EntryResult.from_dict(record)
        result.cached = True
        return result

    def duration_hint(self, name: str) -> Optional[float]:
        """Longest recorded compute duration for entry ``name``.

        Scheduling history, not a verdict: the lease coordinator uses it
        for longest-job-first issue order.  Any fingerprint counts --
        config and content edits change the fingerprint but rarely the
        order of magnitude -- and ``None`` means the entry was never
        seen, which schedulers should treat as potentially long.
        """
        durations = [float(record.get("duration") or 0.0)
                     for (key_name, _), record in self._index.items()
                     if key_name == name]
        return max(durations) if durations else None

    def put(self, result: EntryResult) -> None:
        """Persist a freshly computed result (cache hits are not re-written).

        Records are stamped with their ``stored_at`` wall-clock time,
        which orders :meth:`gc` eviction and breaks merge ties between
        retryable failures.
        """
        if result.cached:
            return
        record = result.to_dict()
        record["stored_at"] = time.time()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._index[(result.name, result.fingerprint)] = record

    def compact(self) -> None:
        """Rewrite the JSONL file keeping the latest record per
        ``(name, fingerprint)`` key, dropping corrupt lines."""
        with open(self.path + ".tmp", "w", encoding="utf-8") as handle:
            for record in self._index.values():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(self.path + ".tmp", self.path)
        self.skipped_lines = 0

    # ------------------------------------------------------------------
    # Distribution: merging shard stores
    # ------------------------------------------------------------------
    def merge(self, other: Union["RunStore", str],
              compact: bool = True) -> int:
        """Adopt ``other``'s records into this store; returns the count.

        This is how N ``--shard i/N`` sweeps on different machines become
        one store: each shard sweeps into its own directory, the
        directories are shipped to one place and merged.  Conflicts on a
        ``(name, fingerprint)`` key resolve deterministically:

        * a verdict record (``ok``/``mismatch``) beats a retryable one
          (``error``/``timeout``) -- a machine that finished the entry
          outranks one that crashed on it;
        * two verdict records are interchangeable by construction (the
          fingerprint pins content, config and schema; verification is
          deterministic), so the incumbent is kept;
        * two retryable records keep the newest (``stored_at``),
          incumbent on ties -- re-merging an already-merged store adopts
          nothing.

        A string source must be an *existing* directory (a typo'd shard
        path must not silently merge as an empty store).  The merged
        index is compacted to disk before returning; pass
        ``compact=False`` when merging several sources in a row and call
        :meth:`compact` once at the end.
        """
        if isinstance(other, str):
            if not os.path.isdir(other):
                raise ValueError(
                    f"cannot merge {other!r}: no such run-store directory")
            other = RunStore(other)
        adopted = 0
        for key, theirs in other._index.items():
            mine = self._index.get(key)
            if mine is None or self._prefers(theirs, mine):
                self._index[key] = dict(theirs)
                adopted += 1
        if adopted and compact:
            self.compact()
        return adopted

    @staticmethod
    def _prefers(theirs: Dict[str, object],
                 mine: Dict[str, object]) -> bool:
        theirs_verdict = theirs.get("status") in _VERDICT_STATUSES
        mine_verdict = mine.get("status") in _VERDICT_STATUSES
        if theirs_verdict != mine_verdict:
            return theirs_verdict
        if not theirs_verdict:  # both retryable: newest information wins
            return _stored_at(theirs) > _stored_at(mine)
        return False  # both verdicts: deterministic, keep the incumbent

    # ------------------------------------------------------------------
    # Eviction: bounding long-lived stores
    # ------------------------------------------------------------------
    def gc(self, max_entries: Optional[int] = None,
           max_age: Optional[float] = None,
           now: Optional[float] = None) -> int:
        """Evict records by age and/or count; returns how many were dropped.

        ``max_age`` drops every record stored more than that many seconds
        before ``now`` (default: the current time; records predating the
        ``stored_at`` stamp count as infinitely old).  ``max_entries``
        then trims the survivors to the N most recently stored, evicting
        oldest first (file order breaks stamp ties).  The file is
        compacted when anything was evicted.
        """
        if max_entries is None and max_age is None:
            raise ValueError("gc() needs max_entries and/or max_age")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if max_age is not None and max_age < 0:
            raise ValueError(f"max_age must be >= 0, got {max_age}")
        now = time.time() if now is None else now

        doomed = set()
        if max_age is not None:
            for key, record in self._index.items():
                if now - _stored_at(record) > max_age:
                    doomed.add(key)
        if max_entries is not None:
            survivors = [key for key in self._index if key not in doomed]
            excess = len(survivors) - max_entries
            if excess > 0:
                oldest_first = sorted(
                    range(len(survivors)),
                    key=lambda i: (_stored_at(self._index[survivors[i]]), i))
                doomed.update(survivors[i] for i in oldest_first[:excess])
        for key in doomed:
            del self._index[key]
        if doomed:
            self.compact()
        return len(doomed)


def _stored_at(record: Dict[str, object]) -> float:
    try:
        return float(record.get("stored_at") or 0.0)
    except (TypeError, ValueError):
        return 0.0


# ----------------------------------------------------------------------
# CLI support: --cache-gc specs
# ----------------------------------------------------------------------
_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_gc_spec(text: str) -> Dict[str, float]:
    """Parse a ``--cache-gc`` spec into :meth:`RunStore.gc` keywords.

    The spec is comma-separated ``entries=N`` and/or ``age=AGE`` parts,
    where ``AGE`` is seconds with an optional ``s``/``m``/``h``/``d``
    suffix: ``entries=1000``, ``age=7d``, ``entries=500,age=12h``.
    """
    keywords: Dict[str, float] = {}
    for part in text.split(","):
        key, equals, value = part.strip().partition("=")
        if not equals:
            raise ValueError(
                f"invalid cache-gc spec part {part.strip()!r} in {text!r}; "
                f"expected entries=N and/or age=AGE (e.g. entries=1000, "
                f"age=7d)")
        if key == "entries":
            try:
                entries = int(value)
                if entries < 0:
                    raise ValueError
            except ValueError:
                raise ValueError(
                    f"invalid entry count {value!r} in cache-gc spec "
                    f"{text!r}") from None
            keywords["max_entries"] = entries
        elif key == "age":
            scale = 1.0
            if value and value[-1] in _AGE_UNITS:
                scale = _AGE_UNITS[value[-1]]
                value = value[:-1]
            try:
                age = float(value) * scale
                if age < 0:
                    raise ValueError
            except ValueError:
                raise ValueError(
                    f"invalid age {part.strip()!r} in cache-gc spec "
                    f"{text!r}; expected non-negative seconds or a "
                    f"s/m/h/d suffix (e.g. age=7d)") from None
            keywords["max_age"] = age
        else:
            raise ValueError(
                f"unknown cache-gc key {key!r} in {text!r}; expected "
                f"'entries' and/or 'age'")
    if not keywords:
        raise ValueError(f"empty cache-gc spec {text!r}")
    return keywords
