"""The persistent result cache of the sweep runner.

A :class:`RunStore` lives in a cache directory and persists every
computed :class:`~repro.runner.results.EntryResult` as one JSON line of
``results.jsonl`` (append-only, latest record per ``(name, fingerprint)``
key wins).  A subsequent sweep looks results up by the same key: the
fingerprint hashes the entry's canonical ``.g`` text plus the engine
configuration (see :attr:`repro.runner.plan.SweepTask.fingerprint`), so
editing a specification, switching engines or bumping the result schema
invalidates exactly the affected entries and nothing else -- and because
the key includes the fingerprint, sweeps with different engine configs
(or alternating content edits) can share one cache directory without
evicting each other.

Error and timeout records are persisted (they are useful history) but
never *served* as cache hits -- a failed entry is always retried on the
next sweep.  Corrupt lines (e.g. from an interrupted write) are skipped
on load and dropped by :meth:`RunStore.compact`.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

from repro.runner.results import EntryResult

RESULTS_FILE = "results.jsonl"


class RunStore:
    """JSONL-backed persistent cache of sweep entry results."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, RESULTS_FILE)
        self._index: Dict[Tuple[str, str], Dict[str, object]] = {}
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = (record["name"], record["fingerprint"])
                except (ValueError, TypeError, KeyError):
                    continue  # interrupted write; compact() drops it
                self._index[key] = record

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, name: str) -> bool:
        return any(key_name == name for key_name, _ in self._index)

    # ------------------------------------------------------------------
    # Cache protocol
    # ------------------------------------------------------------------
    def lookup(self, name: str, fingerprint: str) -> Optional[EntryResult]:
        """A reusable result for ``name``, or ``None``.

        Serves only records whose fingerprint matches the current task
        content and that actually carry a verdict; the returned result is
        marked :attr:`~repro.runner.results.EntryResult.cached`.
        """
        record = self._index.get((name, fingerprint))
        if record is None:
            return None
        if record.get("status") not in ("ok", "mismatch"):
            return None  # always retry errors and timeouts
        result = EntryResult.from_dict(record)
        result.cached = True
        return result

    def put(self, result: EntryResult) -> None:
        """Persist a freshly computed result (cache hits are not re-written)."""
        if result.cached:
            return
        record = result.to_dict()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._index[(result.name, result.fingerprint)] = record

    def compact(self) -> None:
        """Rewrite the JSONL file keeping the latest record per
        ``(name, fingerprint)`` key, dropping corrupt lines."""
        with open(self.path + ".tmp", "w", encoding="utf-8") as handle:
            for record in self._index.values():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(self.path + ".tmp", self.path)
