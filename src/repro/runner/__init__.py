"""The sweep runner: parallel, sharded, cached corpus verification.

This subsystem owns sweep execution end to end and is what the
``batch-check`` CLI mode is a thin front-end over::

    from repro.runner import SweepPlan, ShardSpec, run_sweep

    plan = SweepPlan(jobs=4, shard=ShardSpec.parse("0/2"),
                     families=[("random_ring", range(1, 101))])
    sweep = run_sweep(plan, cache_dir=".repro-cache")
    for entry in sweep:
        print(entry.name, entry.display_status)

The moving parts:

* :class:`~repro.runner.plan.SweepPlan` / :class:`~repro.runner.plan.SweepTask`
  -- declarative sweep description, deterministic task expansion,
  round-robin :class:`~repro.runner.plan.ShardSpec` partitioning and the
  content fingerprints that key the cache;
* :mod:`~repro.runner.backends` -- the pluggable execution layer: an
  :class:`~repro.runner.backends.ExecutorBackend` registry with
  ``process`` (worker pool, per-entry timeouts), ``thread`` and
  ``serial`` built-ins, all producing byte-identical stable results;
* :mod:`~repro.runner.worker` -- self-contained task execution, every
  in-check failure reported as an ``error`` result;
* :class:`~repro.runner.store.RunStore` -- append-only JSONL persistence
  of entry results, fingerprint-validated cache hits, shard-store
  :meth:`~repro.runner.store.RunStore.merge` and
  :meth:`~repro.runner.store.RunStore.gc` eviction;
* :class:`~repro.runner.runner.SweepRunner` -- cache triage, backend
  dispatch, incremental persistence (resumable sweeps), deterministic
  result ordering.
"""

from repro.runner import backends
from repro.runner.backends import ExecutorBackend, UnknownBackendError
from repro.runner.plan import (
    PlanError,
    ShardSpec,
    SweepPlan,
    SweepTask,
    parse_family_spec,
)
from repro.runner.results import EntryResult, SweepResult
from repro.runner.runner import SweepRunner, run_sweep
from repro.runner.store import RunStore, RunStoreWarning, parse_gc_spec

__all__ = [
    "EntryResult",
    "ExecutorBackend",
    "PlanError",
    "RunStore",
    "RunStoreWarning",
    "ShardSpec",
    "SweepPlan",
    "SweepRunner",
    "SweepTask",
    "SweepResult",
    "UnknownBackendError",
    "backends",
    "parse_family_spec",
    "parse_gc_spec",
    "run_sweep",
]
