"""Execution backends of the sweep runner: how fresh tasks actually run.

The :class:`~repro.runner.runner.SweepRunner` decides *what* to execute
(cache triage, result ordering, persistence); an :class:`ExecutorBackend`
decides *how* -- in-process, on a thread pool, or on a pool of worker
processes.  The module mirrors :mod:`repro.engines`: a small protocol, a
name registry with did-you-mean errors, and built-in implementations::

    from repro.runner import backends

    backends.available()       # ["process", "thread", "serial", "asyncio"]
    backend = backends.get("thread")

    backends.register("remote", MyRemoteBackend())   # plug-ins welcome

Every backend receives the same ``(position, SweepTask)`` work items and
reports each finished :class:`~repro.runner.results.EntryResult` through
an ``emit`` callback, so the runner's output -- plan-ordered results,
:meth:`~repro.runner.results.SweepResult.stable_json_dict` -- is
byte-identical across backends (the parity tests and the CI sweep matrix
pin exactly that).  The differences are operational:

``process`` (the default)
    One worker process per task, bounded by ``jobs``.  The only backend
    that enforces per-entry timeouts (the scheduler terminates the
    worker) and survives hard crashes of a check.  With ``jobs=1`` it
    degrades to in-process execution -- zero fork overhead, the historic
    ``--jobs 1`` behaviour.
``thread``
    A ``jobs``-wide thread pool in this process.  No fork/spawn cost and
    shared imports, but no timeout enforcement and no isolation from
    interpreter-killing failures; best for IO-dominated or many-tiny-task
    sweeps.
``serial``
    Plain in-process loop, ignoring ``jobs``.  The reference
    implementation the others are compared against, and the easiest to
    debug (a ``pdb`` session sees the whole sweep).
``asyncio``
    An asyncio event loop driving a ``jobs``-wide thread pool through
    :func:`~repro.runner.worker.execute_payload_async` -- the exact
    machinery the :mod:`repro.serve` daemon schedules requests with, so
    the service's execution path is a first-class, parity-gated sweep
    backend.  Operationally like ``thread`` (no timeout enforcement,
    shared process); the event loop is owned by ``execute`` and must
    not already be running on the calling thread.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Sequence, Tuple

try:  # Protocol is 3.8+; keep a soft fallback for exotic interpreters
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from repro.api.errors import suggest
from repro.runner.plan import PlanError, SweepTask
from repro.runner.results import EntryResult
from repro.runner.worker import (
    child_main,
    execute_payload,
    execute_payload_async,
)

#: One unit of backend work: the task plus its position in the shard's
#: result list (``emit`` must be called with exactly that position).
WorkItem = Tuple[int, SweepTask]
EmitCallback = Callable[[int, EntryResult], None]

#: Seconds the process-pool scheduler sleeps when no worker produced
#: anything.
_POLL_INTERVAL = 0.005
#: Grace period for draining the result pipe of an already-exited worker.
_EXIT_DRAIN_TIMEOUT = 0.05


class UnknownBackendError(PlanError):
    """The requested execution backend is not registered."""

    def __init__(self, name: str, options: Sequence[str]) -> None:
        options = list(options)
        self.backend = name
        self.options = options
        super().__init__(
            f"unknown execution backend {name!r}; available: "
            f"{', '.join(options)}{suggest(name, options)}")


@runtime_checkable
class ExecutorBackend(Protocol):
    """The execution protocol: run work items, emit results as they finish.

    ``execute`` must call ``emit(position, result)`` exactly once per
    item, in any order and from any thread (the runner serialises its
    side).  ``supports_timeouts`` advertises whether per-entry timeouts
    are enforced; backends without it simply let a slow task run.
    """

    name: str
    supports_timeouts: bool

    def execute(self, items: Sequence[WorkItem], jobs: int,
                emit: EmitCallback) -> None:
        """Run every work item with at most ``jobs``-way concurrency."""
        ...  # pragma: no cover - protocol


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ExecutorBackend] = {}

#: The backend used when neither the plan nor the runner names one.
DEFAULT_BACKEND = "process"


def register(name: str, backend: ExecutorBackend,
             replace: bool = False) -> ExecutorBackend:
    """Register a backend under ``name`` (``replace=True`` to override)."""
    if name in _REGISTRY and not replace:
        raise ValueError(f"duplicate execution backend {name!r}")
    _REGISTRY[name] = backend
    return backend


def unregister(name: str) -> None:
    """Remove a registered backend (mainly for tests and plug-ins)."""
    _REGISTRY.pop(name, None)


def available() -> List[str]:
    """Every registered backend name, in registration order."""
    return list(_REGISTRY)


def get(name: str) -> ExecutorBackend:
    """Look up a backend; unknown names raise :class:`UnknownBackendError`
    with a did-you-mean suggestion."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, available()) from None


def resolve(backend) -> ExecutorBackend:
    """Coerce ``None`` / a name / an instance into a backend object."""
    if backend is None:
        return get(DEFAULT_BACKEND)
    if isinstance(backend, str):
        return get(backend)
    return backend


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------
def _execute_inline(items: Sequence[WorkItem], emit: EmitCallback) -> None:
    """Shared in-process loop (serial backend, process backend at jobs=1).

    Entry-level failures are still captured by the worker module;
    per-entry timeouts need process isolation and are not enforced here.
    """
    for position, task in items:
        emit(position,
             EntryResult.from_dict(execute_payload(task.to_payload())))


class SerialBackend:
    """Plain in-process execution, one task after another."""

    name = "serial"
    supports_timeouts = False

    def execute(self, items: Sequence[WorkItem], jobs: int,
                emit: EmitCallback) -> None:
        _execute_inline(items, emit)


class ThreadBackend:
    """A ``jobs``-wide thread pool in the current process.

    Each task builds its own pipeline/BDD manager, so tasks never share
    mutable engine state; the GIL still serialises pure-Python engine
    work, which makes this backend shine on IO-dominated sweeps and
    many-tiny-task plans rather than single huge traversals.
    """

    name = "thread"
    supports_timeouts = False

    def execute(self, items: Sequence[WorkItem], jobs: int,
                emit: EmitCallback) -> None:
        def run_one(item: WorkItem) -> None:
            position, task = item
            emit(position,
                 EntryResult.from_dict(execute_payload(task.to_payload())))

        with ThreadPoolExecutor(max_workers=max(1, jobs)) as pool:
            # list() propagates the first worker exception, if any.
            list(pool.map(run_one, items))


class AsyncioBackend:
    """An event loop scheduling tasks onto a bounded thread pool.

    The sweep-facing face of the :mod:`repro.serve` execution machinery:
    each work item becomes a coroutine that awaits
    :func:`~repro.runner.worker.execute_payload_async` under a
    ``jobs``-wide semaphore, exactly how the daemon's worker coroutines
    run queued jobs.  Results are emitted from the event-loop thread as
    their coroutines complete; like every backend, the runner re-orders
    them into plan order, so stable JSON is byte-identical with
    ``process``/``thread``/``serial`` (the sweep gate proves it).

    ``execute`` owns its event loop via :func:`asyncio.run`; calling it
    from a thread that already runs a loop is an error (the daemon does
    not -- it awaits the shared primitive directly).
    """

    name = "asyncio"
    supports_timeouts = False

    def execute(self, items: Sequence[WorkItem], jobs: int,
                emit: EmitCallback) -> None:
        asyncio.run(self._execute(list(items), max(1, jobs), emit))

    async def _execute(self, items: Sequence[WorkItem], jobs: int,
                       emit: EmitCallback) -> None:
        semaphore = asyncio.Semaphore(jobs)

        async def run_one(position: int, task: SweepTask) -> None:
            async with semaphore:
                result = await execute_payload_async(
                    task.to_payload(), executor=pool)
            emit(position, EntryResult.from_dict(result))

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            await asyncio.gather(*(run_one(position, task)
                                   for position, task in items))


class ProcessBackend:
    """One worker process per task, bounded concurrency (the default).

    Per-process isolation is what makes per-entry timeouts enforceable
    (the scheduler terminates the worker) and worker crashes reportable
    without losing the sweep.  ``jobs=1`` runs in-process instead: zero
    fork overhead, exceptions still captured per entry (the historic
    sequential mode; timeouts need ``jobs >= 2``).
    """

    name = "process"
    supports_timeouts = True

    def execute(self, items: Sequence[WorkItem], jobs: int,
                emit: EmitCallback) -> None:
        if jobs == 1:
            _execute_inline(items, emit)
            return
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        pending = deque(items)
        active: List[dict] = []
        try:
            while pending or active:
                while pending and len(active) < jobs:
                    active.append(self._start_worker(
                        context, *pending.popleft()))
                progressed = False
                for slot in list(active):
                    result = self._poll_worker(slot)
                    if result is None:
                        continue
                    emit(slot["position"], result)
                    active.remove(slot)
                    progressed = True
                if not progressed:
                    time.sleep(_POLL_INTERVAL)
        finally:
            for slot in active:  # interrupted sweep: don't leak workers
                slot["process"].terminate()
                slot["process"].join()
                slot["connection"].close()

    def _start_worker(self, context, position: int, task: SweepTask) -> dict:
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=child_main, args=(sender, task.to_payload()), daemon=True)
        process.start()
        sender.close()  # the child holds the only write end now
        deadline = (time.monotonic() + task.timeout
                    if task.timeout is not None else None)
        return {"position": position, "task": task, "process": process,
                "connection": receiver, "deadline": deadline}

    def _poll_worker(self, slot: dict) -> "EntryResult | None":
        """Collect a finished/failed/expired worker; ``None`` if running."""
        process, connection = slot["process"], slot["connection"]
        task: SweepTask = slot["task"]
        if connection.poll(0):
            result = self._receive(slot)
        elif not process.is_alive():
            # Exited without a visible result: drain the pipe once more
            # (the write may still be in flight), then report the crash.
            if connection.poll(_EXIT_DRAIN_TIMEOUT):
                result = self._receive(slot)
            else:
                result = self._failure(
                    task, "error",
                    f"worker exited with code {process.exitcode} "
                    f"before reporting a result")
        elif slot["deadline"] is not None \
                and time.monotonic() > slot["deadline"]:
            process.terminate()
            result = self._failure(
                task, "timeout", f"timed out after {task.timeout:g}s "
                f"(worker terminated)")
        else:
            return None
        process.join()
        connection.close()
        return result

    def _receive(self, slot: dict) -> EntryResult:
        try:
            return EntryResult.from_dict(slot["connection"].recv())
        except (EOFError, OSError) as error:
            return self._failure(
                slot["task"], "error",
                f"worker result pipe closed unexpectedly: {error}")

    @staticmethod
    def _failure(task: SweepTask, status: str, message: str) -> EntryResult:
        return EntryResult(
            name=task.name, status=status, engine=task.engine,
            fingerprint=task.fingerprint, error=message)


register("process", ProcessBackend())
register("thread", ThreadBackend())
register("serial", SerialBackend())
register("asyncio", AsyncioBackend())
