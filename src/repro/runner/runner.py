"""The sweep orchestrator: cache triage, worker pool, result collection.

:class:`SweepRunner` executes one :class:`~repro.runner.plan.SweepPlan`
shard end to end:

1. **Cache triage** -- every task whose ``(name, fingerprint)`` has a
   valid record in the :class:`~repro.runner.store.RunStore` is served
   from the cache (marked ``cached``) and never scheduled.
2. **Execution** -- the remaining tasks run either in-process
   (``jobs=1``: zero overhead, exceptions still captured per entry) or on
   a pool of ``jobs`` worker processes, one process per task, bounded
   concurrency.  Per-process isolation is what makes per-entry timeouts
   enforceable (the scheduler terminates the worker) and worker crashes
   reportable without losing the sweep.
3. **Collection** -- results are stored back into the RunStore and
   returned in plan order, so the output is deterministic regardless of
   worker count or completion order.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from typing import Callable, List, Optional

from repro.runner.plan import SweepPlan, SweepTask
from repro.runner.results import EntryResult, SweepResult
from repro.runner.store import RunStore
from repro.runner.worker import child_main, execute_payload

#: Seconds the scheduler sleeps when no worker has produced anything.
_POLL_INTERVAL = 0.005
#: Grace period for draining the result pipe of an already-exited worker.
_EXIT_DRAIN_TIMEOUT = 0.05

ProgressCallback = Callable[[EntryResult], None]


class SweepRunner:
    """Execute one sweep plan shard, optionally against a result cache.

    ``progress`` (when given) is invoked with every finished
    :class:`EntryResult` as it becomes available -- cache hits first, then
    computed results in completion order.
    """

    def __init__(self, plan: SweepPlan, store: Optional[RunStore] = None,
                 progress: Optional[ProgressCallback] = None) -> None:
        self.plan = plan
        self.store = store
        self.progress = progress

    def run(self) -> SweepResult:
        tasks = self.plan.shard_tasks()
        results: List[Optional[EntryResult]] = [None] * len(tasks)

        # NB: RunStore has __len__, so an empty store is falsy -- every
        # store test here must be an identity check, not truthiness.
        fresh: List[int] = []
        for position, task in enumerate(tasks):
            cached = (self.store.lookup(task.name, task.fingerprint)
                      if self.store is not None else None)
            if cached is not None:
                results[position] = cached
                self._report_progress(cached)
            else:
                fresh.append(position)

        if fresh:
            if self.plan.jobs == 1:
                self._run_sequential(tasks, fresh, results)
            else:
                self._run_parallel(tasks, fresh, results)

        if self.store is not None:
            for position in fresh:
                self.store.put(results[position])

        return SweepResult(
            engine=self.plan.engine, jobs=self.plan.jobs,
            shard=str(self.plan.shard), results=list(results))

    def _report_progress(self, result: EntryResult) -> None:
        if self.progress is not None:
            self.progress(result)

    # ------------------------------------------------------------------
    # In-process execution (jobs=1)
    # ------------------------------------------------------------------
    def _run_sequential(self, tasks: List[SweepTask], fresh: List[int],
                        results: List[Optional[EntryResult]]) -> None:
        """Run tasks in this process.

        Entry-level failures are still captured by the worker module;
        per-entry timeouts need process isolation and are not enforced
        here (documented CLI behaviour: timeouts require ``--jobs >= 2``).
        """
        for position in fresh:
            result = EntryResult.from_dict(
                execute_payload(tasks[position].to_payload()))
            results[position] = result
            self._report_progress(result)

    # ------------------------------------------------------------------
    # Worker-pool execution (jobs>=2)
    # ------------------------------------------------------------------
    def _run_parallel(self, tasks: List[SweepTask], fresh: List[int],
                      results: List[Optional[EntryResult]]) -> None:
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        pending = deque(fresh)
        active: List[dict] = []
        try:
            while pending or active:
                while pending and len(active) < self.plan.jobs:
                    active.append(self._start_worker(
                        context, pending.popleft(), tasks))
                progressed = False
                for slot in list(active):
                    result = self._poll_worker(slot)
                    if result is None:
                        continue
                    results[slot["position"]] = result
                    self._report_progress(result)
                    active.remove(slot)
                    progressed = True
                if not progressed:
                    time.sleep(_POLL_INTERVAL)
        finally:
            for slot in active:  # interrupted sweep: don't leak workers
                slot["process"].terminate()
                slot["process"].join()
                slot["connection"].close()

    def _start_worker(self, context, position: int,
                      tasks: List[SweepTask]) -> dict:
        task = tasks[position]
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=child_main, args=(sender, task.to_payload()), daemon=True)
        process.start()
        sender.close()  # the child holds the only write end now
        deadline = (time.monotonic() + task.timeout
                    if task.timeout is not None else None)
        return {"position": position, "task": task, "process": process,
                "connection": receiver, "deadline": deadline}

    def _poll_worker(self, slot: dict) -> Optional[EntryResult]:
        """Collect a finished/failed/expired worker; ``None`` if running."""
        process, connection = slot["process"], slot["connection"]
        task: SweepTask = slot["task"]
        if connection.poll(0):
            result = self._receive(slot)
        elif not process.is_alive():
            # Exited without a visible result: drain the pipe once more
            # (the write may still be in flight), then report the crash.
            if connection.poll(_EXIT_DRAIN_TIMEOUT):
                result = self._receive(slot)
            else:
                result = self._failure(
                    task, "error",
                    f"worker exited with code {process.exitcode} "
                    f"before reporting a result")
        elif slot["deadline"] is not None \
                and time.monotonic() > slot["deadline"]:
            process.terminate()
            result = self._failure(
                task, "timeout", f"timed out after {task.timeout:g}s "
                f"(worker terminated)")
        else:
            return None
        process.join()
        connection.close()
        return result

    def _receive(self, slot: dict) -> EntryResult:
        try:
            return EntryResult.from_dict(slot["connection"].recv())
        except (EOFError, OSError) as error:
            return self._failure(
                slot["task"], "error",
                f"worker result pipe closed unexpectedly: {error}")

    @staticmethod
    def _failure(task: SweepTask, status: str, message: str) -> EntryResult:
        return EntryResult(
            name=task.name, status=status, engine=task.engine,
            fingerprint=task.fingerprint, error=message)


def run_sweep(plan: SweepPlan, cache_dir: Optional[str] = None,
              progress: Optional[ProgressCallback] = None) -> SweepResult:
    """Convenience front door: build the store (if any) and run the plan."""
    store = RunStore(cache_dir) if cache_dir else None
    return SweepRunner(plan, store=store, progress=progress).run()
