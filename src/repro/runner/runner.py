"""The sweep orchestrator: cache triage, backend dispatch, collection.

:class:`SweepRunner` executes one :class:`~repro.runner.plan.SweepPlan`
shard end to end:

1. **Cache triage** -- every task whose ``(name, fingerprint)`` has a
   valid record in the :class:`~repro.runner.store.RunStore` is served
   from the cache (marked ``cached``) and never scheduled.  This is also
   what makes an interrupted sweep resumable: rerunning the same plan
   against the same store only schedules the missing fingerprints.
2. **Execution** -- the remaining tasks run on the selected
   :class:`~repro.runner.backends.ExecutorBackend` (``process`` worker
   pool by default, ``thread`` or ``serial`` in-process variants, or any
   registered plug-in), bounded by ``jobs``.
3. **Collection** -- every result is persisted into the RunStore *as it
   completes* (a killed sweep keeps everything already finished), stamped
   with its execution provenance (backend, shard), and returned in plan
   order, so the output is deterministic regardless of backend, worker
   count or completion order.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Callable, List, Optional, Union

from repro.runner import backends as backend_registry
from repro.runner.backends import ExecutorBackend
from repro.runner.plan import SweepPlan
from repro.runner.results import EntryResult, SweepResult
from repro.runner.store import RunStore

ProgressCallback = Callable[[EntryResult], None]


class SweepRunner:
    """Execute one sweep plan shard, optionally against a result cache.

    ``backend`` selects the execution backend -- a registered name, an
    :class:`~repro.runner.backends.ExecutorBackend` instance, or ``None``
    to use the plan's ``backend`` (falling back to the ``process``
    default).  ``progress`` (when given) is invoked with every finished
    :class:`EntryResult` as it becomes available -- cache hits first, then
    computed results in completion order.
    """

    def __init__(self, plan: SweepPlan, store: Optional[RunStore] = None,
                 progress: Optional[ProgressCallback] = None,
                 backend: Union[ExecutorBackend, str, None] = None) -> None:
        self.plan = plan
        self.store = store
        self.progress = progress
        self.backend = backend_registry.resolve(backend or plan.backend)
        # Backends may emit from worker threads; everything the runner
        # mutates on emit (results, store, progress) happens under this.
        self._emit_lock = threading.Lock()

    def run(self) -> SweepResult:
        tasks = self.plan.shard_tasks()
        results: List[Optional[EntryResult]] = [None] * len(tasks)

        # NB: RunStore has __len__, so an empty store is falsy -- every
        # store test here must be an identity check, not truthiness.
        # Fresh tasks are stamped with their execution provenance so the
        # worker's trace meta records who ran what where; the stamp is
        # outside every fingerprint, so cache triage happens first.
        provenance = {"backend": self.backend.name,
                      "shard": str(self.plan.shard)}
        fresh: List[backend_registry.WorkItem] = []
        for position, task in enumerate(tasks):
            cached = (self.store.lookup(task.name, task.fingerprint)
                      if self.store is not None else None)
            if cached is not None:
                results[position] = cached
                self._report_progress(cached)
            else:
                fresh.append((position,
                              replace(task, provenance=dict(provenance))))

        if fresh:
            self.backend.execute(fresh, self.plan.jobs,
                                 self._make_emit(results))

        return SweepResult(
            engine=self.plan.engine, jobs=self.plan.jobs,
            shard=str(self.plan.shard), backend=self.backend.name,
            results=list(results))

    def _make_emit(self, results: List[Optional[EntryResult]]):
        """The collection callback handed to the backend.

        Stamps execution provenance, persists the result immediately (so
        a killed sweep loses only in-flight tasks, not finished ones) and
        forwards it to the progress callback -- all under the emit lock,
        because thread backends call this concurrently.
        """
        provenance = {"backend": self.backend.name,
                      "shard": str(self.plan.shard)}
        def emit(position: int, result: EntryResult) -> None:
            result.provenance = dict(provenance)
            with self._emit_lock:
                results[position] = result
                if self.store is not None:
                    self.store.put(result)
                self._report_progress(result)
        return emit

    def _report_progress(self, result: EntryResult) -> None:
        if self.progress is not None:
            self.progress(result)


def run_sweep(plan: SweepPlan, cache_dir: Optional[str] = None,
              progress: Optional[ProgressCallback] = None,
              backend: Union[ExecutorBackend, str, None] = None
              ) -> SweepResult:
    """Convenience front door: build the store (if any) and run the plan."""
    store = RunStore(cache_dir) if cache_dir else None
    return SweepRunner(plan, store=store, progress=progress,
                       backend=backend).run()
