"""Sweep planning: which specifications to check, how, and in which shard.

A :class:`SweepPlan` is the declarative half of the runner subsystem: it
selects benchmark-corpus entries and/or scalable-family scale ranges,
fixes the engine configuration as one typed
:class:`~repro.api.config.EngineConfig`, and carries the execution knobs
(worker count, shard spec).  :meth:`SweepPlan.tasks` expands the plan
into a deterministic list of self-contained :class:`SweepTask` objects --
plain picklable data (name, canonical ``.g`` text, engine config,
expected verdicts) that a worker process can execute without any access
to the registry, and whose content :attr:`~SweepTask.fingerprint` keys
the persistent :class:`~repro.runner.store.RunStore` cache.

This module contains no engine knowledge: the config is an opaque
:class:`EngineConfig` (validated at construction) and workers execute it
through :func:`repro.api.run`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.config import EXECUTION_KNOB_FIELDS, EngineConfig

#: Bump when the worker result schema changes incompatibly; part of every
#: task fingerprint, so a schema change invalidates old cache records.
#: (2: engine configuration serialised as EngineConfig.to_dict();
#:  3: the check selection joined the fingerprint material -- a sweep
#:     running a ``--checks`` subset computes different verdicts;
#:  4: report dicts render the derived classification explicitly --
#:     including the ``partial`` verdict of subset runs -- so records
#:     written by older schemas would not be byte-identical.
#:  5: delta warm-starts made the path-dependent traversal statistics
#:     (iterations, images, peak nodes) volatile -- they left the stable
#:     view, and reports grew the ``delta`` provenance block.)
SCHEMA_VERSION = 5


class PlanError(ValueError):
    """An invalid sweep plan (bad shard spec, unknown family, ...)."""


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """Round-robin partition ``index``/``count`` of the task list.

    Task ``k`` (in plan order) belongs to shard ``k % count``; the
    ``count`` shards are therefore disjoint and jointly cover the sweep,
    and every shard sees a representative mix of cheap and expensive
    entries (corpus order interleaves the families).
    """

    index: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise PlanError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise PlanError(
                f"shard index must be in [0, {self.count}), got {self.index}")

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse an ``index/count`` spec like ``0/8`` (as on the CLI)."""
        index_text, slash, count_text = text.partition("/")
        try:
            if not slash:
                raise ValueError
            return cls(index=int(index_text), count=int(count_text))
        except ValueError:
            raise PlanError(
                f"invalid shard spec {text!r}; expected INDEX/COUNT, "
                f"e.g. 0/8") from None

    def owns(self, position: int) -> bool:
        return position % self.count == self.index

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


# ----------------------------------------------------------------------
# Tasks
# ----------------------------------------------------------------------
def normalise_expected(expected: Mapping[str, object]) -> Dict[str, object]:
    """JSON-stable form of an expected-verdict mapping.

    ``classification`` values are stored as their string form so the
    mapping round-trips through worker pipes and the JSONL cache;
    :func:`repro.corpus.mismatches_against` compares classifications via
    ``str`` for exactly this reason.
    """
    normalised: Dict[str, object] = {}
    for key, value in expected.items():
        normalised[key] = str(value) if key == "classification" else value
    return normalised


@dataclass(frozen=True)
class SweepTask:
    """One self-contained unit of sweep work (picklable, JSON-able).

    ``config`` is the complete engine configuration; its serialised form
    travels to the worker, which replays it through
    :func:`repro.api.run`.  ``delay`` is a testing/benchmarking hook: the
    worker sleeps that many seconds before checking, which lets the
    timeout and scheduling paths be exercised deterministically without a
    pathological specification.
    """

    name: str
    g_text: str
    config: EngineConfig = field(default_factory=EngineConfig)
    expected: Mapping[str, object] = field(default_factory=dict)
    delay: float = 0.0
    #: Property-check selection the worker runs (``None`` = every check
    #: the engine supports, the historical sweep behaviour).  Part of the
    #: fingerprint: a subset run computes genuinely different verdicts.
    checks: Optional[Tuple[str, ...]] = None
    #: Execution provenance (backend, shard) stamped by the runner just
    #: before dispatch so the worker's trace records carry it.  Pure
    #: observability: not part of the fingerprint, never in stable
    #: views.
    provenance: Mapping[str, str] = field(default_factory=dict)

    @property
    def engine(self) -> str:
        return self.config.engine

    @property
    def timeout(self):
        return self.config.timeout

    @property
    def fingerprint(self) -> str:
        """Content hash keying the persistent result cache.

        Covers everything that determines the verdict: the canonical
        ``.g`` text, the engine configuration
        (:meth:`~repro.api.config.EngineConfig.to_dict`, minus the
        :data:`~repro.api.config.EXECUTION_KNOB_FIELDS`), the check
        selection, the expected metadata the mismatch check runs
        against, and the result schema version.  Execution knobs
        (timeout, delay, BDD-cache directory, trace directory)
        deliberately do not participate: where and how fast a verdict
        is computed -- and whether anyone watched -- never changes the
        verdict.
        """
        config = self.config.to_dict()
        for knob in EXECUTION_KNOB_FIELDS:
            config.pop(knob, None)
        material = json.dumps(
            {"schema": SCHEMA_VERSION, "g_text": self.g_text,
             "config": config,
             "checks": list(self.checks) if self.checks is not None else None,
             "expected": normalise_expected(self.expected)},
            sort_keys=True)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def to_payload(self) -> Dict[str, object]:
        """The dict shipped to a worker process."""
        return {
            "name": self.name,
            "g_text": self.g_text,
            "config": self.config.to_dict(),
            "expected": normalise_expected(self.expected),
            "fingerprint": self.fingerprint,
            "delay": self.delay,
            "checks": list(self.checks) if self.checks is not None else None,
            "provenance": dict(self.provenance),
        }


# ----------------------------------------------------------------------
# Family scale ranges
# ----------------------------------------------------------------------
def parse_family_spec(text: str) -> Tuple[str, List[int]]:
    """Parse a ``FAMILY:SCALES`` CLI spec into ``(family, scales)``.

    ``SCALES`` is a single scale (``muller_pipeline:6``) or an inclusive
    range (``random_ring:1-40``).
    """
    name, colon, scales_text = text.partition(":")
    if not colon or not name or not scales_text:
        raise PlanError(
            f"invalid family spec {text!r}; expected FAMILY:SCALE or "
            f"FAMILY:LO-HI, e.g. random_ring:1-40")
    low_text, dash, high_text = scales_text.partition("-")
    try:
        low = int(low_text)
        high = int(high_text) if dash else low
    except ValueError:
        raise PlanError(
            f"invalid scale range {scales_text!r} in family spec "
            f"{text!r}") from None
    if high < low:
        raise PlanError(f"empty scale range {scales_text!r} in {text!r}")
    return name, list(range(low, high + 1))


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------
@dataclass
class SweepPlan:
    """Declarative description of one corpus sweep.

    ``names`` selects corpus entries (empty = the whole corpus);
    ``families`` adds scalable-family instances as ``(family, scales)``
    pairs on top, which is how a sweep scales to hundreds of entries
    without registering each one.  ``config`` is the engine
    configuration shared by every task -- except that each task's
    ``arbitration_places`` are taken from its registry metadata (the
    entry knows its own arbitration points).  Expansion order is
    deterministic (corpus registration order, then families in the given
    order), so shard partitions and result ordering are stable across
    runs.
    """

    names: Sequence[str] = ()
    families: Sequence[Tuple[str, Sequence[int]]] = ()
    config: EngineConfig = field(default_factory=EngineConfig)
    #: Property-check selection shared by every task (``None`` = every
    #: check the engine supports); validated by the CLI / facade before
    #: expansion.  Subset sweeps batch the selected checks over the
    #: shared intermediates of each entry's one pipeline.
    checks: Optional[Sequence[str]] = None
    jobs: int = 1
    shard: ShardSpec = field(default_factory=ShardSpec)
    #: Execution backend name (see :mod:`repro.runner.backends`);
    #: ``None`` leaves the choice to the runner (``process`` by
    #: default).  An execution knob like ``jobs``: deliberately not part
    #: of task fingerprints -- verdicts do not depend on who executes.
    backend: Optional[str] = None
    _expanded: Optional[List[SweepTask]] = field(
        default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise PlanError(f"jobs must be >= 1, got {self.jobs}")

    @property
    def engine(self) -> str:
        return self.config.engine

    def tasks(self) -> List[SweepTask]:
        """Expand the plan into the full (unsharded) task list.

        The expansion is computed once and memoised (callers get a copy),
        so driving both materialisation and execution off one plan does
        not rebuild every instance.  Invalid family names and scales
        surface as :class:`PlanError` here -- CLI callers expand inside
        their usage-error handler.
        """
        if self._expanded is None:
            self._expanded = self._expand()
        return list(self._expanded)

    def _task_config(self, arbitration: Sequence[str]) -> EngineConfig:
        """The plan config specialised to one entry's arbitration places."""
        return replace(self.config, arbitration_places=tuple(arbitration))

    def _expand(self) -> List[SweepTask]:
        from repro import corpus
        from repro.stg.writer import to_g_string

        checks = tuple(self.checks) if self.checks is not None else None
        tasks: List[SweepTask] = []
        for name in (self.names or corpus.names()):
            entry = corpus.entry(name)
            tasks.append(SweepTask(
                name=entry.name,
                g_text=entry.g_text,
                config=self._task_config(entry.arbitration_places),
                expected=normalise_expected(entry.expected),
                checks=checks))
        for family_name, scales in self.families:
            try:
                family = corpus.family(family_name)
            except KeyError as error:
                # corpus.family's message, without KeyError's repr quotes
                raise PlanError(error.args[0]) from None
            for scale in scales:
                try:
                    stg, arbitration = family.instantiate(scale)
                except ValueError as error:
                    raise PlanError(
                        f"family {family.name!r} rejected scale {scale}: "
                        f"{error}") from None
                tasks.append(SweepTask(
                    name=f"{family.name}@{scale}",
                    g_text=to_g_string(stg),
                    config=self._task_config(arbitration),
                    expected=normalise_expected(family.expected),
                    checks=checks))
        return tasks

    def shard_tasks(self) -> List[SweepTask]:
        """The slice of :meth:`tasks` owned by this plan's shard."""
        return [task for position, task in enumerate(self.tasks())
                if self.shard.owns(position)]
