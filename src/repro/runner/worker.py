"""Worker-side execution of one sweep task.

:func:`execute_payload` is the single execution primitive every
:mod:`~repro.runner.backends` backend is built on: it takes a
:meth:`~repro.runner.plan.SweepTask.to_payload` dict -- plain data, no
registry access needed -- parses the canonical ``.g`` text, runs the
requested engine and returns an
:class:`~repro.runner.results.EntryResult` dict.  The ``serial`` and
``thread`` backends call it in-process (it keeps no module state, so
concurrent calls are safe); the ``process`` backend wraps it in
:func:`child_main`, which ships the result dict back through the worker's
pipe.  Everything that can go wrong inside the check (parse errors,
engine exceptions) is caught and reported as an ``error`` result, so one
poisoned entry never kills the sweep; only the process-level failures
(crash, timeout) are handled by the pool scheduler.

:func:`execute_payload_async` is the asynchronous face of the same
primitive: it runs :func:`execute_payload` on an executor thread without
blocking the event loop, propagating the caller's context (so an
activated :mod:`repro.obs` tracer keeps receiving the entry's spans).
The ``asyncio`` backend and the :mod:`repro.serve` daemon are both built
on it.

Both :func:`execute_payload` and :func:`child_main` are module-level
functions so they pickle under every multiprocessing start method.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
import traceback
from typing import Dict, Optional

from repro import faults, obs
from repro.runner.results import EntryResult
from repro.utils.timing import DeadlineExceeded, deadline_from_timeout


def execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one task payload; always returns an EntryResult dict.

    When the payload's config carries a ``trace_dir`` (the ``--trace``
    execution knob), the whole entry runs under an activated
    :mod:`repro.obs` tracer writing one JSONL file keyed by the task
    fingerprint; the root ``entry`` span then parents every stage span
    the engine emits.  Tracing never changes the result: the stamp is
    activation-scoped (contextvars), so concurrent thread-backend
    entries stay isolated, and the sweep gate proves traced/untraced
    stable-JSON byte parity.

    Timeouts are enforced *cooperatively* here, for every backend: a
    ``timeout`` config knob (without an explicit ``deadline``) becomes
    an absolute monotonic deadline the engines check once per traversal
    iteration, and :class:`~repro.utils.timing.DeadlineExceeded`
    surfaces as a ``timeout`` record.  The ``process`` backend keeps
    its preemptive kill on top (a wedged C extension beats any
    cooperative check); the others rely on this path alone.

    A ``fault_plan`` knob (the lease fabric's chaos dial) injects
    deterministic failures: ``crash`` raises before verification (an
    ``error`` record), ``hang`` starts the entry with an
    already-expired deadline so the cooperative check fires (a
    ``timeout`` record).  Both are recovered by the coordinator's
    retry, which re-dispatches with a bumped attempt number.
    """
    start = time.perf_counter()
    name = str(payload["name"])
    config = dict(payload.get("config") or {})
    engine = str(config.get("engine", "?"))
    fingerprint = str(payload["fingerprint"])
    delay = float(payload.get("delay") or 0.0)
    trace_dir = config.get("trace_dir")
    plan = faults.plan_from_config(config)
    if config.get("deadline") is None and config.get("timeout") is not None:
        config["deadline"] = deadline_from_timeout(
            float(config["timeout"]))
    if plan is not None and plan.decides("hang", fingerprint):
        # A simulated wedge: the entry starts past its deadline, so the
        # engines' cooperative check raises on the first iteration --
        # the genuine timeout path, without burning wall clock.
        config["deadline"] = max(1e-9, time.monotonic() - 1.0)
    payload = dict(payload)
    payload["config"] = config
    meta = {"engine": engine,
            "provenance": dict(payload.get("provenance") or {})}
    with obs.tracing(trace_dir if trace_dir else None, name=name,
                     fingerprint=fingerprint, meta=meta):
        with obs.span("entry", entry=name, engine=engine) as entry_span:
            try:
                if delay:
                    time.sleep(delay)
                if plan is not None and plan.decides("crash", fingerprint):
                    raise faults.InjectedWorkerCrash(
                        f"injected worker crash (attempt {plan.attempt})")
                report, traversal = _check(payload)
                mismatches = _mismatches(payload, report)
                result = EntryResult(
                    name=name,
                    status="ok" if not mismatches else "mismatch",
                    engine=engine,
                    fingerprint=fingerprint,
                    report=report.to_dict(),
                    traversal=traversal,
                    mismatches=mismatches,
                    duration=time.perf_counter() - start)
            except DeadlineExceeded as error:
                result = EntryResult(
                    name=name,
                    status="timeout",
                    engine=engine,
                    fingerprint=fingerprint,
                    error=f"{type(error).__name__}: {error}",
                    duration=time.perf_counter() - start)
            except Exception as error:
                result = EntryResult(
                    name=name,
                    status="error",
                    engine=engine,
                    fingerprint=fingerprint,
                    error=f"{type(error).__name__}: {error}",
                    duration=time.perf_counter() - start)
            entry_span.annotate(status=result.status)
    return result.to_dict()


async def execute_payload_async(payload: Dict[str, object],
                                executor: Optional[object] = None
                                ) -> Dict[str, object]:
    """Run one task payload on ``executor`` without blocking the loop.

    The one async execution primitive: the ``asyncio`` backend bounds it
    with a semaphore per work item, and the ``repro.serve`` daemon's
    worker coroutines call it per job.  ``executor`` is a
    ``concurrent.futures`` executor (the event loop's default thread
    pool when ``None``).  The payload executes in a *copy of the
    caller's context*: ``loop.run_in_executor`` does not propagate
    contextvars by itself, so without the copy a request-scoped
    :mod:`repro.obs` tracer activated around this call would lose every
    span the entry emits on the executor thread.
    """
    loop = asyncio.get_running_loop()
    context = contextvars.copy_context()
    return await loop.run_in_executor(
        executor, lambda: context.run(execute_payload, payload))


def _check(payload: Dict[str, object]):
    """Parse and verify through the facade; returns ``(report, traversal)``.

    The payload's ``config`` dict is replayed as an
    :class:`~repro.api.config.EngineConfig` and executed via
    :func:`repro.api.run` with the payload's check selection (every
    supported check when none was given, so cached verdicts are complete
    by default; a ``--checks`` subset batches exactly those checks over
    the entry's shared intermediates).
    """
    from repro import api
    from repro.stg.parser import parse_g

    with obs.span("parse"):
        stg = parse_g(str(payload["g_text"]), name=str(payload["name"]))
    config = api.EngineConfig.from_dict(dict(payload.get("config") or {}))
    checks = payload.get("checks")
    outcome = api.run(stg, config,
                      checks=api.ALL if checks is None else list(checks))
    return outcome.report, outcome.traversal


def _mismatches(payload: Dict[str, object], report) -> list:
    from repro.corpus import mismatches_against

    return mismatches_against(dict(payload.get("expected") or {}), report)


def child_main(connection, payload: Dict[str, object]) -> None:
    """Subprocess entry point: execute, send the result dict, exit."""
    try:
        result = execute_payload(payload)
    except BaseException:  # pragma: no cover - execute_payload catches
        result = EntryResult(
            name=str(payload.get("name", "?")),
            status="error",
            engine=str(dict(payload.get("config") or {}).get("engine", "?")),
            fingerprint=str(payload.get("fingerprint", "")),
            error=f"worker crashed:\n{traceback.format_exc()}").to_dict()
    try:
        connection.send(result)
    finally:
        connection.close()
