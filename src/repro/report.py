"""Implementability reports shared by the explicit and symbolic checkers.

Both :class:`repro.sg.checker.ExplicitChecker` and
:class:`repro.core.checker.ImplementabilityChecker` fill the same
:class:`ImplementabilityReport`, so results can be compared field by field
(the test-suite does exactly that) and printed uniformly by the CLI, the
examples and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum
from typing import Dict, List, Mapping, Optional


class ImplementabilityClass(Enum):
    """The hierarchy of Definition 2.6 (plus the failure class).

    :attr:`PARTIAL` is not a rung of the hierarchy: it is the explicit
    verdict of a ``checks=`` subset run that left the class undecided
    (basics unchecked, CSC unchecked, ...), so summaries and ``--json``
    reports say *why* there is no class instead of silently omitting it.
    Corpus expected metadata never records it -- a full run always
    decides a real class.
    """

    NOT_IMPLEMENTABLE = "not SI-implementable"
    SI = "SI-implementable (interface may change)"
    IO = "I/O-implementable"
    GATE = "gate-implementable"
    PARTIAL = "partial (check subset left the class undecided)"

    def __str__(self) -> str:
        return self.value


@dataclass
class PropertyVerdict:
    """One checked property: verdict plus human-readable evidence."""

    name: str
    holds: bool
    details: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "OK " if self.holds else "FAIL"
        text = f"[{status}] {self.name}"
        if not self.holds and self.details:
            shown = "; ".join(self.details[:3])
            more = len(self.details) - 3
            if more > 0:
                shown += f"; ... ({more} more)"
            text += f": {shown}"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "holds": self.holds,
                "details": list(self.details)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PropertyVerdict":
        return cls(name=str(data["name"]), holds=bool(data["holds"]),
                   details=list(data.get("details") or []))


@dataclass
class ImplementabilityReport:
    """Complete outcome of an implementability check of one STG."""

    stg_name: str
    method: str  # "explicit" or "symbolic"
    # Size of the problem.
    num_places: int = 0
    num_transitions: int = 0
    num_signals: int = 0
    num_states: int = 0
    # Property verdicts (None = not checked / not applicable).
    bounded: Optional[bool] = None
    safe: Optional[bool] = None
    consistent: Optional[bool] = None
    output_persistent: Optional[bool] = None
    csc: Optional[bool] = None
    usc: Optional[bool] = None
    deterministic: Optional[bool] = None
    commutative: Optional[bool] = None
    complementary_free: Optional[bool] = None
    fake_free: Optional[bool] = None
    # Liveness extras (only filled when liveness checking is requested).
    deadlock_free: Optional[bool] = None
    reversible: Optional[bool] = None
    # Evidence.
    verdicts: List[PropertyVerdict] = field(default_factory=list)
    # Performance data (phase name -> seconds), mirroring Table 1 columns.
    timings: Dict[str, float] = field(default_factory=dict)
    # Symbolic-only statistics.
    bdd_peak_nodes: Optional[int] = None
    bdd_final_nodes: Optional[int] = None
    bdd_variables: Optional[int] = None
    # Delta warm-start provenance (:mod:`repro.delta`): how the run
    # reused a base entry -- reuse tier, classification reasons, edit
    # summary.  Pure execution provenance like ``timings``: stamped by
    # the api facade after the engine ran, never consulted by any check,
    # and stripped from the runner's stable views.
    delta: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Derived results
    # ------------------------------------------------------------------
    @property
    def csc_reducible(self) -> Optional[bool]:
        """CSC-reducibility: deterministic, commutative and free from
        mutually complementary input sequences (Section 3.4)."""
        parts = (self.deterministic, self.commutative, self.complementary_free)
        if any(part is None for part in parts):
            return None
        return all(parts)

    @property
    def classification(self) -> ImplementabilityClass:
        """Implementability class per Definition 2.6 / Propositions 3.1-3.2.

        :attr:`ImplementabilityClass.PARTIAL` when a partial ``checks=``
        run left the class undecided: the basics (boundedness,
        consistency, persistency) unchecked, CSC unchecked, or -- with
        CSC failing -- the reducibility check not run at all.  A
        reducibility check that *ran* but left only commutativity
        undecided still classifies as SI (the undecided verdict blocks
        the I/O upgrade, not the classification).
        """
        basics = (self.bounded, self.consistent, self.output_persistent)
        if any(part is None for part in basics):
            return ImplementabilityClass.PARTIAL
        basic = all(bool(part) for part in basics)
        if not basic:
            return ImplementabilityClass.NOT_IMPLEMENTABLE
        if self.csc is None:
            return ImplementabilityClass.PARTIAL
        if self.csc:
            return ImplementabilityClass.GATE
        reducibility_parts = (self.deterministic, self.commutative,
                              self.complementary_free)
        if all(part is None for part in reducibility_parts):
            # the reducibility check never ran
            return ImplementabilityClass.PARTIAL
        if self.csc_reducible:
            return ImplementabilityClass.IO
        return ImplementabilityClass.SI

    @property
    def io_implementable(self) -> bool:
        """Proposition 3.2: bounded, consistent, persistent, CSC-reducible."""
        return self.classification in (ImplementabilityClass.IO,
                                       ImplementabilityClass.GATE)

    @property
    def gate_implementable(self) -> bool:
        """CSC holds on top of the basic conditions."""
        return self.classification is ImplementabilityClass.GATE

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def add_verdict(self, name: str, holds: bool,
                    details: Optional[List[str]] = None) -> None:
        self.verdicts.append(PropertyVerdict(name, holds, details or []))

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"STG {self.stg_name!r} ({self.method} check)",
            (f"  size: {self.num_places} places, {self.num_transitions} "
             f"transitions, {self.num_signals} signals, "
             f"{self.num_states} states"),
        ]
        for verdict in self.verdicts:
            lines.append(f"  {verdict}")
        lines.append(f"  classification: {self.classification}")
        if self.bdd_peak_nodes is not None:
            lines.append(f"  BDD nodes: peak {self.bdd_peak_nodes}, "
                         f"final {self.bdd_final_nodes} "
                         f"({self.bdd_variables} variables)")
        if self.timings:
            rendered = ", ".join(f"{name} {value:.3f}s"
                                 for name, value in self.timings.items())
            lines.append(f"  time: {rendered} (total {self.total_time:.3f}s)")
        if self.delta:
            lines.append(f"  delta: tier {self.delta.get('tier')} "
                         f"(closed={self.delta.get('closed')}) from base "
                         f"{str(self.delta.get('base'))[:12]}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSON schema shared by the sweep runner's RunStore and --json report
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Lossless, JSON-serialisable form of every dataclass field.

        The derived ``classification`` is additionally rendered (as its
        string form) so ``--json`` reports and cached records carry the
        verdict explicitly; :meth:`from_dict` ignores it and recomputes
        the property from the restored fields, so
        ``from_dict(to_dict(report)) == report`` holds exactly.  This is
        the schema the :mod:`repro.runner` workers ship across process
        boundaries and the :class:`~repro.runner.store.RunStore` persists.
        """
        data: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "verdicts":
                value = [verdict.to_dict() for verdict in value]
            elif spec.name == "timings":
                value = dict(value)
            data[spec.name] = value
        data["classification"] = str(self.classification)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ImplementabilityReport":
        """Rebuild a report from :meth:`to_dict` output (unknown keys ignored)."""
        known = {spec.name for spec in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        kwargs["verdicts"] = [PropertyVerdict.from_dict(verdict)
                              for verdict in kwargs.get("verdicts") or []]
        kwargs["timings"] = dict(kwargs.get("timings") or {})
        return cls(**kwargs)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary (used by the benchmark harness to print rows)."""
        return {
            "name": self.stg_name,
            "method": self.method,
            "places": self.num_places,
            "transitions": self.num_transitions,
            "signals": self.num_signals,
            "states": self.num_states,
            "bounded": self.bounded,
            "safe": self.safe,
            "consistent": self.consistent,
            "persistent": self.output_persistent,
            "csc": self.csc,
            "usc": self.usc,
            "csc_reducible": self.csc_reducible,
            "fake_free": self.fake_free,
            "deadlock_free": self.deadlock_free,
            "reversible": self.reversible,
            "classification": str(self.classification),
            "bdd_peak": self.bdd_peak_nodes,
            "bdd_final": self.bdd_final_nodes,
            "timings": dict(self.timings),
        }
