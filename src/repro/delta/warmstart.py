"""Turn a stored base reachable set into a traversal warm-start.

:func:`apply_base` is called by the BDD-cache provider
(:func:`repro.cache.bind_pipeline`) when the engine config carries a
:attr:`~repro.api.config.EngineConfig.base_fingerprint` and the exact
fingerprint of the request itself missed.  It locates the base entry,
diffs the stored canonical ``.g`` text against the pipeline's STG,
classifies the edit (:func:`repro.delta.classify.classify_delta`) and
applies the strongest sound reuse:

``hit``
    The edit is structurally identical to the base (a rename, a
    re-check under a new task name): adopt the stored reachable set
    outright -- no traversal at all.
``seed``
    Strictly monotone edit: extend the base states with the added
    variables at their initial values (every such state is genuinely
    reachable in the edited net via the base's own firing sequences)
    and hand the result to the traversal as its starting set.
``prewarm``
    Additive edit that changes an existing transition's environment:
    load the base BDD structurally (shared nodes, warm caches), exactly
    like a PR-5 family warm-start, and traverse cold.
``cold``
    Anything else: no reuse.

The seeding contract (analyzer rule RA204): this module writes only the
pipeline's ``seed_reached`` / ``seed_transitions`` / ``seed_closed`` /
``warm_handle`` / ``delta_info`` attributes.  Verdicts, reports and the
canonical fixpoint are untouched -- a seeded run's stable JSON is
byte-identical to a cold run's, which the parity suite and the sweep
gate's delta leg enforce.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro import obs
from repro.bdd.function import Function
from repro.core.encoding import SymbolicEncoding
from repro.core.stats import TraversalStats
from repro.delta.classify import (
    TIER_COLD,
    TIER_PREWARM,
    TIER_SEED,
    classify_delta,
)
from repro.delta.diff import diff_stg
from repro.stg.parser import parse_g

#: Pseudo-tier recorded when the base is structurally identical and the
#: stored reachable set is adopted wholesale (no traversal at all).
TIER_HIT = "hit"


def extend_to_encoding(encoding: SymbolicEncoding, base_reached: Function,
                       base_variables: Sequence[str]) -> Function:
    """Lift a base reachable set into the edited encoding's state space.

    Every variable of the edited encoding that the base did not know is
    constrained to its value in the edited initial state: the resulting
    states are exactly the base states "carried along" unchanged by the
    base's firing sequences, so all of them are reachable in the edited
    net.  The edited initial state is united in for the degenerate case
    of an empty base set.
    """
    manager = encoding.manager
    initial = encoding.initial_state()
    known = set(base_variables)
    new_variables = [name for name in encoding.all_variables
                     if name not in known]
    literals = {}
    for name in new_variables:
        literals[name] = not (initial & manager.var(name)).is_false()
    cube = manager.cube(literals)
    return (base_reached & cube) | initial


def apply_base(pipeline, store, base_fingerprint: str
               ) -> Optional[Tuple[Function, TraversalStats]]:
    """Resolve ``base_fingerprint`` against ``store`` and warm the pipeline.

    Returns ``(reached, stats)`` only for the ``hit`` tier (structural
    identity -- the provider then skips the traversal entirely);
    otherwise configures the pipeline's seed or warm handle in place and
    returns ``None`` so the traversal runs.  Always records the
    classification outcome on ``pipeline.delta_info``.
    """
    with obs.span("delta", base=base_fingerprint[:12]) as span:
        outcome = _apply_base(pipeline, store, base_fingerprint)
        info = pipeline.delta_info or {}
        span.annotate(tier=info.get("tier"), closed=info.get("closed"))
        return outcome


def _apply_base(pipeline, store, base_fingerprint: str
                ) -> Optional[Tuple[Function, TraversalStats]]:
    info = {"base": base_fingerprint, "tier": TIER_COLD, "closed": False,
            "reasons": [], "summary": None}
    pipeline.delta_info = info

    found = store.find(base_fingerprint)
    if found is None:
        store.delta_colds += 1
        info["reasons"] = ["no stored entry matches the base fingerprint"]
        return None
    path, meta = found

    base_g_text = meta.get("g_text")
    if not isinstance(base_g_text, str) or not base_g_text:
        # Pre-schema-2 entry: no base text to diff against, but the
        # stored nodes are still worth loading structurally.
        return _prewarm(pipeline, store, path, info,
                        ["base entry predates schema 2 (no stored "
                         "specification text); structural pre-warm only"])

    base = parse_g(base_g_text)
    delta = diff_stg(base, pipeline.stg)
    classification = classify_delta(delta, pipeline.stg)
    info["tier"] = classification.tier
    info["closed"] = classification.closed
    info["reasons"] = list(classification.reasons)
    info["summary"] = delta.summary()

    if classification.tier == TIER_COLD:
        store.delta_colds += 1
        return None

    loaded = store.load_entry(path, pipeline.encoding.manager)
    if loaded is None:
        store.delta_colds += 1
        info["tier"] = TIER_COLD
        info["closed"] = False
        info["reasons"].append("stored base variables are incompatible "
                               "with the edited encoding")
        return None
    base_reached, base_variables = loaded

    if delta.identical:
        # Same structure, same fingerprint material except the text
        # itself (e.g. a model rename): the stored set IS the reachable
        # set.  The canonical size/state fields are recomputed from the
        # loaded BDD; the path-dependent counters stay the base's and
        # are volatile in every stable view.
        stats = TraversalStats.from_dict(meta.get("stats") or {})
        stats.num_variables = len(pipeline.encoding.all_variables)
        stats.num_states = pipeline.encoding.count_states(base_reached)
        stats.final_nodes = base_reached.size()
        info["tier"] = TIER_HIT
        store.delta_hits += 1
        obs.event("delta-hit", base=base_fingerprint[:12])
        return base_reached, stats

    if classification.tier == TIER_SEED:
        seed = extend_to_encoding(pipeline.encoding, base_reached,
                                  base_variables)
        pipeline.seed_reached = seed
        pipeline.seed_transitions = list(delta.added_transitions)
        pipeline.seed_closed = classification.closed
        info["seed_nodes"] = seed.size()
        store.delta_seeds += 1
        return None

    assert classification.tier == TIER_PREWARM
    pipeline.warm_handle = base_reached
    store.delta_prewarms += 1
    return None


def _prewarm(pipeline, store, path: str, info: dict, reasons: list
             ) -> None:
    loaded = store.load_entry(path, pipeline.encoding.manager)
    if loaded is None:
        store.delta_colds += 1
        info["reasons"] = reasons + ["stored base variables are "
                                     "incompatible with the edited "
                                     "encoding"]
        return None
    info["tier"] = TIER_PREWARM
    info["reasons"] = reasons
    pipeline.warm_handle = loaded[0]
    store.delta_prewarms += 1
    return None
