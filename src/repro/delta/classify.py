"""The monotone-compatibility classifier.

Given the structural delta of an edit, decide how much of the *base*
run's reachable set may soundly be reused:

:data:`TIER_SEED` (strictly monotone edits)
    The edit only adds structure **and** every added arc is incident to
    an added transition, so the pre- and post-sets of every surviving
    transition are exactly what they were in the base net.  Then every
    base-reachable marking, extended with the added places/signals at
    their initial values, is reachable in the edited net via the very
    same firing sequence -- the stored base reachable set (so extended)
    is a sound *traversal seed*.  Two sub-modes:

    * ``closed`` -- no added transition touches an existing place *or
      an existing signal*: new states differ from seeded ones only in
      the added variables, the old transitions cannot leave the seeded
      set, and the fixpoint iteration only needs to fire the *added*
      transitions (the fast path of the editor loop);
    * otherwise the added transitions feed states back into the old
      net, and the iteration sweeps the full transition list from the
      seeded frontier.

:data:`TIER_PREWARM` (additive, but the arc rule fails)
    The edit adds an arc between existing nodes, changing an existing
    transition's environment: base states may be unreachable or
    non-closed in the edited net, so seeding would be unsound.  The
    stored BDD is still loaded *structurally* (shared nodes, warm
    operation caches) exactly like PR-5 family warm-starts -- the
    traversal itself starts cold.

:data:`TIER_COLD` (anything else)
    Removals, renames (a removal plus an addition), initial-marking or
    initial-value changes, signal-kind changes: nothing about the base
    reachable set is trustworthy, run cold.

Every decision is recorded with human-readable ``reasons`` so the
``delta`` provenance block on reports and the serve metrics can say
*why* a re-check did or did not warm-start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.delta.diff import STGDelta
from repro.stg.stg import STG

TIER_SEED = "seed"
TIER_PREWARM = "prewarm"
TIER_COLD = "cold"

#: The reuse tiers, strongest first.
TIERS = (TIER_SEED, TIER_PREWARM, TIER_COLD)


@dataclass(frozen=True)
class DeltaClassification:
    """Reuse tier of one edit, with the rules that decided it."""

    tier: str
    #: Seed tier only: the added transitions touch no existing place or
    #: signal, so the fixpoint closure may fire only the added
    #: transitions.
    closed: bool = False
    reasons: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {"tier": self.tier, "closed": self.closed,
                "reasons": list(self.reasons)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DeltaClassification":
        return cls(tier=str(data["tier"]),
                   closed=bool(data.get("closed", False)),
                   reasons=tuple(str(reason)
                                 for reason in data.get("reasons", ())))


def classify_delta(delta: STGDelta, edited: STG) -> DeltaClassification:
    """Classify an edit's delta against the edited net.

    ``edited`` is needed to resolve the pre/post-sets of the added
    transitions (the delta alone does not know which arc endpoint is
    the transition).
    """
    reasons: List[str] = []
    _collect_non_additive_reasons(delta, reasons)
    if reasons:
        return DeltaClassification(tier=TIER_COLD, reasons=tuple(reasons))
    if delta.identical:
        return DeltaClassification(
            tier=TIER_SEED, closed=True,
            reasons=("structurally identical to the base",))

    added_transitions = set(delta.added_transitions)
    added_places = set(delta.added_places)
    for source, target in delta.added_arcs:
        transition = target if target in edited.transitions else source
        if transition not in added_transitions:
            reasons.append(
                f"added arc ({source} -> {target}) changes existing "
                f"transition {transition!r}; base states may not be "
                f"closed under it")
    if reasons:
        return DeltaClassification(tier=TIER_PREWARM,
                                   reasons=tuple(reasons))

    # Closed mode needs both conditions: an added transition touching an
    # existing place could mark it in ways only old transitions consume,
    # and one toggling an existing *signal* creates full states from
    # which old transitions (whose enabling depends on places alone)
    # reach codes the seed never saw -- either way the old transitions
    # must keep firing, i.e. the sweep must stay full-width.
    added_signals = set(delta.added_signals)
    closed = True
    for transition in delta.added_transitions:
        environment = (set(edited.net.preset_of_transition(transition))
                       | set(edited.net.postset_of_transition(transition)))
        if (not environment <= added_places
                or edited.signal_of(transition) not in added_signals):
            closed = False
            break
    reasons.append("monotone: additions only, every added arc incident "
                   "to an added transition")
    reasons.append("added transitions touch no existing place or signal"
                   if closed else
                   "added transitions touch existing places or signals; "
                   "full sweep from the seeded frontier")
    return DeltaClassification(tier=TIER_SEED, closed=closed,
                               reasons=tuple(reasons))


def _collect_non_additive_reasons(delta: STGDelta,
                                  reasons: List[str]) -> None:
    """Append one reason per non-additive aspect of the delta."""
    categories = (
        (delta.removed_signals, "removed signal(s)"),
        (delta.removed_transitions, "removed transition(s)"),
        (delta.removed_places, "removed place(s)"),
        (delta.removed_arcs, "removed arc(s)"),
        (delta.changed_markings, "changed initial marking of place(s)"),
        (delta.changed_initial_values,
         "changed initial value of signal(s)"),
        (delta.changed_signal_kinds, "changed kind of signal(s)"),
    )
    for items, label in categories:
        if items:
            shown = ", ".join(str(item) for item in items[:3])
            more = len(items) - 3
            if more > 0:
                shown += f", ... ({more} more)"
            reasons.append(f"{label}: {shown}")
