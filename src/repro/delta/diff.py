"""Structural diffing of two STGs.

:func:`diff_stg` compares a *base* specification against an *edited* one
purely structurally -- net elements and initial state, never names of
the models themselves -- and returns an :class:`STGDelta`, the input of
the monotone-compatibility classifier
(:func:`repro.delta.classify.classify_delta`).

Everything is reported as sorted tuples so a delta is deterministic,
hashable and JSON-stable regardless of ``PYTHONHASHSEED`` (the same
discipline as every other serialised object in the repo).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple

from repro.stg.stg import STG

#: Arc as a ``(source, target)`` label pair, exactly as
#: :meth:`repro.petri.net.PetriNet.arcs` yields them.
Arc = Tuple[str, str]


@dataclass(frozen=True)
class STGDelta:
    """The structural difference between a base and an edited STG.

    ``added_*`` / ``removed_*`` partition the element sets; the
    ``changed_*`` tuples name elements present on *both* sides whose
    initial state (place marking, signal value) or signal kind differs.
    """

    added_signals: Tuple[str, ...] = ()
    removed_signals: Tuple[str, ...] = ()
    added_transitions: Tuple[str, ...] = ()
    removed_transitions: Tuple[str, ...] = ()
    added_places: Tuple[str, ...] = ()
    removed_places: Tuple[str, ...] = ()
    added_arcs: Tuple[Arc, ...] = ()
    removed_arcs: Tuple[Arc, ...] = ()
    changed_markings: Tuple[str, ...] = ()
    changed_initial_values: Tuple[str, ...] = ()
    changed_signal_kinds: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def identical(self) -> bool:
        """True when the two STGs are structurally the same."""
        return not any(getattr(self, spec.name) for spec in fields(self))

    @property
    def additive(self) -> bool:
        """True when the edit only *adds* structure.

        No removals of any kind and no changes to the initial state or
        the kind of surviving elements -- the precondition of both
        warm-start tiers (see :func:`repro.delta.classify.
        classify_delta` for the stricter seed-tier arc rule).
        """
        return not (self.removed_signals or self.removed_transitions
                    or self.removed_places or self.removed_arcs
                    or self.changed_markings or self.changed_initial_values
                    or self.changed_signal_kinds)

    def summary(self) -> Dict[str, int]:
        """Per-category counts (the provenance/observability view)."""
        return {spec.name: len(getattr(self, spec.name))
                for spec in fields(self)}

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-serialisable form."""
        return {spec.name: [list(item) if isinstance(item, tuple) else item
                            for item in getattr(self, spec.name)]
                for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "STGDelta":
        """Rebuild a delta from :meth:`to_dict` output."""
        kwargs = {}
        for spec in fields(cls):
            values = data.get(spec.name) or ()
            if spec.name.endswith("_arcs"):
                kwargs[spec.name] = tuple(
                    (str(source), str(target)) for source, target in values)
            else:
                kwargs[spec.name] = tuple(str(value) for value in values)
        return cls(**kwargs)


def diff_stg(base: STG, edited: STG) -> STGDelta:
    """The structural delta turning ``base`` into ``edited``.

    Model names are deliberately ignored: renaming a specification is
    not an edit of its behaviour (the serve daemon and the CLI re-check
    edited texts under fresh task names all the time).
    """
    base_signals = set(base.signals)
    edited_signals = set(edited.signals)
    base_transitions = set(base.transitions)
    edited_transitions = set(edited.transitions)
    base_places = set(base.places)
    edited_places = set(edited.places)
    base_arcs = set(base.net.arcs())
    edited_arcs = set(edited.net.arcs())

    base_marking = base.initial_marking()
    edited_marking = edited.initial_marking()
    changed_markings = tuple(sorted(
        place for place in base_places & edited_places
        if base_marking.get(place, 0) != edited_marking.get(place, 0)))
    changed_initial_values = tuple(sorted(
        signal for signal in base_signals & edited_signals
        if bool(base.initial_values.get(signal))
        != bool(edited.initial_values.get(signal))))
    changed_signal_kinds = tuple(sorted(
        signal for signal in base_signals & edited_signals
        if base.kind_of(signal) != edited.kind_of(signal)))

    return STGDelta(
        added_signals=tuple(sorted(edited_signals - base_signals)),
        removed_signals=tuple(sorted(base_signals - edited_signals)),
        added_transitions=tuple(sorted(edited_transitions
                                       - base_transitions)),
        removed_transitions=tuple(sorted(base_transitions
                                         - edited_transitions)),
        added_places=tuple(sorted(edited_places - base_places)),
        removed_places=tuple(sorted(base_places - edited_places)),
        added_arcs=tuple(sorted(edited_arcs - base_arcs)),
        removed_arcs=tuple(sorted(base_arcs - edited_arcs)),
        changed_markings=changed_markings,
        changed_initial_values=changed_initial_values,
        changed_signal_kinds=changed_signal_kinds)
