"""Incremental delta verification: structural diffs and warm-start seeds.

The interactive editor loop -- tweak an STG, re-verify, repeat -- is the
workload the ROADMAP's million-user scenario is built around, and before
this package every edit recomputed the reachable state space from
scratch (the :class:`~repro.cache.bddstore.BDDStore` fingerprint is
exact canonical ``.g`` text).  ``repro.delta`` closes that gap:

* :func:`diff_stg` computes the structural difference between a *base*
  STG and an *edited* one (added/removed transitions, places, arcs and
  signals, plus initial-marking/value changes) as an :class:`STGDelta`;
* :func:`classify_delta` sorts a delta into one of three reuse tiers
  (:data:`TIER_SEED` / :data:`TIER_PREWARM` / :data:`TIER_COLD`) by the
  monotone-compatibility rules documented on the classifier;
* :mod:`repro.delta.warmstart` turns a stored base reachable set into a
  **traversal seed** for monotone edits -- the base states extended with
  the new variables at their initial values are all genuinely reachable
  in the edited net, so the traversal starts from them instead of from
  the single initial state -- and into a PR-5-style structural pre-warm
  otherwise.

The seed never touches verdicts: it only changes *where the fixpoint
iteration starts*, the fixpoint itself is the same canonical reachable
set, and the parity suite plus the sweep gate's delta leg prove stable
JSON is byte-identical to a cold run (analyzer rule RA204 statically
pins that this package stays on the seeding surface).

The public entry points are ``repro.api.verify(stg, base=...)`` and the
serve protocol's ``"base"`` request field; both route through
:attr:`repro.api.config.EngineConfig.base_fingerprint`.
"""

from __future__ import annotations

from repro.delta.classify import (
    TIER_COLD,
    TIER_PREWARM,
    TIER_SEED,
    TIERS,
    DeltaClassification,
    classify_delta,
)
from repro.delta.diff import STGDelta, diff_stg

__all__ = [
    "DeltaClassification",
    "STGDelta",
    "TIER_COLD",
    "TIER_PREWARM",
    "TIER_SEED",
    "TIERS",
    "classify_delta",
    "diff_stg",
]
