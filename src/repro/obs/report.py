"""Report-side trace analysis: stage breakdowns, summaries, rendering.

Spans nest, so naive per-span sums double-count (a ``check`` span
contains the traversal it lazily triggered).  Everything here is
therefore built on **self time** -- a span's duration minus the
duration of its direct children.  Self times telescope: summed over a
whole trace tree they equal the root span's duration exactly, which is
what makes the per-stage breakdown (`stage "parse" 3%, "traversal"
81%, ...`) add up to the entry's wall time instead of exceeding it.

The *stage* vocabulary is the span-name vocabulary (literal names, rule
RA501); ``check`` spans are additionally keyed by their ``check``
attribute (``check:csc``), so a breakdown distinguishes the individual
property checks without anyone inventing span names at runtime.

Consumed by :class:`repro.obs.sinks.SummarySink`, the ``--profile``
CLI view and ``tools/trace_report.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.core.stats import TraversalStats


def span_label(record: Mapping[str, object]) -> str:
    """The aggregation key of one span record (name, plus the check)."""
    name = str(record.get("name"))
    attrs = record.get("attrs") or {}
    check = attrs.get("check") if isinstance(attrs, Mapping) else None
    return f"{name}:{check}" if check else name


def spans_of(records: Iterable[Mapping[str, object]]
             ) -> List[Mapping[str, object]]:
    return [r for r in records if r.get("type") == "span"]


def events_of(records: Iterable[Mapping[str, object]]
              ) -> List[Mapping[str, object]]:
    return [r for r in records if r.get("type") == "event"]


def self_times(records: Iterable[Mapping[str, object]]
               ) -> Dict[int, float]:
    """Span id -> self time (duration minus direct children)."""
    spans = spans_of(records)
    child_sum: Dict[Optional[int], float] = {}
    for span in spans:
        parent = span.get("parent")
        child_sum[parent] = (child_sum.get(parent, 0.0)
                             + float(span.get("duration_s") or 0.0))
    result: Dict[int, float] = {}
    for span in spans:
        span_id = int(span["id"])
        duration = float(span.get("duration_s") or 0.0)
        result[span_id] = max(duration - child_sum.get(span_id, 0.0), 0.0)
    return result


def stage_breakdown(records: Iterable[Mapping[str, object]]
                    ) -> Dict[str, Dict[str, float]]:
    """Label -> ``{"self_s", "total_s", "count"}`` over one trace.

    ``self_s`` values sum (over all labels) to the root span duration;
    ``total_s`` is the inclusive time, meaningful per label but not
    summable across nesting labels.
    """
    records = list(records)
    per_span_self = self_times(records)
    stages: Dict[str, Dict[str, float]] = {}
    for span in spans_of(records):
        label = span_label(span)
        entry = stages.setdefault(
            label, {"self_s": 0.0, "total_s": 0.0, "count": 0})
        entry["self_s"] += per_span_self[int(span["id"])]
        entry["total_s"] += float(span.get("duration_s") or 0.0)
        entry["count"] += 1
    for entry in stages.values():
        entry["self_s"] = round(entry["self_s"], 6)
        entry["total_s"] = round(entry["total_s"], 6)
    return stages


def cache_breakdown(records: Iterable[Mapping[str, object]]
                    ) -> Dict[str, Dict[str, float]]:
    """Label -> summed per-span BDD operation-cache deltas (+ hit rate)."""
    table: Dict[str, Dict[str, float]] = {}
    for span in spans_of(records):
        bdd = span.get("bdd")
        if not isinstance(bdd, Mapping):
            continue
        label = span_label(span)
        entry = table.setdefault(
            label, {"lookups": 0, "hits": 0, "evictions": 0})
        entry["lookups"] += int(bdd.get("lookups") or 0)
        entry["hits"] += int(bdd.get("hits") or 0)
        entry["evictions"] += int(bdd.get("evictions") or 0)
    for entry in table.values():
        entry["hit_rate"] = (round(entry["hits"] / entry["lookups"], 4)
                             if entry["lookups"] else None)
    return table


def trace_wall_s(records: Iterable[Mapping[str, object]]) -> float:
    """The traced wall time: summed duration of the root spans."""
    return round(sum(float(span.get("duration_s") or 0.0)
                     for span in spans_of(records)
                     if span.get("parent") is None), 6)


def trace_meta(records: Iterable[Mapping[str, object]]
               ) -> Dict[str, object]:
    for record in records:
        if record.get("type") == "meta":
            return {key: value for key, value in record.items()
                    if key != "type"}
    return {}


def trace_summary(records: Iterable[Mapping[str, object]]
                  ) -> Dict[str, object]:
    """Everything the aggregate report needs from one entry's trace."""
    records = list(records)
    meta = trace_meta(records)
    end = next((r for r in records if r.get("type") == "end"), {})
    return {
        "entry": meta.get("entry"),
        "fingerprint": meta.get("fingerprint"),
        "provenance": meta.get("provenance") or {},
        "wall_s": trace_wall_s(records),
        "stages": stage_breakdown(records),
        "cache": cache_breakdown(records),
        "events": len(events_of(records)),
        "metrics": end.get("metrics") or {},
    }


def merge_stage_tables(summaries: Iterable[Mapping[str, object]]
                       ) -> Dict[str, Dict[str, float]]:
    """Summed per-stage table over many entry summaries."""
    merged: Dict[str, Dict[str, float]] = {}
    for summary in summaries:
        for label, entry in (summary.get("stages") or {}).items():
            slot = merged.setdefault(
                label, {"self_s": 0.0, "total_s": 0.0, "count": 0})
            slot["self_s"] += float(entry.get("self_s") or 0.0)
            slot["total_s"] += float(entry.get("total_s") or 0.0)
            slot["count"] += int(entry.get("count") or 0)
    for slot in merged.values():
        slot["self_s"] = round(slot["self_s"], 6)
        slot["total_s"] = round(slot["total_s"], 6)
    return merged


def merge_cache_tables(summaries: Iterable[Mapping[str, object]]
                       ) -> Dict[str, Dict[str, float]]:
    """Summed per-stage BDD cache-efficiency table over many entries."""
    merged: Dict[str, Dict[str, float]] = {}
    for summary in summaries:
        for label, entry in (summary.get("cache") or {}).items():
            slot = merged.setdefault(
                label, {"lookups": 0, "hits": 0, "evictions": 0})
            slot["lookups"] += int(entry.get("lookups") or 0)
            slot["hits"] += int(entry.get("hits") or 0)
            slot["evictions"] += int(entry.get("evictions") or 0)
    for slot in merged.values():
        slot["hit_rate"] = (round(slot["hits"] / slot["lookups"], 4)
                            if slot["lookups"] else None)
    return merged


def render_trace(records: Iterable[Mapping[str, object]]) -> str:
    """The human summary of one trace (SummarySink's output)."""
    records = list(records)
    summary = trace_summary(records)
    wall = summary["wall_s"] or 0.0
    lines = [f"trace: {summary.get('entry') or '?'} "
             f"wall={wall:.3f}s spans={len(spans_of(records))} "
             f"events={summary['events']}"]
    stages = sorted(summary["stages"].items(),
                    key=lambda item: item[1]["self_s"], reverse=True)
    for label, entry in stages:
        share = (entry["self_s"] / wall * 100.0) if wall else 0.0
        lines.append(f"  {label:<24} self={entry['self_s']:8.3f}s "
                     f"({share:5.1f}%)  n={entry['count']}")
    for label, entry in sorted(summary["cache"].items()):
        rate = entry["hit_rate"]
        lines.append(f"  cache {label:<18} lookups={entry['lookups']:<9} "
                     f"hits={entry['hits']:<9} "
                     f"hit-rate={rate if rate is not None else '-'}")
    return "\n".join(lines)


def format_traversal(traversal: Optional[Mapping[str, object]]) -> str:
    """One-line traversal summary used by the ``--profile`` report.

    Rebuilds :class:`~repro.core.stats.TraversalStats` from its
    serialised form, so derived values (the cache hit rate) come from
    the stats layer instead of ad-hoc arithmetic at the call site.
    """
    if not traversal:
        return ""
    stats = TraversalStats.from_dict(traversal)
    rate = (f"{stats.cache_hit_rate:.2f}" if stats.cache_lookups else "-")
    return (f"traversal={stats.wall_time_s:.3f}s"
            f" iterations={stats.iterations}"
            f" images={stats.images_computed}"
            f" bdd_peak={stats.peak_nodes}"
            f" live_peak={stats.peak_live_nodes}"
            f" hit_rate={rate}")
