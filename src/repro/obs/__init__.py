"""``repro.obs``: zero-dependency tracing, metrics and profiling.

The observability substrate of the whole stack -- the kernel
(:mod:`repro.bdd`), the core pipeline (:mod:`repro.core`), the sweep
fabric (:mod:`repro.runner`) and the CLI all emit through this package,
and nothing here feeds back into verdicts: trace and metric data never
enter fingerprints or stable JSON views (rules RA501/RA502 plus the
sweep gate's traced-vs-untraced byte-parity leg pin that).

Quickstart::

    from repro import obs

    with obs.tracing(trace_dir="traces", name="vme_read") as tracer:
        with obs.span("traversal", manager=manager) as span:
            ...                      # timed; BDD cache deltas recorded
            obs.event("iteration", frontier=frontier.size())
            span.annotate(iterations=12)
        tracer.metrics.counter("images").add(42)

When no tracer is active (the default), :func:`span` returns a shared
no-op span and :func:`event` returns immediately -- the disabled path
is one context-variable read, benchmarked in the ``tracing`` section
of ``BENCH_sweep.json``.

Span and metric *names are string literals*; variable data goes into
attributes (``obs.span("check", check=name)``).  The analyzer's RA501
rule enforces this so the stage vocabulary stays enumerable.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Mapping, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.sinks import (
    InMemorySink,
    JSONLSink,
    SummarySink,
    TraceReadWarning,
    read_trace_records,
)
from repro.obs.trace import (
    NULL_SPAN,
    TRACE_SCHEMA_VERSION,
    NullSpan,
    Span,
    Tracer,
    activated,
    active,
    event,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JSONLSink",
    "MetricError",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "SummarySink",
    "TRACE_SCHEMA_VERSION",
    "TraceReadWarning",
    "Tracer",
    "activated",
    "active",
    "event",
    "read_trace_records",
    "span",
    "tracing",
]


@contextmanager
def tracing(trace_dir: Optional[str] = None, name: str = "",
            fingerprint: Optional[str] = None,
            meta: Optional[Mapping[str, object]] = None,
            sink=None):
    """Activate tracing for a block (the worker/CLI front door).

    With ``trace_dir`` the records stream to the per-entry JSONL file
    ``trace_dir/<name>[-<fingerprint12>].jsonl``; with ``sink`` they go
    there instead (in-memory for tests and the benchmark harness).
    With neither, the block runs untraced (``yields None``) and the
    instrumentation inside stays on its no-op path -- callers never
    branch on whether tracing is on.
    """
    if trace_dir is None and sink is None:
        yield None
        return
    sinks = [sink] if sink is not None else [
        JSONLSink.for_entry(trace_dir, name, fingerprint)]
    full_meta = {"entry": name, "fingerprint": fingerprint}
    full_meta.update(meta or {})
    tracer = Tracer(sinks=sinks, meta=full_meta)
    try:
        with activated(tracer):
            yield tracer
    finally:
        tracer.finish()
