"""Trace sinks: where a tracer's records go.

Three built-ins cover the subsystem's consumers:

:class:`InMemorySink`
    Keeps the records in a list -- the test and programmatic-API sink,
    and what the benchmark harness reads traversal statistics from.
:class:`JSONLSink`
    One append-only JSON-lines file per traced entry, the
    :class:`~repro.runner.store.RunStore`'s sibling: a sweep with
    ``--trace DIR`` writes ``DIR/<entry>-<fingerprint12>.jsonl``
    (:meth:`JSONLSink.for_entry`), so trace files are keyed by the same
    content fingerprint as the result cache and shard artifacts merge
    by simply pooling directories.
:class:`SummarySink`
    Collects records and renders the human summary of
    :func:`repro.obs.report.render_trace`.

Reading is as defensive as the RunStore: :func:`read_trace_records`
skips corrupt or truncated lines (a killed sweep may leave a partial
trailing line) with a :class:`TraceReadWarning` instead of failing, so
``tools/trace_report.py`` always renders what survived.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from typing import Dict, List, Optional, Tuple

#: Length of the fingerprint prefix in per-entry trace file names --
#: enough to never collide within a sweep while keeping names readable.
FINGERPRINT_PREFIX = 12

_UNSAFE = re.compile(r"[^A-Za-z0-9._@-]+")


class TraceReadWarning(UserWarning):
    """A trace file contained lines that could not be decoded."""


class InMemorySink:
    """Collect records in order; the sink for tests and in-process use."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []
        self.closed = False

    def emit(self, record: Dict[str, object]) -> None:
        self.records.append(dict(record))

    def close(self) -> None:
        self.closed = True

    # Convenience views -------------------------------------------------
    def spans(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("type") == "span"]

    def events(self) -> List[Dict[str, object]]:
        return [r for r in self.records if r.get("type") == "event"]


def safe_filename(name: str) -> str:
    """A filesystem-safe form of an entry name (``family@scale`` kept)."""
    return _UNSAFE.sub("_", name) or "entry"


class JSONLSink:
    """Append-only JSON-lines trace file (one record per line).

    Records are written with sorted keys and flushed per line, so a
    killed run leaves at worst one truncated trailing line -- exactly
    the damage :func:`read_trace_records` tolerates.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")

    @classmethod
    def for_entry(cls, directory: str, name: str,
                  fingerprint: Optional[str] = None) -> "JSONLSink":
        """The per-entry trace file of a sweep: name + fingerprint key."""
        stem = safe_filename(name)
        if fingerprint:
            stem = f"{stem}-{fingerprint[:FINGERPRINT_PREFIX]}"
        return cls(os.path.join(directory, f"{stem}.jsonl"))

    def emit(self, record: Dict[str, object]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


class SummarySink:
    """Collect records and render the human-readable trace summary."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def emit(self, record: Dict[str, object]) -> None:
        self.records.append(dict(record))

    def render(self) -> str:
        from repro.obs.report import render_trace

        return render_trace(self.records)


def read_trace_records(path: str) -> Tuple[List[Dict[str, object]], int]:
    """Read one trace file; returns ``(records, skipped_lines)``.

    Undecodable lines -- the partial trailing write of a killed sweep,
    or plain corruption -- are counted and skipped with a
    :class:`TraceReadWarning`, mirroring the RunStore's salvage
    semantics: observability must never make a sweep's artifacts
    unreadable.
    """
    records: List[Dict[str, object]] = []
    skipped = 0
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("trace record is not an object")
            except ValueError:
                skipped += 1
                warnings.warn(
                    f"skipping corrupt trace line {number} of {path} "
                    f"(truncated write?)", TraceReadWarning, stacklevel=2)
                continue
            records.append(record)
    return records, skipped
