"""Hierarchical spans and the per-run tracer.

The tracing substrate has exactly two states:

**Disabled** (the default): :func:`span` returns the shared
:data:`NULL_SPAN` singleton and :func:`event` returns immediately --
one ``ContextVar`` read and a ``None`` test, no allocation, no clock
call.  The instrumentation baked into the kernel hot paths
(:mod:`repro.core.traversal`, :mod:`repro.core.pipeline`) therefore
costs nothing measurable when nobody asked for a trace; the tracked
``tracing`` section of ``BENCH_sweep.json`` pins that overhead.

**Enabled**: a :class:`Tracer` is activated for the current context
(:func:`activated`, or the :func:`repro.obs.tracing` front door) and
every :func:`span` call opens a real :class:`Span` -- a node of a tree
carrying wall time, free-form attributes, optional per-span BDD-manager
deltas (operation-cache lookups/hits/evictions and live nodes, diffed
from :meth:`repro.bdd.manager.BDDManager.cache_stats`), and point
events (the per-iteration frontier sizes of the traversal).  Closed
spans and events are emitted as plain dict records to the tracer's
sinks (:mod:`repro.obs.sinks`).

Activation uses a :class:`contextvars.ContextVar`, so the ``thread``
execution backend can trace concurrent entries without cross-talk; the
activator must always reset the variable (``activated`` does) because
pool threads outlive individual tasks.

Span *names are string literals* by contract -- variable data goes into
attributes (``span("check", check=name)``, never ``span(name)``).  The
RA501 analyzer rule enforces this, which is what keeps the stage
vocabulary of :mod:`repro.obs.report` enumerable.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, List, Mapping, Optional

#: Bump when the trace record schema changes incompatibly; recorded in
#: every trace file's ``meta`` record so readers can reject the future.
TRACE_SCHEMA_VERSION = 1


class NullSpan:
    """The do-nothing span returned while tracing is disabled.

    A single shared instance (:data:`NULL_SPAN`); every method is a
    no-op and the instance is falsy, so call sites can cheaply ask
    ``if span:`` before computing expensive attributes.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def annotate(self, **attrs: object) -> None:
        """Discard attributes (the enabled counterpart records them)."""

    def event(self, name: str, **attrs: object) -> None:
        """Discard a point event."""


#: The shared disabled-path span; identity-comparable in tests.
NULL_SPAN = NullSpan()


def _manager_snapshot(manager) -> Dict[str, int]:
    stats = manager.cache_stats()
    return {"lookups": stats["lookups"], "hits": stats["hits"],
            "evictions": stats["evictions"],
            "live_nodes": manager.num_nodes}


class Span:
    """One timed node of the trace tree (use as a context manager).

    ``manager`` (a :class:`~repro.bdd.manager.BDDManager`) may be bound
    at creation: the span then snapshots the manager's monotonic
    operation-cache counters on entry and records the deltas plus the
    final live-node count under ``bdd`` on exit.
    """

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "depth", "start_s", "duration_s", "bdd",
                 "_manager", "_before", "_t0")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], depth: int,
                 manager=None, attrs: Optional[Dict[str, object]] = None
                 ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start_s: float = 0.0
        self.duration_s: float = 0.0
        self.bdd: Optional[Dict[str, int]] = None
        self._manager = manager
        self._before: Optional[Dict[str, int]] = None
        self._t0: float = 0.0

    def __bool__(self) -> bool:
        return True

    def annotate(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Record a point event under this span."""
        self.tracer._emit_event(self, name, attrs)

    def __enter__(self) -> "Span":
        self._t0 = self.tracer._clock()
        self.start_s = self._t0 - self.tracer.start
        if self._manager is not None:
            self._before = _manager_snapshot(self._manager)
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.duration_s = self.tracer._clock() - self._t0
        if self._before is not None:
            after = _manager_snapshot(self._manager)
            before = self._before
            self.bdd = {
                "lookups": after["lookups"] - before["lookups"],
                "hits": after["hits"] - before["hits"],
                "evictions": after["evictions"] - before["evictions"],
                "live_nodes": after["live_nodes"],
                "live_nodes_delta":
                    after["live_nodes"] - before["live_nodes"],
            }
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._pop(self)
        return False

    # ------------------------------------------------------------------
    # The record schema (one JSONL line per closed span)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.bdd is not None:
            record["bdd"] = dict(self.bdd)
        return record

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Span":
        """Rebuild a closed span from a :meth:`to_dict` record.

        The result is detached (``tracer`` is ``None``) -- it exists for
        report-side consumers that want ``Span`` semantics back.
        """
        span = cls(tracer=None, name=str(data["name"]),
                   span_id=int(data["id"]),
                   parent_id=(None if data.get("parent") is None
                              else int(data["parent"])),
                   depth=int(data.get("depth") or 0),
                   attrs=dict(data.get("attrs") or {}))
        span.start_s = float(data.get("start_s") or 0.0)
        span.duration_s = float(data.get("duration_s") or 0.0)
        bdd = data.get("bdd")
        span.bdd = dict(bdd) if bdd is not None else None
        return span


class Tracer:
    """One trace: a span tree, point events, sinks and metrics.

    ``meta`` identifies what is being traced (entry name, fingerprint,
    execution provenance); it is emitted as the first record.  Spans
    and events stream to every sink as they close / occur;
    :meth:`finish` emits the closing record (with the metrics snapshot)
    and closes the sinks.
    """

    def __init__(self, sinks=(), metrics=None,
                 meta: Optional[Mapping[str, object]] = None) -> None:
        from repro.obs.metrics import MetricsRegistry

        self._clock = time.perf_counter
        self.start = self._clock()
        self.sinks = list(sinks)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.meta: Dict[str, object] = dict(meta or {})
        self._stack: List[Span] = []
        self._next_id = 0
        self._finished = False
        self._emit({"type": "meta",
                    "schema": TRACE_SCHEMA_VERSION, **self.meta})

    # ------------------------------------------------------------------
    # Span and event creation
    # ------------------------------------------------------------------
    def span(self, name: str, manager=None, **attrs: object) -> Span:
        """Open a child of the innermost open span (enter to start it)."""
        parent = self._stack[-1] if self._stack else None
        span = Span(self, name, span_id=self._next_id,
                    parent_id=parent.span_id if parent else None,
                    depth=parent.depth + 1 if parent else 0,
                    manager=manager, attrs=attrs)
        self._next_id += 1
        return span

    def event(self, name: str, **attrs: object) -> None:
        """Record a point event under the innermost open span."""
        current = self._stack[-1] if self._stack else None
        self._emit_event(current, name, attrs)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def finish(self) -> None:
        """Emit the end record (metrics snapshot) and close the sinks."""
        if self._finished:
            return
        self._finished = True
        record: Dict[str, object] = {
            "type": "end",
            "wall_s": round(self._clock() - self.start, 6),
        }
        snapshot = self.metrics.snapshot()
        if snapshot:
            record["metrics"] = snapshot
        self._emit(record)
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # ------------------------------------------------------------------
    # Internals shared with Span
    # ------------------------------------------------------------------
    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # defensive: out-of-order exit
            self._stack.remove(span)
        self._emit(span.to_dict())

    def _emit_event(self, span: Optional[Span], name: str,
                    attrs: Mapping[str, object]) -> None:
        record: Dict[str, object] = {
            "type": "event",
            "span": span.span_id if span is not None else None,
            "name": name,
            "at_s": round(self._clock() - self.start, 6),
        }
        if attrs:
            record["attrs"] = dict(attrs)
        self._emit(record)

    def _emit(self, record: Dict[str, object]) -> None:
        for sink in self.sinks:
            sink.emit(record)


# ----------------------------------------------------------------------
# Context-local activation (the module-level front door)
# ----------------------------------------------------------------------
_ACTIVE: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_obs_tracer", default=None)


def active() -> Optional[Tracer]:
    """The tracer activated for the current context, if any.

    Hot loops fetch this once and guard per-iteration work (frontier
    sizes, extra counter reads) with ``if tracer is not None`` so the
    disabled path stays free.
    """
    return _ACTIVE.get()


def span(name: str, manager=None, **attrs: object):
    """Open a span on the active tracer, or the shared no-op span.

    The name must be a string literal (rule RA501); put variable data
    into keyword attributes.
    """
    tracer = _ACTIVE.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, manager=manager, **attrs)


def event(name: str, **attrs: object) -> None:
    """Record a point event on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.event(name, **attrs)


@contextmanager
def activated(tracer: Tracer):
    """Activate ``tracer`` for the dynamic extent of the ``with`` block.

    Always resets the context variable on exit: worker threads of the
    ``thread`` backend are pooled, so a leaked activation would bleed
    into the next task scheduled on the same thread.
    """
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)
