"""Named counters, gauges and histograms with a metrics registry.

The registry mirrors the :mod:`repro.engines` idiom -- ``register`` /
``unregister`` / ``available`` / ``get`` with a did-you-mean error --
but is an *instance* rather than module state: every
:class:`~repro.obs.trace.Tracer` owns one, so concurrent sweep entries
(thread backend) never share mutable metric state and a trace file's
closing snapshot describes exactly one entry.

The convenience accessors (:meth:`MetricsRegistry.counter` /
``gauge`` / ``histogram``) get-or-create, so instrumentation sites can
say ``tracer.metrics.counter("images").add(1)`` without a registration
ceremony.  Metric names are string literals by the same RA501 contract
as span names.

Like every observability value, metric readings are diagnostics only:
they must never feed fingerprints or ``stable_dict`` views (rule
RA502) -- the sweep gate's byte-parity legs assume traced and untraced
runs produce identical stable output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.api.errors import suggest

Number = Union[int, float]


class MetricError(KeyError):
    """Unknown or duplicate metric name."""


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def add(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(got {amount})")
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """A stream of observations summarised as count/sum/min/max/mean."""

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.minimum: Optional[Number] = None
        self.maximum: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "count": self.count,
                "sum": self.total, "min": self.minimum,
                "max": self.maximum, "mean": self.mean}


Metric = Union[Counter, Gauge, Histogram]

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """One tracer's named metrics (register / available / get)."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def register(self, name: str, metric: Metric,
                 replace: bool = False) -> Metric:
        """Register ``metric`` under ``name`` (``replace=True`` to
        override)."""
        if name in self._metrics and not replace:
            raise MetricError(f"duplicate metric {name!r}")
        self._metrics[name] = metric
        return metric

    def unregister(self, name: str) -> None:
        """Remove a registered metric (tests and plug-in teardown)."""
        self._metrics.pop(name, None)

    def available(self) -> List[str]:
        """Every registered metric name, in registration order."""
        return list(self._metrics)

    def get(self, name: str) -> Metric:
        """Look up a metric; unknown names raise :class:`MetricError`
        with a did-you-mean suggestion."""
        try:
            return self._metrics[name]
        except KeyError:
            raise MetricError(
                f"unknown metric {name!r}; available: "
                f"{', '.join(self.available()) or '(none)'}"
                f"{suggest(name, self.available())}") from None

    # ------------------------------------------------------------------
    # Get-or-create accessors (the instrumentation-site front door)
    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self.register(name, _KINDS[kind](name))
        elif metric.kind != kind:
            raise MetricError(
                f"metric {name!r} is a {metric.kind}, not a {kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, "histogram")

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every metric's summary, keyed by name (sorted for stable
        serialisation)."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}
