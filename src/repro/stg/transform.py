"""Behaviour-preserving and interface transformations of STGs.

The paper distinguishes between transformations that keep the interface
(insertion of internal signals to repair *reducible* CSC violations,
Section 3.4) and transformations that change it (required for irreducible
violations).  This module provides the corresponding tools:

* :func:`insert_signal` -- splice a new signal's rising and falling
  transitions after two existing transitions; the observable (projected)
  behaviour is preserved, which is exactly the mechanism used to resolve
  reducible CSC conflicts by hand or by an encoding tool;
* :func:`hide_signals` / :func:`expose_signals` -- move signals between the
  output and internal partitions (interface changes, relevant for the
  SI- vs I/O-implementability distinction);
* :func:`relabel_signal` -- consistent renaming;
* :func:`mirror_signal` -- swap the rising and falling transitions of a
  signal (active-low view), flipping its initial value.

Every function returns a new :class:`~repro.stg.stg.STG`; inputs are never
mutated.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.stg.signals import STGError, SignalKind, SignalTransition
from repro.stg.stg import STG


def _clone_with_signals(stg: STG, signal_kinds: Dict[str, SignalKind],
                        initial_values: Dict[str, bool],
                        rename: Optional[Dict[str, str]] = None) -> STG:
    """Rebuild ``stg`` with new signal kinds / names / initial values."""
    rename = rename or {}
    clone = STG(stg.name)
    for signal in stg.signals:
        new_name = rename.get(signal, signal)
        clone.add_signal(new_name, signal_kinds[signal],
                         initial_value=initial_values.get(signal))
    for place in stg.places:
        clone.add_place(place, stg.initial_marking()[place])
    for transition in stg.transitions:
        label = stg.label_of(transition)
        new_label = SignalTransition(rename.get(label.signal, label.signal),
                                     label.polarity, label.index)
        clone.add_transition(new_label)
    mapping = {}
    for transition in stg.transitions:
        label = stg.label_of(transition)
        new_label = SignalTransition(rename.get(label.signal, label.signal),
                                     label.polarity, label.index)
        mapping[transition] = str(new_label)
    for source, target in stg.net.arcs():
        new_source = mapping.get(source, source)
        new_target = mapping.get(target, target)
        clone.add_arc(new_source, new_target)
    return clone


def insert_signal(stg: STG, signal: str, rise_after: str, fall_after: str,
                  kind: SignalKind = SignalKind.INTERNAL,
                  initial_value: bool = False) -> STG:
    """Insert a new signal sequenced after two existing transitions.

    The rising transition ``signal+`` is spliced directly after the
    transition ``rise_after``: every place previously produced by
    ``rise_after`` is now produced by ``signal+`` instead, and a fresh
    place connects the two.  The falling transition is spliced after
    ``fall_after`` in the same way.  Projected onto the original signals
    the behaviour is unchanged (the new events are merely interleaved), so
    the transformation is the one used to repair reducible CSC violations.

    Parameters
    ----------
    stg:
        The specification to transform (not modified).
    signal:
        Name of the new signal (must not exist yet).
    rise_after / fall_after:
        Names of existing transitions after which ``signal+`` /
        ``signal-`` are inserted.  They must be different transitions.
    kind:
        Kind of the new signal (internal by default -- interface preserved).
    initial_value:
        Initial value of the new signal.
    """
    if stg.has_signal(signal):
        raise STGError(f"signal {signal!r} already exists")
    if rise_after == fall_after:
        raise STGError("rise_after and fall_after must be different transitions")
    for transition in (rise_after, fall_after):
        if transition not in stg.transitions:
            raise STGError(f"unknown transition {transition!r}")

    clone = stg.copy()
    clone.add_signal(signal, kind, initial_value=initial_value)
    _splice_after(clone, rise_after, f"{signal}+")
    _splice_after(clone, fall_after, f"{signal}-")
    return clone


def _splice_after(stg: STG, anchor: str, new_label: str) -> None:
    """Splice the transition ``new_label`` directly after ``anchor``."""
    new_transition = stg.add_transition(new_label)
    successors = sorted(stg.net.postset_of_transition(anchor))
    for place in successors:
        stg.net.remove_arc(anchor, place)
        stg.net.add_arc(new_transition, place)
    bridge = STG.implicit_place_name(anchor, new_transition)
    stg.add_place(bridge)
    stg.net.add_arc(anchor, bridge)
    stg.net.add_arc(bridge, new_transition)


def hide_signals(stg: STG, signals: Iterable[str]) -> STG:
    """Turn the given output signals into internal (hidden) signals.

    Hiding changes the interface: the result is compared with the original
    by *trace* equivalence over the remaining observable signals rather
    than by I/O equivalence (Definitions 2.4 / 2.5).
    """
    to_hide = set(signals)
    kinds = {}
    for name in stg.signals:
        kind = stg.kind_of(name)
        if name in to_hide:
            if kind is SignalKind.INPUT:
                raise STGError(f"cannot hide input signal {name!r}")
            kind = SignalKind.INTERNAL
        kinds[name] = kind
    unknown = to_hide - set(stg.signals)
    if unknown:
        raise STGError(f"unknown signals {sorted(unknown)}")
    return _clone_with_signals(stg, kinds, stg.initial_values)


def expose_signals(stg: STG, signals: Iterable[str]) -> STG:
    """Turn the given internal signals into observable outputs."""
    to_expose = set(signals)
    kinds = {}
    for name in stg.signals:
        kind = stg.kind_of(name)
        if name in to_expose:
            if kind is SignalKind.INPUT:
                raise STGError(f"signal {name!r} is an input")
            kind = SignalKind.OUTPUT
        kinds[name] = kind
    unknown = to_expose - set(stg.signals)
    if unknown:
        raise STGError(f"unknown signals {sorted(unknown)}")
    return _clone_with_signals(stg, kinds, stg.initial_values)


def relabel_signal(stg: STG, old: str, new: str) -> STG:
    """Rename a signal consistently in the interface and the labelling."""
    stg.kind_of(old)
    if stg.has_signal(new):
        raise STGError(f"signal {new!r} already exists")
    kinds = {name: stg.kind_of(name) for name in stg.signals}
    return _clone_with_signals(stg, kinds, stg.initial_values,
                               rename={old: new})


def mirror_signal(stg: STG, signal: str) -> STG:
    """Swap the polarities of one signal (active-low view).

    Every ``signal+`` transition becomes ``signal-`` and vice versa, and
    the initial value is complemented, so the state graph is isomorphic
    with the signal's column inverted.
    """
    stg.kind_of(signal)
    clone = STG(stg.name)
    for name in stg.signals:
        value = stg.initial_value(name)
        if name == signal and value is not None:
            value = not value
        clone.add_signal(name, stg.kind_of(name), initial_value=value)
    for place in stg.places:
        clone.add_place(place, stg.initial_marking()[place])
    mapping = {}
    for transition in stg.transitions:
        label = stg.label_of(transition)
        if label.signal == signal:
            label = label.complement()
        mapping[transition] = str(label)
        clone.add_transition(label)
    for source, target in stg.net.arcs():
        clone.add_arc(mapping.get(source, source), mapping.get(target, target))
    return clone
