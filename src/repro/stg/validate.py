"""Structural validation of STGs and conflict-candidate extraction.

These checks are purely structural (no state-space exploration) and are
used both as pre-flight validation before the expensive symbolic phases
and as the source of the candidate pairs the persistency / fake-conflict
checks iterate over (Sections 5.2 and 5.4 only look at transitions sharing
an input place).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.petri.structure import (
    conflict_places,
    is_marked_graph,
    isolated_places,
    source_transitions,
)
from repro.stg.signals import STGError
from repro.stg.stg import STG


@dataclass
class ValidationIssue:
    """A single structural problem found in an STG."""

    severity: str  # "error" or "warning"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.message}"


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_structure`."""

    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def valid(self) -> bool:
        """True when no error-severity issue was found."""
        return not self.errors

    def __str__(self) -> str:
        if not self.issues:
            return "structure OK"
        return "\n".join(str(issue) for issue in self.issues)


def validate_structure(stg: STG) -> ValidationReport:
    """Run all structural checks and collect issues."""
    report = ValidationReport()

    def error(message: str) -> None:
        report.issues.append(ValidationIssue("error", message))

    def warning(message: str) -> None:
        report.issues.append(ValidationIssue("warning", message))

    if not stg.signals:
        error("the STG declares no signals")
    if not stg.transitions:
        error("the STG has no transitions")

    # Every transition must be labelled with a declared signal (guaranteed
    # by the STG API but not by hand-built nets or future parsers).
    for transition in stg.net.transitions:
        try:
            label = stg.label_of(transition)
        except STGError:
            error(f"transition {transition!r} has no signal label")
            continue
        if not stg.has_signal(label.signal):
            error(f"transition {transition!r} uses undeclared signal "
                  f"{label.signal!r}")

    # Signals with no transitions can never change: likely a spec bug.
    for signal in stg.signals:
        if not stg.transitions_of_signal(signal):
            warning(f"signal {signal!r} has no transitions")
        else:
            rising = stg.transitions_of(signal, "+")
            falling = stg.transitions_of(signal, "-")
            if bool(rising) != bool(falling):
                warning(f"signal {signal!r} has only "
                        f"{'rising' if rising else 'falling'} transitions; "
                        f"this is consistent only for acyclic (one-shot) "
                        f"specifications")

    # Structural net sanity.
    for transition in source_transitions(stg.net):
        error(f"transition {transition!r} has no input places "
              f"(it would be enabled forever)")
    for place in isolated_places(stg.net):
        warning(f"place {place!r} is not connected to any transition")

    # Initial marking must not be empty.
    if stg.initial_marking().total_tokens() == 0 and stg.transitions:
        error("the initial marking is empty: no transition can ever fire")

    return report


def direct_conflict_pairs(stg: STG) -> List[Tuple[str, str]]:
    """Ordered pairs of labelled transitions sharing an input place.

    These are the candidates for non-persistency (Definition 3.3) and for
    fake conflicts (Definition 3.6).
    """
    pairs: Set[Tuple[str, str]] = set()
    for place in conflict_places(stg.net):
        successors = sorted(stg.net.postset_of_place(place))
        for first in successors:
            for second in successors:
                if first != second:
                    pairs.add((first, second))
    return sorted(pairs)


def conflict_signal_pairs(stg: STG) -> List[Tuple[str, str]]:
    """Distinct signal pairs involved in some direct transition conflict."""
    pairs: Set[Tuple[str, str]] = set()
    for first, second in direct_conflict_pairs(stg):
        signal_a = stg.signal_of(first)
        signal_b = stg.signal_of(second)
        if signal_a != signal_b:
            pairs.add((signal_a, signal_b))
    return sorted(pairs)


def input_choice_only(stg: STG) -> bool:
    """True when every direct conflict involves only input signals.

    Such conflicts model environment choice and never violate output
    persistency; the STG is then structurally persistent for non-inputs.
    """
    for first, second in direct_conflict_pairs(stg):
        if not stg.is_input(stg.signal_of(first)) \
                or not stg.is_input(stg.signal_of(second)):
            return False
    return True


def is_marked_graph_stg(stg: STG) -> bool:
    """True when the underlying net is a marked graph (always persistent)."""
    return is_marked_graph(stg.net)
