"""Signal Transition Graphs (STGs).

An STG is a Petri net whose transitions are interpreted as rising (``a+``)
or falling (``a-``) transitions of circuit signals, partitioned into
inputs, outputs and internal signals (Definition 2.1 of the paper).

Contents:

* :mod:`repro.stg.signals` -- signal kinds and transition labels,
* :mod:`repro.stg.stg` -- the :class:`~repro.stg.stg.STG` class,
* :mod:`repro.stg.parser` / :mod:`repro.stg.writer` -- the ``.g`` (ASTG)
  interchange format,
* :mod:`repro.stg.validate` -- structural validation and conflict
  candidates,
* :mod:`repro.stg.generators` -- the paper's figures and the scalable
  benchmark families used by Table 1.
"""

from repro.stg.signals import SignalKind, SignalTransition, STGError
from repro.stg.stg import STG
from repro.stg.parser import parse_g, read_g_file
from repro.stg.writer import write_g, to_g_string

__all__ = [
    "SignalKind",
    "SignalTransition",
    "STGError",
    "STG",
    "parse_g",
    "read_g_file",
    "write_g",
    "to_g_string",
]
