"""Parser for the ``.g`` (ASTG / SIS / petrify) STG interchange format.

The supported subset covers the files produced by
:mod:`repro.stg.writer` and the classical benchmark files:

* ``.model NAME`` (also ``.name``) -- model name,
* ``.inputs`` / ``.outputs`` / ``.internal`` -- signal declarations,
* ``.graph`` -- adjacency lines ``node successor1 successor2 ...`` where a
  node is a signal transition (``a+``, ``b-/2``) or an explicit place
  (any other identifier),
* ``.marking { p1 <a+,b-> ... }`` -- initially marked places, using
  ``<t1,t2>`` for the implicit place between two transitions,
* ``.initial_values a=0 b=1`` -- optional extension recording the initial
  signal values (absent in classical files, where values are inferred),
* ``.capacity``, ``.coords``, comments (``#``) and ``.end`` are accepted
  and ignored where harmless.

``.dummy`` transitions are not supported (the paper's theory does not
cover unlabelled events) and raise :class:`~repro.stg.signals.STGError`.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Optional, Tuple

from repro.stg.signals import STGError, SignalKind, SignalTransition
from repro.stg.stg import STG


class SpecificationNotFound(STGError, FileNotFoundError):
    """A ``.g`` path does not exist.

    Subclasses both :class:`~repro.stg.signals.STGError` (so STG-level
    error handling catches it) and :class:`FileNotFoundError` (so callers
    written against the old behaviour keep working).  The message names
    the benchmark-corpus entries that can be materialised instead of the
    missing file.
    """

_TRANSITION_RE = re.compile(
    r"^[A-Za-z_][A-Za-z_0-9.\[\]]*[+-](/\d+)?$")
_IMPLICIT_PLACE_RE = re.compile(r"^<([^,<>]+),([^,<>]+)>$")


def _is_transition_token(token: str) -> bool:
    return bool(_TRANSITION_RE.match(token))


def parse_g(text: str, name: Optional[str] = None) -> STG:
    """Parse the text of a ``.g`` file into an :class:`~repro.stg.stg.STG`."""
    lines = _logical_lines(text)
    model_name = name or "stg"
    declarations: List[Tuple[SignalKind, List[str]]] = []
    graph_lines: List[List[str]] = []
    marking_tokens: List[str] = []
    initial_values: Dict[str, bool] = {}
    in_graph = False

    for line in lines:
        directive, _, rest = line.partition(" ")
        directive = directive.strip()
        rest = rest.strip()
        if directive in (".model", ".name"):
            model_name = rest or model_name
            in_graph = False
        elif directive == ".inputs":
            declarations.append((SignalKind.INPUT, rest.split()))
            in_graph = False
        elif directive == ".outputs":
            declarations.append((SignalKind.OUTPUT, rest.split()))
            in_graph = False
        elif directive == ".internal":
            declarations.append((SignalKind.INTERNAL, rest.split()))
            in_graph = False
        elif directive == ".dummy":
            raise STGError(".dummy transitions are not supported")
        elif directive == ".graph":
            in_graph = True
        elif directive == ".marking":
            marking_tokens.extend(_parse_marking_tokens(rest))
            in_graph = False
        elif directive == ".initial_values":
            initial_values.update(_parse_initial_values(rest))
            in_graph = False
        elif directive in (".end", ".capacity", ".coords", ".slowenv"):
            in_graph = False
        elif directive.startswith("."):
            raise STGError(f"unsupported directive {directive!r}")
        else:
            if not in_graph:
                raise STGError(f"unexpected line outside .graph: {line!r}")
            graph_lines.append(line.split())

    stg = STG(model_name)
    for kind, names in declarations:
        for signal in names:
            stg.add_signal(signal, kind)

    _build_graph(stg, graph_lines)
    _apply_marking(stg, marking_tokens)
    for signal, value in initial_values.items():
        stg.set_initial_value(signal, value)
    return stg


def read_g_file(path: str) -> STG:
    """Read and parse a ``.g`` file.

    A missing path raises :class:`SpecificationNotFound`, whose message
    lists the named entries of :mod:`repro.corpus` (each can be written
    out with ``corpus.write_g(name, path)``) -- a bare
    ``FileNotFoundError`` gives the user nothing to act on.
    """
    if not os.path.exists(path):
        # Imported lazily: repro.corpus parses its entries through this
        # module, so a top-level import would be circular.
        from repro.corpus import names as corpus_names

        available = ", ".join(corpus_names())
        raise SpecificationNotFound(
            f"no such .g file: {path!r}; known corpus entries (materialise "
            f"one with repro.corpus.write_g(name, path)): {available}")
    with open(path, "r", encoding="utf-8") as handle:
        return parse_g(handle.read())


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _logical_lines(text: str) -> List[str]:
    lines = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            lines.append(line)
    return lines


def _parse_marking_tokens(rest: str) -> List[str]:
    body = rest.strip()
    if body.startswith("{"):
        body = body[1:]
    if body.endswith("}"):
        body = body[:-1]
    # Implicit places <a+,b-> must stay single tokens.
    tokens = re.findall(r"<[^>]+>(?:=\d+)?|[^\s{}]+", body)
    return [token for token in tokens if token]


def _parse_initial_values(rest: str) -> Dict[str, bool]:
    values: Dict[str, bool] = {}
    for item in rest.split():
        name, _, value = item.partition("=")
        if value not in ("0", "1"):
            raise STGError(f"invalid initial value assignment {item!r}")
        values[name] = value == "1"
    return values


def _build_graph(stg: STG, graph_lines: List[List[str]]) -> None:
    # First-appearance document order, deduplicated.  Declaration order
    # fixes the net's transition and place lists, which downstream fix
    # the traversal's firing order and the BDD variable order -- a set
    # here would make every run's traversal statistics depend on the
    # interpreter's hash seed, breaking the sweep runner's cross-process
    # byte-identity contract.
    tokens = list(dict.fromkeys(
        token for line in graph_lines for token in line))
    place_names = [t for t in tokens if not _is_transition_token(t)]
    # Declare every transition and every explicit place first.
    for token in tokens:
        if _is_transition_token(token):
            stg.ensure_transition(token)
    for place in place_names:
        stg.add_place(place)
    # Now wire the adjacency lines.
    for line in graph_lines:
        if not line:
            continue
        source, successors = line[0], line[1:]
        for target in successors:
            _connect_nodes(stg, source, target)


def _connect_nodes(stg: STG, source: str, target: str) -> None:
    source_is_transition = _is_transition_token(source)
    target_is_transition = _is_transition_token(target)
    if source_is_transition and target_is_transition:
        source_name = str(SignalTransition.parse(source))
        target_name = str(SignalTransition.parse(target))
        place = STG.implicit_place_name(source_name, target_name)
        if not stg.net.has_place(place):
            stg.add_place(place)
        stg.add_arc(source_name, place)
        stg.add_arc(place, target_name)
    elif source_is_transition and not target_is_transition:
        stg.add_arc(str(SignalTransition.parse(source)), target)
    elif not source_is_transition and target_is_transition:
        stg.add_arc(source, str(SignalTransition.parse(target)))
    else:
        raise STGError(
            f"arc between two places {source!r} -> {target!r} is not allowed")


def _apply_marking(stg: STG, tokens: List[str]) -> None:
    for token in tokens:
        name, _, count_text = token.partition("=")
        count = int(count_text) if count_text else 1
        implicit = _IMPLICIT_PLACE_RE.match(name)
        if implicit:
            source = str(SignalTransition.parse(implicit.group(1)))
            target = str(SignalTransition.parse(implicit.group(2)))
            place = STG.implicit_place_name(source, target)
        else:
            place = name
        if not stg.net.has_place(place):
            raise STGError(f"marked place {place!r} does not exist")
        stg.net.set_initial_tokens(place, count)
