"""Signal kinds and signal-transition labels.

A signal transition label is a triple ``(signal, index, polarity)`` written
``a+``, ``a-`` or, when a signal switches several times per cycle,
``a+/2``, ``a-/3`` (the index distinguishes the occurrences, exactly as the
``j``-th transition ``a_j*`` of the paper and the ``.g`` file notation).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum


class STGError(Exception):
    """Raised for ill-formed STGs, labels or files."""


class SignalKind(Enum):
    """Partition of the signal set ``S_A = S_I U S_O U S_H``."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"

    @property
    def is_input(self) -> bool:
        return self is SignalKind.INPUT

    @property
    def is_noninput(self) -> bool:
        """Outputs and internal signals: the ones the circuit must produce."""
        return self is not SignalKind.INPUT


RISING = "+"
FALLING = "-"

_LABEL_RE = re.compile(
    r"^(?P<signal>[A-Za-z_][A-Za-z_0-9.\[\]]*)"
    r"(?P<polarity>[+-])"
    r"(?:/(?P<index>\d+))?$"
)


@dataclass(frozen=True)
class SignalTransition:
    """An interpreted transition label ``signal`` ``polarity`` ``/index``.

    ``index`` numbers repeated occurrences of the same signal change within
    one specification (default 1).  Two labels with different indices are
    distinct Petri-net transitions of the same *signal transition kind*.
    """

    signal: str
    polarity: str
    index: int = 1

    def __post_init__(self) -> None:
        if self.polarity not in (RISING, FALLING):
            raise STGError(f"invalid polarity {self.polarity!r}")
        if self.index < 1:
            raise STGError(f"invalid occurrence index {self.index}")

    @property
    def is_rising(self) -> bool:
        return self.polarity == RISING

    @property
    def is_falling(self) -> bool:
        return self.polarity == FALLING

    @property
    def target_value(self) -> bool:
        """Signal value after the transition fires (True for ``+``)."""
        return self.is_rising

    @property
    def generic(self) -> str:
        """Generic name ``a+`` / ``a-`` without the occurrence index."""
        return f"{self.signal}{self.polarity}"

    def complement(self) -> "SignalTransition":
        """The opposite-polarity transition of the same signal/index."""
        polarity = FALLING if self.is_rising else RISING
        return SignalTransition(self.signal, polarity, self.index)

    @staticmethod
    def parse(text: str) -> "SignalTransition":
        """Parse ``a+``, ``b-``, ``a+/2`` ... into a label."""
        match = _LABEL_RE.match(text.strip())
        if match is None:
            raise STGError(f"cannot parse signal transition label {text!r}")
        index = match.group("index")
        return SignalTransition(
            signal=match.group("signal"),
            polarity=match.group("polarity"),
            index=int(index) if index else 1,
        )

    def __str__(self) -> str:
        if self.index == 1:
            return self.generic
        return f"{self.generic}/{self.index}"
