"""Graphviz DOT export of STGs and state graphs.

Renders the shorthand form used in the paper's figures: transitions are
drawn as their labels, places with a single producer and consumer are
collapsed into plain arcs, choice/merge places are drawn as circles, and
tokens are shown as filled dots.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sg.state import StateGraph
from repro.stg.stg import STG


def _is_shorthand_place(stg: STG, place: str) -> bool:
    return (len(stg.net.preset_of_place(place)) == 1
            and len(stg.net.postset_of_place(place)) == 1)


def stg_to_dot(stg: STG, name: Optional[str] = None,
               collapse_places: bool = True) -> str:
    """DOT digraph of an STG in shorthand notation.

    Input transitions are drawn with a dashed border, outputs solid and
    internal signals grey; marked places / arcs carry a ``&bull;`` label.
    """
    graph_name = name or stg.name or "stg"
    safe_name = "".join(c if c.isalnum() or c == "_" else "_"
                        for c in graph_name)
    lines: List[str] = [f"digraph {safe_name} {{", "  rankdir=TB;"]
    node_id = {}

    def identifier(node: str) -> str:
        if node not in node_id:
            node_id[node] = f"n{len(node_id)}"
        return node_id[node]

    marking = stg.initial_marking()
    for transition in stg.transitions:
        label = stg.label_of(transition)
        kind = stg.kind_of(label.signal)
        style = {"input": "dashed", "output": "solid",
                 "internal": "filled"}[kind.value]
        extra = ', fillcolor="lightgrey"' if kind.value == "internal" else ""
        lines.append(f'  {identifier(transition)} [label="{transition}", '
                     f'shape=box, style={style}{extra}];')
    for place in stg.places:
        if collapse_places and _is_shorthand_place(stg, place):
            continue
        token = "&bull;" if marking[place] > 0 else ""
        lines.append(f'  {identifier(place)} [label="{token}", shape=circle, '
                     f'xlabel="{place}"];')
    for place in stg.places:
        producers = sorted(stg.net.preset_of_place(place))
        consumers = sorted(stg.net.postset_of_place(place))
        if collapse_places and _is_shorthand_place(stg, place):
            attributes = ' [label="&bull;"]' if marking[place] > 0 else ""
            lines.append(f"  {identifier(producers[0])} -> "
                         f"{identifier(consumers[0])}{attributes};")
            continue
        for producer in producers:
            lines.append(f"  {identifier(producer)} -> {identifier(place)};")
        for consumer in consumers:
            lines.append(f"  {identifier(place)} -> {identifier(consumer)};")
    lines.append("}")
    return "\n".join(lines)


def state_graph_to_dot(graph: StateGraph, stg: STG,
                       name: str = "state_graph") -> str:
    """DOT digraph of a (full) state graph; vertices show the binary code."""
    signals = stg.signals
    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;"]
    identifiers = {}
    for index, state in enumerate(graph.states):
        identifiers[state] = f"s{index}"
        label = state.code_string(signals)
        shape = "doublecircle" if state == graph.initial else "circle"
        lines.append(f'  s{index} [label="{label}", shape={shape}];')
    for source, transition, target in graph.edges():
        lines.append(f'  {identifiers[source]} -> {identifiers[target]} '
                     f'[label="{transition}"];')
    lines.append("}")
    return "\n".join(lines)


def write_dot(text: str, path: str) -> None:
    """Write a DOT string produced by the functions above to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n")
