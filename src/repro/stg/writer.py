"""Writer for the ``.g`` (ASTG) STG interchange format.

Produces files readable by :mod:`repro.stg.parser` (and by classical tools
for the common subset).  Implicit places created by
:meth:`repro.stg.stg.STG.connect` are written back as direct
transition-to-transition arcs; explicit places keep their names.
"""

from __future__ import annotations

from typing import Dict, List

from repro.stg.stg import STG


def to_g_string(stg: STG) -> str:
    """Serialise an STG to the ``.g`` format."""
    lines: List[str] = [f".model {stg.name}"]
    if stg.inputs:
        lines.append(".inputs " + " ".join(stg.inputs))
    if stg.outputs:
        lines.append(".outputs " + " ".join(stg.outputs))
    if stg.internals:
        lines.append(".internal " + " ".join(stg.internals))
    lines.append(".graph")
    lines.extend(_graph_lines(stg))
    marking = _marking_tokens(stg)
    lines.append(".marking { " + " ".join(marking) + " }")
    if stg.initial_values:
        assignments = " ".join(
            f"{signal}={1 if value else 0}"
            for signal, value in sorted(stg.initial_values.items()))
        lines.append(".initial_values " + assignments)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_g(stg: STG, path: str) -> None:
    """Write an STG to a ``.g`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_g_string(stg))


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _is_implicit(stg: STG, place: str) -> bool:
    """Implicit places (one producer, one consumer, angle-bracket name)."""
    if not (place.startswith("<") and place.endswith(">")):
        return False
    return (len(stg.net.preset_of_place(place)) == 1
            and len(stg.net.postset_of_place(place)) == 1)


def _graph_lines(stg: STG) -> List[str]:
    adjacency: Dict[str, List[str]] = {}

    def add_edge(source: str, target: str) -> None:
        adjacency.setdefault(source, []).append(target)

    for place in stg.places:
        producers = sorted(stg.net.preset_of_place(place))
        consumers = sorted(stg.net.postset_of_place(place))
        if _is_implicit(stg, place):
            add_edge(producers[0], consumers[0])
        else:
            for producer in producers:
                add_edge(producer, place)
            for consumer in consumers:
                add_edge(place, consumer)
    lines = []
    for source in sorted(adjacency):
        targets = " ".join(sorted(adjacency[source]))
        lines.append(f"{source} {targets}")
    # Isolated explicit places still need to exist after a round-trip; they
    # are emitted as bare nodes (tolerated by the parser as a single token
    # line only if they also appear in the marking), so skip them silently.
    return lines


def _marking_tokens(stg: STG) -> List[str]:
    tokens = []
    initial = stg.initial_marking()
    for place in stg.places:
        count = initial[place]
        if count == 0:
            continue
        if _is_implicit(stg, place):
            producer = sorted(stg.net.preset_of_place(place))[0]
            consumer = sorted(stg.net.postset_of_place(place))[0]
            name = f"<{producer},{consumer}>"
        else:
            name = place
        tokens.append(name if count == 1 else f"{name}={count}")
    return sorted(tokens)
