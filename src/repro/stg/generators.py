"""Benchmark STG generators.

Two groups of specifications are produced here:

* **Paper figures** -- the two-user mutual-exclusion element of Figure 1,
  the non-persistency / fake-conflict pair D1/D2 of Figure 3 and the small
  property-violation examples discussed in Section 3.  These are encoded
  exactly as drawn and are used by the unit tests and the examples.

* **Scalable families** -- parameterised specifications whose state space
  grows exponentially with the scale parameter, mirroring the families the
  paper's Table 1 is built on (Muller pipelines and master-read style
  marked graphs, mutual-exclusion arrays with arbitration).  The original
  benchmark files are not redistributable, so these generators rebuild the
  same structural families programmatically (see DESIGN.md, Section 2).

Every generated STG declares all initial signal values, so the full state
graph is well defined without value inference.
"""

from __future__ import annotations

import random
from typing import List

from repro.stg.signals import SignalKind
from repro.stg.stg import STG


# ----------------------------------------------------------------------
# Tiny didactic specifications
# ----------------------------------------------------------------------
def handshake() -> STG:
    """A single 4-phase handshake: input ``r`` (request), output ``a`` (ack).

    The smallest useful STG: 4 transitions, 4 states, satisfies every
    implementability property.
    """
    stg = STG("handshake")
    stg.add_signal("r", SignalKind.INPUT, initial_value=False)
    stg.add_signal("a", SignalKind.OUTPUT, initial_value=False)
    stg.connect("r+", "a+")
    stg.connect("a+", "r-")
    stg.connect("r-", "a-")
    stg.connect("a-", "r+", tokens=1)
    return stg


def mutex_element(users: int = 2) -> STG:
    """The mutual exclusion element of the paper's Figure 1 (generalised).

    ``users=2`` reproduces the figure exactly: 9 places, 8 transitions,
    inputs ``r1, r2`` (requests), outputs ``g1, g2`` (grants) and one
    shared place guaranteeing mutual exclusion of the grants.  The grant
    transitions are in direct conflict on the shared place, which is the
    *arbitration point* discussed in the footnote of Definition 3.2: the
    conflict between the output signals is accepted when arbitration is
    allowed, and reported as a persistency violation otherwise.

    Parameters
    ----------
    users:
        Number of competing request/grant pairs (>= 1).
    """
    if users < 1:
        raise ValueError("users must be >= 1")
    stg = STG(f"mutex{users}" if users != 2 else "mutex_element")
    stg.add_place("p_me", tokens=1)
    for index in range(1, users + 1):
        request, grant = f"r{index}", f"g{index}"
        stg.add_signal(request, SignalKind.INPUT, initial_value=False)
        stg.add_signal(grant, SignalKind.OUTPUT, initial_value=False)
        stg.connect(f"{request}+", f"{grant}+")
        stg.connect(f"{grant}+", f"{request}-")
        stg.connect(f"{request}-", f"{grant}-")
        stg.connect(f"{grant}-", f"{request}+", tokens=1)
        # The shared mutual-exclusion token.
        stg.add_arc("p_me", f"{grant}+")
        stg.add_arc(f"{grant}-", "p_me")
    return stg


def mutex_arbitration_places(stg: STG) -> List[str]:
    """The arbitration places of a :func:`mutex_element` instance."""
    return [place for place in stg.places if place.startswith("p_me")]


# ----------------------------------------------------------------------
# Scalable, fully implementable families (Table 1 rows)
# ----------------------------------------------------------------------
def muller_pipeline(stages: int) -> STG:
    """A Muller C-element pipeline with ``stages`` controlled stages.

    Signals: ``c0`` (input, the data wave injected by the environment) and
    ``c1 ... c<stages>`` (outputs, one per pipeline stage).  Adjacent
    signals are coupled by the classical 4-phase cycle

        ``c_i+ -> c_{i+1}+ -> c_i- -> c_{i+1}- -> c_i+``

    with the token initially on the last arc, so all signals start at 0 and
    only ``c0+`` is enabled.  The net is a safe marked graph; the number of
    reachable states grows exponentially with ``stages``.
    """
    if stages < 1:
        raise ValueError("stages must be >= 1")
    stg = STG(f"muller_pipeline_{stages}")
    stg.add_signal("c0", SignalKind.INPUT, initial_value=False)
    for index in range(1, stages + 1):
        stg.add_signal(f"c{index}", SignalKind.OUTPUT, initial_value=False)
    for index in range(stages):
        left, right = f"c{index}", f"c{index + 1}"
        stg.connect(f"{left}+", f"{right}+")
        stg.connect(f"{right}+", f"{left}-")
        stg.connect(f"{left}-", f"{right}-")
        stg.connect(f"{right}-", f"{left}+", tokens=1)
    return stg


def master_read(channels: int) -> STG:
    """A master *read* interface fetching from ``channels`` concurrent slaves.

    The master receives ``go`` (input), issues all the ``req_i`` (outputs)
    concurrently, waits for every ``ack_i`` (inputs), raises ``done``
    (output) and then unwinds the handshakes in the return-to-zero phase.
    The net is a safe marked graph (fork/join through transitions) whose
    state space grows exponentially with the number of channels --
    the same structural family as the classical ``master-read`` benchmark.
    """
    if channels < 1:
        raise ValueError("channels must be >= 1")
    stg = STG(f"master_read_{channels}")
    stg.add_signal("go", SignalKind.INPUT, initial_value=False)
    stg.add_signal("done", SignalKind.OUTPUT, initial_value=False)
    for index in range(1, channels + 1):
        stg.add_signal(f"req{index}", SignalKind.OUTPUT, initial_value=False)
        stg.add_signal(f"ack{index}", SignalKind.INPUT, initial_value=False)
    for index in range(1, channels + 1):
        request, acknowledge = f"req{index}", f"ack{index}"
        stg.connect("go+", f"{request}+")
        stg.connect(f"{request}+", f"{acknowledge}+")
        stg.connect(f"{acknowledge}+", "done+")
        stg.connect("go-", f"{request}-")
        stg.connect(f"{request}-", f"{acknowledge}-")
        stg.connect(f"{acknowledge}-", "done-")
    stg.connect("done+", "go-")
    stg.connect("done-", "go+", tokens=1)
    return stg


def parallel_handshakes(count: int) -> STG:
    """``count`` independent 4-phase handshakes running concurrently.

    Each channel ``i`` has input ``r<i>`` and output ``a<i>`` cycling
    through ``r+ a+ r- a-``.  The channels share no places, so the
    reachable state count is exactly ``4 ** count`` -- the most extreme
    "high degree of parallelism" stress case for the traversal.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    stg = STG(f"parallel_handshakes_{count}")
    for index in range(1, count + 1):
        request, acknowledge = f"r{index}", f"a{index}"
        stg.add_signal(request, SignalKind.INPUT, initial_value=False)
        stg.add_signal(acknowledge, SignalKind.OUTPUT, initial_value=False)
        stg.connect(f"{request}+", f"{acknowledge}+")
        stg.connect(f"{acknowledge}+", f"{request}-")
        stg.connect(f"{request}-", f"{acknowledge}-")
        stg.connect(f"{acknowledge}-", f"{request}+", tokens=1)
    return stg


def pipeline_with_environment(stages: int) -> STG:
    """A Muller pipeline closed by an explicit environment loop.

    Same as :func:`muller_pipeline` but the last stage acknowledges back to
    the environment through an extra input ``ack``, making the
    specification a closed system (every signal has both a producer and a
    consumer of its transitions).  Used by the synthesis example.
    """
    stg = muller_pipeline(stages)
    stg.name = f"pipeline_env_{stages}"
    stg.add_signal("ack", SignalKind.INPUT, initial_value=False)
    last = f"c{stages}"
    stg.connect(f"{last}+", "ack+")
    stg.connect("ack+", f"{last}-")
    stg.connect(f"{last}-", "ack-")
    stg.connect("ack-", f"{last}+", tokens=1)
    return stg


def vme_read_cycle() -> STG:
    """The classical VME bus controller, read cycle only.

    A standard small industrial example from the asynchronous-synthesis
    literature: the controller translates the bus handshake (``dsr`` /
    ``dtack``) into the device handshake (``lds`` / ``ldtack``) and drives
    the data latch ``d``.  The specification is consistent and persistent
    but has the well-known *reducible* CSC conflict (binary code
    ``dsr ldtack lds d dtack = 11100`` occurs both before the data latch
    opens and while the device handshake unwinds), so it is
    I/O-implementable but not gate-implementable as specified.
    """
    stg = STG("vme_read")
    stg.add_signal("dsr", SignalKind.INPUT, initial_value=False)
    stg.add_signal("ldtack", SignalKind.INPUT, initial_value=False)
    stg.add_signal("lds", SignalKind.OUTPUT, initial_value=False)
    stg.add_signal("d", SignalKind.OUTPUT, initial_value=False)
    stg.add_signal("dtack", SignalKind.OUTPUT, initial_value=False)
    for source, target in [
        ("dsr+", "lds+"), ("lds+", "ldtack+"), ("ldtack+", "d+"),
        ("d+", "dtack+"), ("dtack+", "dsr-"), ("dsr-", "d-"),
        ("d-", "dtack-"), ("d-", "lds-"), ("lds-", "ldtack-"),
    ]:
        stg.connect(source, target)
    stg.connect("dtack-", "dsr+", tokens=1)
    stg.connect("ldtack-", "lds+", tokens=1)
    return stg


def vme_read_cycle_resolved() -> STG:
    """:func:`vme_read_cycle` with its CSC conflict resolved.

    An internal signal ``csc0`` is inserted (rising after ``d-``, falling
    after ``ldtack-``) with :func:`repro.stg.transform.insert_signal`,
    which distinguishes the two phases that shared the code ``11100``.
    The result satisfies CSC and is gate-implementable.
    """
    from repro.stg.transform import insert_signal

    resolved = insert_signal(vme_read_cycle(), "csc0",
                             rise_after="d-", fall_after="ldtack-")
    resolved.name = "vme_read_resolved"
    return resolved


# ----------------------------------------------------------------------
# Property-violation examples (paper Section 3 and tests)
# ----------------------------------------------------------------------
def inconsistent_example() -> STG:
    """The consistency violation of Section 3.1: ``b+ a+ b+/2`` is feasible.

    Signal ``b`` rises twice with no falling transition in between, so no
    consistent state assignment exists.
    """
    stg = STG("inconsistent")
    stg.add_signal("a", SignalKind.INPUT, initial_value=False)
    stg.add_signal("b", SignalKind.OUTPUT, initial_value=False)
    stg.connect("b+", "a+")
    stg.connect("a+", "b+/2")
    stg.connect("b+/2", "b-")
    stg.connect("b-", "a-")
    stg.connect("a-", "b+", tokens=1)
    return stg


def output_disabled_by_input() -> STG:
    """A persistency violation: an output transition is disabled by an input.

    From the initial state both ``a+`` (input) and ``b+`` (output) are
    enabled from the same choice place; firing the input kills the pending
    output transition -- a potential hazard (Definition 3.2, case 1).  The
    specification is consistent (each branch raises and lowers its signal
    exactly once per round), so the failure is isolated to persistency.
    """
    stg = STG("output_disabled_by_input")
    stg.add_signal("a", SignalKind.INPUT, initial_value=False)
    stg.add_signal("b", SignalKind.OUTPUT, initial_value=False)
    choice = stg.add_place("p_choice", tokens=1)
    # Branch A: the environment raises and lowers ``a``.
    stg.ensure_transition("a+")
    stg.add_arc(choice, "a+")
    stg.connect("a+", "a-")
    stg.ensure_transition("a-")
    stg.add_arc("a-", choice)
    # Branch B: the circuit raises and lowers ``b``.
    stg.ensure_transition("b+")
    stg.add_arc(choice, "b+")
    stg.connect("b+", "b-")
    stg.ensure_transition("b-")
    stg.add_arc("b-", choice)
    return stg


def csc_violation_example() -> STG:
    """A reducible CSC violation.

    One input ``a`` paces two alternating output pulses ``b`` and ``c``:
    the cycle is ``a+ b+ a- b- a+/2 c+ a-/2 c-``.  The two states with
    binary code ``a=1, b=0, c=0`` enable different outputs (``b+`` in the
    first half, ``c+`` in the second half), violating CSC.  The violation
    is *reducible*: inserting an internal phase signal distinguishes the
    halves without touching the input/output interface.
    """
    stg = STG("csc_violation")
    stg.add_signal("a", SignalKind.INPUT, initial_value=False)
    stg.add_signal("b", SignalKind.OUTPUT, initial_value=False)
    stg.add_signal("c", SignalKind.OUTPUT, initial_value=False)
    sequence = ["a+", "b+", "a-", "b-", "a+/2", "c+", "a-/2", "c-"]
    for current, following in zip(sequence, sequence[1:]):
        stg.connect(current, following)
    stg.connect(sequence[-1], sequence[0], tokens=1)
    return stg


def csc_resolved_example() -> STG:
    """The :func:`csc_violation_example` repaired with an internal signal.

    An internal phase signal ``x`` rises in the first half of the cycle and
    falls in the second half, so all state codes become unique and CSC is
    satisfied -- demonstrating the "reducible" classification.
    """
    stg = STG("csc_resolved")
    stg.add_signal("a", SignalKind.INPUT, initial_value=False)
    stg.add_signal("b", SignalKind.OUTPUT, initial_value=False)
    stg.add_signal("c", SignalKind.OUTPUT, initial_value=False)
    stg.add_signal("x", SignalKind.INTERNAL, initial_value=False)
    sequence = ["a+", "b+", "x+", "a-", "b-", "a+/2", "c+", "x-", "a-/2", "c-"]
    for current, following in zip(sequence, sequence[1:]):
        stg.connect(current, following)
    stg.connect(sequence[-1], sequence[0], tokens=1)
    return stg


def irreducible_csc_example() -> STG:
    """An irreducible CSC violation (mutually complementary input sequences).

    The environment chooses between two orders of raising the inputs ``a``
    and ``b``.  Order ``a then b`` requires the output pulse ``o+ ... o-``;
    order ``b then a`` does not.  After either order the binary code is
    ``a=1, b=1, o=0`` yet the required output behaviour differs, and the
    distinguishing information (the input order) cannot be recovered by
    inserting non-input signals: the two input sequences have equal
    unbalanced sets, which is exactly Definition 3.5(3).
    """
    stg = STG("irreducible_csc")
    stg.add_signal("a", SignalKind.INPUT, initial_value=False)
    stg.add_signal("b", SignalKind.INPUT, initial_value=False)
    stg.add_signal("o", SignalKind.OUTPUT, initial_value=False)
    choice = stg.add_place("p_choice", tokens=1)
    # Branch A: a+ b+ o+ a- b- o-  (output pulse expected).
    branch_a = ["a+", "b+", "o+", "a-", "b-", "o-"]
    stg.ensure_transition(branch_a[0])
    stg.add_arc(choice, branch_a[0])
    for current, following in zip(branch_a, branch_a[1:]):
        stg.connect(current, following)
    stg.ensure_transition(branch_a[-1])
    stg.add_arc(branch_a[-1], choice)
    # Branch B: b+/2 a+/2 a-/2 b-/2  (no output activity).
    branch_b = ["b+/2", "a+/2", "a-/2", "b-/2"]
    stg.ensure_transition(branch_b[0])
    stg.add_arc(choice, branch_b[0])
    for current, following in zip(branch_b, branch_b[1:]):
        stg.connect(current, following)
    stg.ensure_transition(branch_b[-1])
    stg.add_arc(branch_b[-1], choice)
    return stg


def fake_conflict_d1() -> STG:
    """The STG ``D1`` of Figure 3: transition conflicts that are fake.

    Transitions ``a+`` and ``b+/2`` are in direct conflict, yet firing one
    of them enables the other occurrence of the disabled signal, so neither
    *signal* is ever disabled.  The state graph is identical to the truly
    concurrent specification :func:`fake_conflict_d2`.
    """
    stg = STG("fake_conflict_d1")
    stg.add_signal("a", SignalKind.OUTPUT, initial_value=False)
    stg.add_signal("b", SignalKind.OUTPUT, initial_value=False)
    stg.add_signal("c", SignalKind.OUTPUT, initial_value=False)
    start = stg.add_place("p_start", tokens=1)
    for label in ("a+", "b+/2"):
        stg.ensure_transition(label)
        stg.add_arc(start, label)
    stg.connect("a+", "b+")      # firing a+ enables the other b occurrence
    stg.connect("b+/2", "a+/2")  # and vice versa
    join = stg.add_place("p_join")
    for label in ("b+", "a+/2"):
        stg.add_arc(label, join)
    stg.ensure_transition("c+")
    stg.add_arc(join, "c+")
    return stg


def fake_conflict_d2() -> STG:
    """The STG ``D2`` of Figure 3: the equivalent truly concurrent form."""
    stg = STG("fake_conflict_d2")
    stg.add_signal("a", SignalKind.OUTPUT, initial_value=False)
    stg.add_signal("b", SignalKind.OUTPUT, initial_value=False)
    stg.add_signal("c", SignalKind.OUTPUT, initial_value=False)
    for signal in ("a", "b"):
        start = stg.add_place(f"p_start_{signal}", tokens=1)
        stg.ensure_transition(f"{signal}+")
        stg.add_arc(start, f"{signal}+")
        stg.connect(f"{signal}+", "c+")
    return stg


def asymmetric_fake_conflict_example() -> STG:
    """An asymmetric fake conflict involving a non-input signal.

    Firing the input ``a+`` disables the output transition ``o+`` for good
    (the output signal itself is disabled), while firing ``o+`` leaves the
    input enabled through its second occurrence.  Such conflicts contradict
    persistency (Definition 3.2) and must be rejected.
    """
    stg = STG("asymmetric_fake_conflict")
    stg.add_signal("a", SignalKind.INPUT, initial_value=False)
    stg.add_signal("o", SignalKind.OUTPUT, initial_value=False)
    start = stg.add_place("p_start", tokens=1)
    for label in ("a+", "o+"):
        stg.ensure_transition(label)
        stg.add_arc(start, label)
    # Firing o+ re-enables the input through its second occurrence ...
    stg.connect("o+", "a+/2")
    # ... but firing a+ leaves signal o disabled forever.
    stg.connect("a+", "a-")
    stg.connect("a+/2", "a-/2")
    return stg


# ----------------------------------------------------------------------
# Random benchmark families (seeded, reproducible)
# ----------------------------------------------------------------------
# The paper validates its checks on a fixed table of hand-picked circuits;
# scaling the reproduction to corpus-size sweeps needs *families* of
# specifications with known structural invariants but varied coding
# behaviour.  Both generators below are driven by ``random.Random`` with a
# seed derived from their parameters, so the same arguments always produce
# byte-identical .g text on every platform and Python version (the
# Mersenne-Twister sequence is part of the language spec).

def _random_ring_into(stg: STG, names: List[str],
                      rng: random.Random) -> None:
    """Wire one random transition ring over ``names`` into ``stg``.

    The ring is a random interleaving of each signal's rising and falling
    transition in which every ``x+`` precedes the matching ``x-``; with all
    initial values 0 and the token on the closing arc this guarantees a
    consistent state assignment.  A ring has no choice places, so the
    instance is also output-persistent, deadlock-free, safe, and visits
    exactly ``2 * len(names)`` states.  Whether CSC/USC hold depends on the
    drawn order -- which is what makes the family useful: structural
    verdicts are pinned, coding verdicts vary per seed.
    """
    stg.add_signal(names[0], SignalKind.INPUT, initial_value=False)
    stg.add_signal(names[1], SignalKind.OUTPUT, initial_value=False)
    for name in names[2:]:
        kind = SignalKind.INPUT if rng.random() < 0.35 else SignalKind.OUTPUT
        stg.add_signal(name, kind, initial_value=False)
    remaining = {name: ["+", "-"] for name in names}
    order: List[str] = []
    pool = list(names)
    while pool:
        name = rng.choice(pool)
        order.append(name + remaining[name].pop(0))
        if not remaining[name]:
            pool.remove(name)
    for current, following in zip(order, order[1:]):
        stg.connect(current, following)
    stg.connect(order[-1], order[0], tokens=1)


def random_ring(signals: int, seed: int) -> STG:
    """A random sequential transition ring over ``signals`` signals.

    Guaranteed properties (any seed): consistent, output-persistent,
    deadlock-free, safe, exactly ``2 * signals`` reachable states, at
    least one input and one output.  CSC/USC vary with the seed, so a
    sweep over seeds exercises every branch of the classification
    (gate / I/O / SI-implementable).
    """
    if signals < 2:
        raise ValueError("signals must be >= 2 (one input, one output)")
    stg = STG(f"random_ring_n{signals}_s{seed}")
    rng = random.Random(1000003 * seed + signals)
    _random_ring_into(stg, [f"x{i}" for i in range(signals)], rng)
    return stg


def random_parallel_ring_sizes(rings: int, seed: int) -> List[int]:
    """Per-ring signal counts of :func:`random_parallel` (deterministic).

    Exposed so the corpus registry can pin the expected reachable-state
    count ``prod(2 * size)`` without building the instance.
    """
    rng = random.Random(7919 * seed + rings)
    return [rng.randint(2, 4) for _ in range(rings)]


def random_parallel(rings: int, seed: int) -> STG:
    """``rings`` independent random transition rings running concurrently.

    Each ring is drawn by the :func:`random_ring` construction with its own
    sub-seed and a size from :func:`random_parallel_ring_sizes`; the rings
    share no places, so the reachable-state count is exactly the product of
    the ring lengths -- a randomised version of the
    :func:`parallel_handshakes` concurrency stress family.
    """
    if rings < 1:
        raise ValueError("rings must be >= 1")
    stg = STG(f"random_parallel_r{rings}_s{seed}")
    for index, size in enumerate(random_parallel_ring_sizes(rings, seed)):
        rng = random.Random((seed * 31 + index) * 1000003 + size)
        _random_ring_into(stg, [f"r{index}x{i}" for i in range(size)], rng)
    return stg


def random_parallel_state_count(rings: int, seed: int) -> int:
    """Exact reachable-state count of the matching :func:`random_parallel`."""
    count = 1
    for size in random_parallel_ring_sizes(rings, seed):
        count *= 2 * size
    return count


def random_ring_family(scale: int) -> STG:
    """Scalable-family adapter: one ``scale`` value = one (size, seed) pair.

    The signal count cycles through 3..8 while the seed increments, so a
    scale sweep ``1..N`` yields ``N`` structurally distinct instances --
    this is how corpus-scale sweeps get hundreds of entries from one
    family name.
    """
    return random_ring(3 + scale % 6, scale)


def random_parallel_family(scale: int) -> STG:
    """Scalable-family adapter for :func:`random_parallel` (2-4 rings)."""
    return random_parallel(2 + scale % 3, scale)


# ----------------------------------------------------------------------
# Registry used by the CLI and the benchmark harness
# ----------------------------------------------------------------------
SCALABLE_FAMILIES = {
    "muller_pipeline": muller_pipeline,
    "master_read": master_read,
    "parallel_handshakes": parallel_handshakes,
    "mutex": mutex_element,
    "random_ring": random_ring_family,
    "random_parallel": random_parallel_family,
}

FIXED_EXAMPLES = {
    "handshake": handshake,
    "mutex_element": mutex_element,
    "vme_read": vme_read_cycle,
    "vme_read_resolved": vme_read_cycle_resolved,
    "inconsistent": inconsistent_example,
    "output_disabled_by_input": output_disabled_by_input,
    "csc_violation": csc_violation_example,
    "csc_resolved": csc_resolved_example,
    "irreducible_csc": irreducible_csc_example,
    "fake_conflict_d1": fake_conflict_d1,
    "fake_conflict_d2": fake_conflict_d2,
    "asymmetric_fake_conflict": asymmetric_fake_conflict_example,
}


def build_example(name: str, scale: int | None = None) -> STG:
    """Instantiate a named example.

    ``name`` is either a fixed example or a scalable family (then ``scale``
    is required).
    """
    if name in FIXED_EXAMPLES and scale is None:
        return FIXED_EXAMPLES[name]()
    if name in SCALABLE_FAMILIES:
        if scale is None:
            raise ValueError(f"family {name!r} needs a scale parameter")
        return SCALABLE_FAMILIES[name](scale)
    if name in FIXED_EXAMPLES:
        return FIXED_EXAMPLES[name]()
    raise ValueError(f"unknown example {name!r}")
