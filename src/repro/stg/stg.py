"""The STG class: a labelled Petri net with an input/output interface.

Definition 2.1 of the paper: an STG is ``(N, S_A, lambda)`` where ``N`` is
a Petri net, ``S_A = S_I U S_O U S_H`` the signal set (inputs, outputs,
internal signals) and ``lambda`` labels every transition with a signal
transition.  This class additionally records the initial signal values
``s0`` needed to build the (full) State Graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.signals import STGError, SignalKind, SignalTransition


class STG:
    """A Signal Transition Graph.

    The underlying Petri net is owned by the STG and accessed through
    :attr:`net`.  Transition names are derived from their labels (``a+``,
    ``a-/2``); places can be declared explicitly or implicitly (an arc
    between two transitions creates an anonymous place, mirroring the
    short-hand form used in the paper's figures and the ``.g`` format).

    Examples
    --------
    >>> stg = STG("handshake")
    >>> stg.add_signal("r", SignalKind.INPUT)
    >>> stg.add_signal("a", SignalKind.OUTPUT)
    >>> for arc in ["r+ a+", "a+ r-", "r- a-", "a- r+"]:
    ...     source, target = arc.split()
    ...     _ = stg.connect(source, target)
    >>> stg.set_initial_marking_between("a-", "r+")
    >>> sorted(stg.enabled_labels(stg.initial_marking()))
    ['r+']
    """

    def __init__(self, name: str = "stg") -> None:
        self.name = name
        self.net = PetriNet(name)
        self._signals: Dict[str, SignalKind] = {}
        self._labels: Dict[str, SignalTransition] = {}
        self._initial_values: Dict[str, bool] = {}
        self._implicit_place_count = 0

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def add_signal(self, name: str, kind: SignalKind,
                   initial_value: Optional[bool] = None) -> None:
        """Declare a signal of the given kind (optionally with its value at
        the initial state)."""
        if name in self._signals:
            raise STGError(f"signal {name!r} already declared")
        self._signals[name] = kind
        if initial_value is not None:
            self._initial_values[name] = bool(initial_value)

    def add_signals(self, names: Iterable[str], kind: SignalKind) -> None:
        """Declare several signals of the same kind."""
        for name in names:
            self.add_signal(name, kind)

    @property
    def signals(self) -> List[str]:
        """All declared signals, in declaration order."""
        return list(self._signals)

    @property
    def inputs(self) -> List[str]:
        return [s for s, kind in self._signals.items() if kind is SignalKind.INPUT]

    @property
    def outputs(self) -> List[str]:
        return [s for s, kind in self._signals.items() if kind is SignalKind.OUTPUT]

    @property
    def internals(self) -> List[str]:
        return [s for s, kind in self._signals.items()
                if kind is SignalKind.INTERNAL]

    @property
    def noninput_signals(self) -> List[str]:
        """Outputs and internal signals (the circuit's responsibility)."""
        return [s for s, kind in self._signals.items() if kind.is_noninput]

    def kind_of(self, signal: str) -> SignalKind:
        try:
            return self._signals[signal]
        except KeyError as exc:
            raise STGError(f"unknown signal {signal!r}") from exc

    def is_input(self, signal: str) -> bool:
        return self.kind_of(signal) is SignalKind.INPUT

    def has_signal(self, name: str) -> bool:
        return name in self._signals

    # ------------------------------------------------------------------
    # Initial signal values
    # ------------------------------------------------------------------
    def set_initial_value(self, signal: str, value: bool) -> None:
        """Set the value of a signal in the initial state ``s0``."""
        self.kind_of(signal)
        self._initial_values[signal] = bool(value)

    def set_initial_values(self, values: Mapping[str, bool]) -> None:
        for signal, value in values.items():
            self.set_initial_value(signal, value)

    def initial_value(self, signal: str) -> Optional[bool]:
        """Initial value of a signal, or ``None`` when not (yet) known."""
        self.kind_of(signal)
        return self._initial_values.get(signal)

    @property
    def initial_values(self) -> Dict[str, bool]:
        """Copy of the known initial signal values."""
        return dict(self._initial_values)

    def has_complete_initial_values(self) -> bool:
        """True when every signal has a declared initial value."""
        return all(signal in self._initial_values for signal in self._signals)

    def initial_state_vector(self) -> Dict[str, bool]:
        """Initial values for all signals; raises if any is unknown."""
        missing = [s for s in self._signals if s not in self._initial_values]
        if missing:
            raise STGError(
                f"initial values unknown for signals {missing}; declare them "
                f"or call repro.sg.builder.infer_initial_values")
        return dict(self._initial_values)

    # ------------------------------------------------------------------
    # Transitions and places
    # ------------------------------------------------------------------
    def add_transition(self, label: str | SignalTransition) -> str:
        """Add a transition labelled with a signal transition.

        Returns the Petri-net transition name (the string form of the
        label).  The signal must have been declared.
        """
        parsed = (label if isinstance(label, SignalTransition)
                  else SignalTransition.parse(label))
        if parsed.signal not in self._signals:
            raise STGError(
                f"transition {parsed} uses undeclared signal {parsed.signal!r}")
        name = str(parsed)
        if self.net.has_transition(name):
            raise STGError(f"duplicate transition {name!r}")
        self.net.add_transition(name, label=parsed)
        self._labels[name] = parsed
        return name

    def ensure_transition(self, label: str | SignalTransition) -> str:
        """Add the transition if missing; return its name."""
        parsed = (label if isinstance(label, SignalTransition)
                  else SignalTransition.parse(label))
        name = str(parsed)
        if not self.net.has_transition(name):
            return self.add_transition(parsed)
        return name

    def add_place(self, name: str, tokens: int = 0) -> str:
        """Add an explicit place."""
        self.net.add_place(name, tokens)
        return name

    def add_arc(self, source: str, target: str) -> None:
        """Add an arc between an existing place and an existing transition."""
        self.net.add_arc(source, target)

    def connect(self, source_label: str, target_label: str,
                tokens: int = 0) -> str:
        """Connect two transitions through an implicit place.

        Creates (if necessary) the transitions for both labels, an
        anonymous place between them carrying ``tokens`` tokens, and the two
        arcs.  Returns the name of the created place.  This mirrors the
        short-hand STG notation where single-fanin/fanout places are not
        drawn (Section 2).
        """
        source = self.ensure_transition(source_label)
        target = self.ensure_transition(target_label)
        place = self.implicit_place_name(source, target)
        if self.net.has_place(place):
            # Parallel arcs between the same pair get numbered suffixes.
            suffix = 2
            while self.net.has_place(f"{place}#{suffix}"):
                suffix += 1
            place = f"{place}#{suffix}"
        self.net.add_place(place, tokens)
        self.net.add_arc(source, place)
        self.net.add_arc(place, target)
        self._implicit_place_count += 1
        return place

    @staticmethod
    def implicit_place_name(source: str, target: str) -> str:
        """Canonical name of the implicit place between two transitions."""
        return f"<{source},{target}>"

    def set_initial_marking_between(self, source_label: str,
                                    target_label: str, tokens: int = 1) -> None:
        """Put tokens on the implicit place between two connected transitions."""
        place = self.implicit_place_name(str(SignalTransition.parse(source_label)),
                                         str(SignalTransition.parse(target_label)))
        if not self.net.has_place(place):
            raise STGError(f"no implicit place {place!r}; call connect() first")
        self.net.set_initial_tokens(place, tokens)

    # ------------------------------------------------------------------
    # Labelling function
    # ------------------------------------------------------------------
    def label_of(self, transition: str) -> SignalTransition:
        """The signal-transition label of a Petri-net transition."""
        try:
            return self._labels[transition]
        except KeyError as exc:
            raise STGError(f"transition {transition!r} has no label") from exc

    def signal_of(self, transition: str) -> str:
        """The signal a transition belongs to."""
        return self.label_of(transition).signal

    def transitions_of_signal(self, signal: str) -> List[str]:
        """All transitions of a signal (both polarities, all indices)."""
        self.kind_of(signal)
        return [t for t, label in self._labels.items() if label.signal == signal]

    def transitions_of(self, signal: str, polarity: str) -> List[str]:
        """All transitions ``signal``/``polarity`` (any occurrence index)."""
        self.kind_of(signal)
        return [t for t, label in self._labels.items()
                if label.signal == signal and label.polarity == polarity]

    @property
    def transitions(self) -> List[str]:
        """All labelled transition names."""
        return list(self._labels)

    @property
    def places(self) -> List[str]:
        return self.net.places

    # ------------------------------------------------------------------
    # Behaviour helpers
    # ------------------------------------------------------------------
    def initial_marking(self) -> Marking:
        return self.net.initial_marking

    def enabled_labels(self, marking: Marking) -> List[str]:
        """Names of the transitions enabled at ``marking``."""
        return self.net.enabled_transitions(marking)

    def enabled_signals(self, marking: Marking) -> Set[str]:
        """Signals with at least one enabled transition at ``marking``."""
        return {self.signal_of(t) for t in self.net.enabled_transitions(marking)}

    def fire(self, transition: str, marking: Marking) -> Marking:
        return self.net.fire(transition, marking)

    # ------------------------------------------------------------------
    # Copies / renaming
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "STG":
        """Deep copy of the STG (structure, kinds, initial values)."""
        clone = STG(self.name if name is None else name)
        clone.net = self.net.copy(clone.name)
        clone._signals = dict(self._signals)
        clone._labels = dict(self._labels)
        clone._initial_values = dict(self._initial_values)
        clone._implicit_place_count = self._implicit_place_count
        return clone

    def statistics(self) -> Dict[str, int]:
        """Size statistics used by reports and Table 1."""
        return {
            "places": self.net.num_places,
            "transitions": self.net.num_transitions,
            "signals": len(self._signals),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "internals": len(self.internals),
        }

    def __repr__(self) -> str:
        stats = self.statistics()
        return (f"STG({self.name!r}, signals={stats['signals']}, "
                f"places={stats['places']}, transitions={stats['transitions']})")
