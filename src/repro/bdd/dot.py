"""Graphviz DOT export of BDDs (for documentation and debugging)."""

from __future__ import annotations

from typing import List

from repro.bdd.function import Function
from repro.bdd.manager import FALSE_ID, TRUE_ID


def to_dot(f: Function, name: str = "bdd") -> str:
    """Return a DOT digraph for the BDD rooted at ``f``.

    Solid edges are the high (then) branches, dashed edges the low (else)
    branches; nodes on the same level are ranked together.
    """
    manager = f.manager
    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;"]
    nodes = list(manager.descendants(f.node))
    internal = [n for n in nodes if not manager.is_terminal(n)]
    # Terminal shapes.
    if FALSE_ID in nodes:
        lines.append('  n0 [label="0", shape=box];')
    if TRUE_ID in nodes:
        lines.append('  n1 [label="1", shape=box];')
    # Group nodes per level for nicer layouts.
    by_level = {}
    for node in internal:
        by_level.setdefault(manager.node_level(node), []).append(node)
    for level in sorted(by_level):
        variable = manager.var_at_level(level)
        members = by_level[level]
        for node in members:
            lines.append(f'  n{node} [label="{variable}", shape=circle];')
        ranked = "; ".join(f"n{node}" for node in members)
        lines.append(f"  {{ rank=same; {ranked}; }}")
    for node in internal:
        lines.append(f"  n{node} -> n{manager.node_low(node)} [style=dashed];")
        lines.append(f"  n{node} -> n{manager.node_high(node)};")
    lines.append("}")
    return "\n".join(lines)


def write_dot(f: Function, path: str, name: str = "bdd") -> None:
    """Write the DOT representation of ``f`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(f, name))
        handle.write("\n")
