"""Variable-ordering heuristics and reordering.

The paper remarks (Section 6) that "BDDs may have an exponential size if
appropriate heuristics for variable ordering are not used".  Two mechanisms
are provided:

* **static orders** computed before any BDD is built -- from a variable
  "affinity" hypergraph (sets of variables that appear together, e.g. the
  places around a Petri-net transition) using the FORCE heuristic
  [Aloul, Markov, Sakallah 2003] which is simple, deterministic and works
  well on the netlist-like structures of this project;
* **reordering by rebuild** -- given already-built functions and a new
  order, rebuild the functions into a fresh manager and return the copies.

True in-place sifting is deliberately out of scope: the manager stores
reduced nodes in insertion order and the project's workloads are handled
well by the structural static orders (see ``benchmarks/test_variable_ordering.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bdd.function import Function
from repro.bdd.manager import BDDManager


def force_ordering(variables: Sequence[str],
                   groups: Iterable[Sequence[str]],
                   iterations: int = 50) -> List[str]:
    """Compute a variable order with the FORCE hypergraph heuristic.

    Parameters
    ----------
    variables:
        All variable names to order (the result is a permutation of them).
    groups:
        Hyperedges: collections of variables that interact and should be
        placed close together (for a Petri net: ``pre(t) U post(t)`` for
        each transition, plus place/signal co-occurrence groups).
    iterations:
        Maximum number of center-of-gravity sweeps; the loop stops early at
        a fixed point.

    Returns
    -------
    list of str
        The computed order, best first (root of the BDD).
    """
    variables = list(variables)
    known = set(variables)
    hyperedges: List[List[str]] = []
    for group in groups:
        members = [name for name in group if name in known]
        if len(members) >= 2:
            hyperedges.append(members)
    if not hyperedges:
        return variables
    position: Dict[str, float] = {name: float(i)
                                  for i, name in enumerate(variables)}
    for _ in range(iterations):
        # Center of gravity of every hyperedge.
        centers = [sum(position[v] for v in edge) / len(edge)
                   for edge in hyperedges]
        # Tentative new position of every variable: average of the centers
        # of the hyperedges it belongs to.
        accumulator: Dict[str, Tuple[float, int]] = {}
        for edge, center in zip(hyperedges, centers):
            for name in edge:
                total, count = accumulator.get(name, (0.0, 0))
                accumulator[name] = (total + center, count + 1)
        new_position = dict(position)
        for name, (total, count) in accumulator.items():
            new_position[name] = total / count
        ordered = sorted(variables, key=lambda name: (new_position[name], name))
        next_position = {name: float(i) for i, name in enumerate(ordered)}
        if next_position == position:
            break
        position = next_position
    return sorted(variables, key=lambda name: (position[name], name))


def interleaved_ordering(chains: Sequence[Sequence[str]]) -> List[str]:
    """Round-robin interleaving of several variable chains.

    Useful when the model is a set of loosely-coupled pipelines: variables
    at the same depth in different chains are placed next to each other.
    Variables appearing in several chains keep their first position.
    """
    result: List[str] = []
    seen = set()
    longest = max((len(chain) for chain in chains), default=0)
    for depth in range(longest):
        for chain in chains:
            if depth < len(chain) and chain[depth] not in seen:
                seen.add(chain[depth])
                result.append(chain[depth])
    return result


def copy_function(target: BDDManager, f: Function) -> Function:
    """Copy ``f`` into ``target`` (which may use a different order).

    Every variable in the support of ``f`` must already be declared in the
    target manager.  The copy is performed bottom-up with memoisation, so
    the cost is one ``ite`` per source node.
    """
    source = f.manager
    cache: Dict[int, Function] = {}

    def transfer(node: int) -> Function:
        if source.is_terminal(node):
            return target.true if node == 1 else target.false
        cached = cache.get(node)
        if cached is not None:
            return cached
        name = source.var_at_level(source.node_level(node))
        low = transfer(source.node_low(node))
        high = transfer(source.node_high(node))
        result = target.var(name).ite(high, low)
        cache[node] = result
        return result

    return transfer(f.node)


def reorder_by_rebuild(functions: Sequence[Function],
                       new_order: Sequence[str]) -> Tuple[BDDManager, List[Function]]:
    """Rebuild ``functions`` in a new manager that uses ``new_order``.

    Returns the new manager and the transferred functions (in the same
    order as the input).  The original manager is left untouched.
    """
    if not functions:
        return BDDManager(new_order), []
    source = functions[0].manager
    for f in functions:
        if f.manager is not source:
            raise ValueError("all functions must share one manager")
    missing = [name for name in source.variables if name not in set(new_order)]
    order = list(new_order) + missing
    target = BDDManager(order)
    return target, [copy_function(target, f) for f in functions]


def total_size(functions: Sequence[Function]) -> int:
    """Number of distinct nodes used by a set of functions (shared DAG)."""
    if not functions:
        return 0
    manager = functions[0].manager
    seen = set()
    for f in functions:
        for node in manager.descendants(f.node):
            seen.add(node)
    return len(seen)
