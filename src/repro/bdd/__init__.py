"""Reduced Ordered Binary Decision Diagram (ROBDD) engine.

This package is a self-contained, pure-Python BDD library used as the
symbolic substrate of the reproduction.  It provides:

* :class:`~repro.bdd.manager.BDDManager` -- node store, unique table,
  ``ite`` and garbage collection,
* :class:`~repro.bdd.function.Function` -- a handle to a BDD root with
  Python operator overloading (``&``, ``|``, ``~``, ``^``, ...),
* quantification, cofactoring, composition and renaming
  (:mod:`repro.bdd.operators`),
* model counting / enumeration and support computation
  (:mod:`repro.bdd.analysis`),
* static variable-ordering heuristics and reordering by rebuild
  (:mod:`repro.bdd.ordering`),
* irredundant sum-of-products cover extraction (:mod:`repro.bdd.cover`),
* a small boolean-expression front end (:mod:`repro.bdd.expr`) and
  Graphviz export (:mod:`repro.bdd.dot`).

The library uses plain (non-complemented) edges, so every boolean
function has exactly one node identifier inside a given manager and
equality of functions is equality of identifiers.
"""

from repro.bdd.manager import BDDManager, BDDError, BDDOrderError
from repro.bdd.function import Function
from repro.bdd.expr import parse_expression
from repro.bdd.ordering import force_ordering, reorder_by_rebuild

__all__ = [
    "BDDManager",
    "BDDError",
    "BDDOrderError",
    "Function",
    "parse_expression",
    "force_ordering",
    "reorder_by_rebuild",
]
