"""Serialisation of BDDs to a simple, stable text format.

The format stores the variable order and one line per internal node in a
topological order (children before parents), so loading rebuilds exactly
the same canonical structure::

    bdd-serialized 1
    vars a b c
    roots 2
    node 2 a 0 1
    node 3 b 0 2
    root 3
    root 2

Functions from one manager can be saved together (sharing is preserved);
loading returns the new manager and the root functions in order.  Useful
for caching reachable sets between runs and for debugging.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TextIO, Tuple

from repro.bdd.function import Function
from repro.bdd.manager import BDDError, BDDManager, FALSE_ID, TRUE_ID

FORMAT_HEADER = "bdd-serialized 1"


def dump(functions: Sequence[Function], stream: TextIO) -> None:
    """Serialise functions (sharing one manager) to a text stream."""
    if not functions:
        raise BDDError("nothing to serialise")
    manager = functions[0].manager
    for function in functions:
        if function.manager is not manager:
            raise BDDError("all functions must belong to the same manager")
    stream.write(FORMAT_HEADER + "\n")
    stream.write("vars " + " ".join(manager.variables) + "\n")
    stream.write(f"roots {len(functions)}\n")
    # Collect nodes reachable from every root, then emit children first.
    emitted = {FALSE_ID, TRUE_ID}
    order: List[int] = []

    def visit(node: int) -> None:
        if node in emitted:
            return
        emitted.add(node)
        visit(manager.node_low(node))
        visit(manager.node_high(node))
        order.append(node)

    for function in functions:
        visit(function.node)
    for node in order:
        variable = manager.var_at_level(manager.node_level(node))
        stream.write(f"node {node} {variable} "
                     f"{manager.node_low(node)} {manager.node_high(node)}\n")
    for function in functions:
        stream.write(f"root {function.node}\n")


def dumps(functions: Sequence[Function]) -> str:
    """Serialise to a string."""
    import io

    buffer = io.StringIO()
    dump(functions, buffer)
    return buffer.getvalue()


def load(stream: TextIO,
         manager: BDDManager | None = None) -> Tuple[BDDManager, List[Function]]:
    """Load functions from a stream produced by :func:`dump`.

    A fresh manager with the stored variable order is created unless an
    existing one (already containing all stored variables) is supplied.
    """
    header_line = stream.readline()
    if not header_line:
        raise BDDError("empty stream: not a bdd-serialized file")
    header = header_line.strip()
    if header != FORMAT_HEADER:
        tag, _, version = header.partition(" ")
        if tag == "bdd-serialized":
            raise BDDError(
                f"unsupported bdd-serialized format version {version!r}; "
                f"this build reads {FORMAT_HEADER!r}")
        raise BDDError(
            f"unrecognised header {header!r}: not a bdd-serialized "
            f"stream (expected {FORMAT_HEADER!r})")
    vars_line = stream.readline().split()
    if not vars_line or vars_line[0] != "vars":
        raise BDDError("missing 'vars' line")
    variables = vars_line[1:]
    roots_line = stream.readline().split()
    if len(roots_line) != 2 or roots_line[0] != "roots":
        raise BDDError("missing 'roots' line")
    if manager is None:
        manager = BDDManager(variables)
    else:
        for name in variables:
            if name not in manager.variables:
                manager.add_var(name)
    translation: Dict[int, int] = {FALSE_ID: FALSE_ID, TRUE_ID: TRUE_ID}
    roots: List[Function] = []
    for line in stream:
        parts = line.split()
        if not parts:
            continue
        if parts[0] == "node":
            if len(parts) != 5:
                raise BDDError(f"malformed node line: {line!r}")
            try:
                old_id, variable, low, high = (int(parts[1]), parts[2],
                                               int(parts[3]), int(parts[4]))
            except ValueError as exc:
                raise BDDError(
                    f"malformed node line (non-integer id): {line!r}"
                ) from exc
            try:
                new_low = translation[low]
                new_high = translation[high]
            except KeyError as exc:
                raise BDDError(
                    f"node {old_id} references unknown child") from exc
            # Rebuild through ite so the result is correct even when the
            # target manager uses a different variable order.
            variable_node = manager.var(variable).node
            translation[old_id] = manager.ite(variable_node, new_high, new_low)
        elif parts[0] == "root":
            try:
                old_id = int(parts[1])
            except (IndexError, ValueError) as exc:
                raise BDDError(f"malformed root line: {line!r}") from exc
            if old_id not in translation:
                raise BDDError(f"root {old_id} was never defined")
            roots.append(manager._wrap(translation[old_id]))
        else:
            raise BDDError(f"unrecognised line: {line!r}")
    return manager, roots


def loads(text: str,
          manager: BDDManager | None = None) -> Tuple[BDDManager, List[Function]]:
    """Load functions from a string."""
    import io

    return load(io.StringIO(text), manager)
