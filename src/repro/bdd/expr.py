"""A small boolean-expression front end.

Grammar (usual precedence, ``!`` binds tightest, then ``&``, ``^``, ``|``,
then ``->`` and ``<->`` which are right-associative)::

    expr    := iff
    iff     := implies ( "<->" implies )*
    implies := or_e ( "->" or_e )*          (right associative)
    or_e    := xor_e ( ("|" | "+") xor_e )*
    xor_e   := and_e ( "^" and_e )*
    and_e   := not_e ( ("&" | "*") not_e )*
    not_e   := ("!" | "~") not_e | atom
    atom    := "0" | "1" | identifier [ "'" ] | "(" expr ")"

A postfix apostrophe negates an identifier (``a'`` is ``!a``), matching the
notation used throughout the paper.  Identifiers may contain letters,
digits, ``_``, ``.``, ``+`` and ``-`` are *not* allowed inside identifiers
here (use :mod:`repro.stg` names without polarity suffixes).
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.bdd.function import Function
from repro.bdd.manager import BDDManager, BDDError


class ExpressionError(BDDError):
    """Raised for syntax errors in boolean expressions."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<iff><->)|(?P<implies>->)|(?P<op>[()&|^!~*+'])|"
    r"(?P<const>[01])(?![\w.])|(?P<name>[A-Za-z_][\w.\[\]]*))"
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            remainder = text[index:].strip()
            if not remainder:
                break
            raise ExpressionError(f"unexpected input at: {remainder[:20]!r}")
        index = match.end()
        for key in ("iff", "implies", "op", "const", "name"):
            value = match.group(key)
            if value is not None:
                tokens.append(value)
                break
    return tokens


class _Parser:
    def __init__(self, manager: BDDManager, tokens: List[str],
                 declare: bool) -> None:
        self.manager = manager
        self.tokens = tokens
        self.position = 0
        self.declare = declare

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ExpressionError("unexpected end of expression")
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        actual = self.take()
        if actual != token:
            raise ExpressionError(f"expected {token!r}, found {actual!r}")

    # Grammar rules -----------------------------------------------------
    def parse(self) -> Function:
        result = self.iff()
        if self.peek() is not None:
            raise ExpressionError(f"trailing input: {self.tokens[self.position:]}")
        return result

    def iff(self) -> Function:
        left = self.implies()
        while self.peek() == "<->":
            self.take()
            right = self.implies()
            left = left.iff(right)
        return left

    def implies(self) -> Function:
        left = self.or_expression()
        if self.peek() == "->":
            self.take()
            right = self.implies()
            return left >> right
        return left

    def or_expression(self) -> Function:
        left = self.xor_expression()
        while self.peek() in ("|", "+"):
            self.take()
            left = left | self.xor_expression()
        return left

    def xor_expression(self) -> Function:
        left = self.and_expression()
        while self.peek() == "^":
            self.take()
            left = left ^ self.and_expression()
        return left

    def and_expression(self) -> Function:
        left = self.not_expression()
        while True:
            token = self.peek()
            if token in ("&", "*"):
                self.take()
                left = left & self.not_expression()
            elif token is not None and (token == "(" or token == "!"
                                        or token == "~" or _is_atom(token)):
                # Juxtaposition means conjunction: ``a b'`` == ``a & !b``.
                left = left & self.not_expression()
            else:
                return left

    def not_expression(self) -> Function:
        token = self.peek()
        if token in ("!", "~"):
            self.take()
            return ~self.not_expression()
        return self.atom()

    def atom(self) -> Function:
        token = self.take()
        if token == "(":
            inner = self.iff()
            self.expect(")")
            return self._maybe_postfix_negate(inner)
        if token == "0":
            return self.manager.false
        if token == "1":
            return self.manager.true
        if _is_atom(token):
            if self.declare:
                function = self.manager.ensure_var(token)
            else:
                function = self.manager.var(token)
            return self._maybe_postfix_negate(function)
        raise ExpressionError(f"unexpected token {token!r}")

    def _maybe_postfix_negate(self, function: Function) -> Function:
        if self.peek() == "'":
            self.take()
            return ~function
        return function


def _is_atom(token: str) -> bool:
    return bool(re.match(r"[A-Za-z_]", token)) or token in ("0", "1")


def parse_expression(manager: BDDManager, text: str,
                     declare: bool = False) -> Function:
    """Parse ``text`` into a BDD over ``manager``.

    With ``declare=True`` unknown identifiers are declared on the fly (at
    the end of the order); otherwise they raise
    :class:`~repro.bdd.manager.BDDOrderError`.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ExpressionError("empty expression")
    return _Parser(manager, tokens, declare).parse()
