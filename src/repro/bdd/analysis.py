"""Analysis helpers: support, model counting, model enumeration, evaluation."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.bdd.function import Function
from repro.bdd.manager import FALSE_ID, TRUE_ID


def support(f: Function) -> List[str]:
    """Variables the function depends on, in the manager's order."""
    manager = f.manager
    levels = set()
    for node in manager.descendants(f.node):
        if not manager.is_terminal(node):
            levels.add(manager.node_level(node))
    return [manager.var_at_level(level) for level in sorted(levels)]


def sat_count(f: Function, care_vars: Optional[Sequence[str]] = None) -> int:
    """Number of satisfying assignments of ``f`` over ``care_vars``.

    ``care_vars`` defaults to every declared variable; it must contain the
    support of ``f``.
    """
    manager = f.manager
    if care_vars is None:
        care_vars = manager.variables
    care_levels = sorted(manager.level_of(name) for name in care_vars)
    support_levels = {manager.level_of(name) for name in support(f)}
    if not support_levels.issubset(care_levels):
        missing = support_levels.difference(care_levels)
        names = [manager.var_at_level(level) for level in sorted(missing)]
        raise ValueError(f"care set does not cover the support: missing {names}")
    position = {level: i for i, level in enumerate(care_levels)}
    n = len(care_levels)
    cache: Dict[int, int] = {}

    def models_below(node: int, from_position: int) -> int:
        """Count models over care variables with index >= ``from_position``."""
        if node == FALSE_ID:
            return 0
        if node == TRUE_ID:
            return 1 << (n - from_position)
        level = manager.node_level(node)
        pos = position[level]
        base = cache.get(node)
        if base is None:
            base = (models_below(manager.node_low(node), pos + 1)
                    + models_below(manager.node_high(node), pos + 1))
            cache[node] = base
        # Care variables skipped between ``from_position`` and this node are
        # free: each doubles the count.
        return base << (pos - from_position)

    return models_below(f.node, 0)


def evaluate(f: Function, assignment: Dict[str, bool]) -> bool:
    """Evaluate ``f`` under an assignment covering its support."""
    manager = f.manager
    node = f.node
    while not manager.is_terminal(node):
        name = manager.var_at_level(manager.node_level(node))
        try:
            value = assignment[name]
        except KeyError as exc:
            raise ValueError(
                f"assignment does not define variable {name!r}") from exc
        node = manager.node_high(node) if value else manager.node_low(node)
    return node == TRUE_ID


def iter_models(f: Function, care_vars: Optional[Sequence[str]] = None
                ) -> Iterator[Dict[str, bool]]:
    """Enumerate satisfying assignments as dictionaries over ``care_vars``.

    Models are produced in lexicographic order of the care variables (in
    manager order, False < True).  The number of yielded models equals
    :func:`sat_count` with the same care set.
    """
    manager = f.manager
    if care_vars is None:
        care_vars = manager.variables
    care_levels = sorted(manager.level_of(name) for name in care_vars)
    names = [manager.var_at_level(level) for level in care_levels]
    level_set = set(care_levels)
    for name in support(f):
        if manager.level_of(name) not in level_set:
            raise ValueError(
                f"care set does not cover the support: missing {name!r}")

    def recurse(node: int, index: int, partial: Dict[str, bool]
                ) -> Iterator[Dict[str, bool]]:
        if node == FALSE_ID:
            return
        if index == len(care_levels):
            yield dict(partial)
            return
        level = care_levels[index]
        name = names[index]
        if manager.is_terminal(node) or manager.node_level(node) > level:
            # The function does not test this care variable here.
            for value in (False, True):
                partial[name] = value
                yield from recurse(node, index + 1, partial)
            del partial[name]
            return
        # The node level equals the care level (it cannot be smaller because
        # the care set covers the support).
        partial[name] = False
        yield from recurse(manager.node_low(node), index + 1, partial)
        partial[name] = True
        yield from recurse(manager.node_high(node), index + 1, partial)
        del partial[name]

    yield from recurse(f.node, 0, {})


def pick_one(f: Function, care_vars: Optional[Sequence[str]] = None
             ) -> Optional[Dict[str, bool]]:
    """Return one satisfying assignment over ``care_vars`` or ``None``."""
    if f.is_false():
        return None
    for model in iter_models(f, care_vars):
        return model
    return None


def essential_literals(f: Function) -> Dict[str, bool]:
    """Literals implied by ``f`` (variables fixed in every model of ``f``).

    Returns ``{name: value}`` for every variable ``name`` such that every
    satisfying assignment of ``f`` sets it to ``value``.  Constants fix
    nothing.
    """
    f_manager = f.manager
    result: Dict[str, bool] = {}
    if f.is_false() or f.is_true():
        return result
    for name in support(f):
        positive = f_manager.var(name)
        if (f - positive).is_false():
            result[name] = True
        elif (f & positive).is_false():
            result[name] = False
    return result
