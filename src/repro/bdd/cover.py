"""Sum-of-products cover extraction from BDDs.

Implements the Minato-Morreale irredundant sum-of-products (ISOP)
procedure on the interval ``[f, f]`` (exact function, no don't cares) and a
variant with a don't-care upper bound, which is what the synthesis layer
uses to print readable next-state equations for asynchronous gates.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bdd.function import Function
from repro.bdd.manager import BDDManager, FALSE_ID, TRUE_ID

Cube = Dict[str, bool]


def isop(f: Function, upper: Function | None = None) -> List[Cube]:
    """Irredundant sum-of-products cover of the interval ``[f, upper]``.

    Every returned cube implies ``upper`` and the disjunction of the cubes
    covers ``f``.  With ``upper`` omitted the cover is an exact cover of
    ``f``.  Cubes are dictionaries ``{variable: polarity}``.
    """
    manager = f.manager
    if upper is None:
        upper = f
    if upper.manager is not manager:
        raise ValueError("bounds must belong to the same manager")
    if not (f <= upper):
        raise ValueError("lower bound must imply upper bound")
    cache: Dict[Tuple[int, int], Tuple[int, List[Cube]]] = {}
    _, cubes = _isop(manager, f.node, upper.node, cache)
    return cubes


def cover_function(f: Function, cubes: List[Cube]) -> Function:
    """Rebuild a :class:`Function` from a cube list (for verification)."""
    manager = f.manager
    result = manager.false
    for cube in cubes:
        result = result | manager.cube(cube)
    return result


def _isop(manager: BDDManager, lower: int, upper: int,
          cache: Dict[Tuple[int, int], Tuple[int, List[Cube]]]
          ) -> Tuple[int, List[Cube]]:
    """Return ``(cover_node, cube_list)`` for the interval ``[lower, upper]``."""
    if lower == FALSE_ID:
        return FALSE_ID, []
    if upper == TRUE_ID:
        return TRUE_ID, [{}]
    key = (lower, upper)
    cached = cache.get(key)
    if cached is not None:
        return cached
    level = min(manager.node_level(lower), manager.node_level(upper))
    name = manager.var_at_level(level)
    l0, l1 = manager._cofactors_at(lower, level)
    u0, u1 = manager._cofactors_at(upper, level)

    # Cubes that must contain the negative literal.
    lower_0 = manager.apply_diff(l0, u1)
    cover_0, cubes_0 = _isop(manager, lower_0, u0, cache)
    # Cubes that must contain the positive literal.
    lower_1 = manager.apply_diff(l1, u0)
    cover_1, cubes_1 = _isop(manager, lower_1, u1, cache)
    # Remainder, independent of the variable.
    remainder_lower = manager.apply_or(
        manager.apply_diff(l0, cover_0), manager.apply_diff(l1, cover_1))
    remainder_upper = manager.apply_and(u0, u1)
    cover_r, cubes_r = _isop(manager, remainder_lower, remainder_upper, cache)

    negative = manager._mk(level, TRUE_ID, FALSE_ID)
    positive = manager._mk(level, FALSE_ID, TRUE_ID)
    cover = manager.apply_or(
        manager.apply_or(manager.apply_and(negative, cover_0),
                         manager.apply_and(positive, cover_1)),
        cover_r)
    cubes: List[Cube] = []
    for cube in cubes_0:
        extended = dict(cube)
        extended[name] = False
        cubes.append(extended)
    for cube in cubes_1:
        extended = dict(cube)
        extended[name] = True
        cubes.append(extended)
    cubes.extend(cubes_r)
    cache[key] = (cover, cubes)
    return cover, cubes


def cube_to_string(cube: Cube, and_symbol: str = " ",
                   negation: str = "'") -> str:
    """Render one cube as a product-of-literals string (``a b' c``)."""
    if not cube:
        return "1"
    literals = []
    for name in sorted(cube):
        literals.append(name if cube[name] else f"{name}{negation}")
    return and_symbol.join(literals)


def to_expression(f: Function, or_symbol: str = " + ") -> str:
    """Render a function as an irredundant sum-of-products string."""
    if f.is_true():
        return "1"
    if f.is_false():
        return "0"
    cubes = isop(f)
    return or_symbol.join(cube_to_string(cube) for cube in cubes)
