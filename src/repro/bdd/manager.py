"""The BDD manager: node storage, unique table, ITE and garbage collection.

The manager owns every node.  A node is identified by a small integer.
Identifier ``0`` is the constant FALSE terminal and identifier ``1`` is the
constant TRUE terminal.  Every internal node is a triple
``(level, low, high)`` where ``level`` is the position of the decision
variable in the global variable order (smaller level = closer to the root)
and ``low`` / ``high`` are the identifiers of the cofactors for the variable
being 0 / 1 respectively.

Canonicity invariants maintained by :meth:`BDDManager._mk`:

* no node has ``low == high`` (redundant test elimination),
* no two distinct identifiers describe the same ``(level, low, high)``
  triple (sharing through the unique table).

Because edges are never complemented, two functions are equal if and only
if their root identifiers are equal.
"""

from __future__ import annotations

import weakref
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

FALSE_ID = 0
TRUE_ID = 1
_TERMINAL_LEVEL = 1 << 30  # terminals sort after every variable level


class BDDError(Exception):
    """Base class for errors raised by the BDD engine."""


class BDDOrderError(BDDError):
    """Raised when an unknown variable is used or an ordering is invalid."""


class BDDManager:
    """Owns BDD nodes and implements the core ``ite`` operation.

    Parameters
    ----------
    variables:
        Optional initial variable order (a sequence of distinct names).
        Variables can also be added later with :meth:`add_var`; new
        variables are appended at the end of the order.
    cache_limit:
        Soft limit on the number of entries in each operation cache.
        When a cache exceeds the limit its *oldest-inserted half* is
        evicted (generational eviction by insertion order -- hits do not
        refresh an entry, so this is FIFO by creation, not LRU).  Recent
        generations survive instead of being thrown away wholesale, so
        long sweeps stop paying a full cold-cache rebuild per overflow.

    Examples
    --------
    >>> mgr = BDDManager(["a", "b"])
    >>> f = mgr.var("a") & ~mgr.var("b")
    >>> f.is_false()
    False
    >>> (f & mgr.var("b")).is_false()
    True
    """

    def __init__(self, variables: Optional[Iterable[str]] = None,
                 cache_limit: int = 1_000_000) -> None:
        # Node storage: parallel lists indexed by node id.
        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: List[int] = [FALSE_ID, TRUE_ID]
        self._high: List[int] = [FALSE_ID, TRUE_ID]
        # Unique table: (level, low, high) -> node id.
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Variable order.
        self._var2level: Dict[str, int] = {}
        self._level2var: List[str] = []
        # Operation caches.  Every binary connective has its own table
        # with its own terminal short-circuits (see apply_and & friends);
        # the derived operators of repro.bdd.operators get dedicated
        # memoisation tables as well, so a flood of e.g. conjunctions can
        # never evict the cofactor results the image computation lives on.
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._or_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}
        self._diff_cache: Dict[Tuple[int, int], int] = {}
        self._op_cache: Dict[Tuple, int] = {}
        self._cof_cache: Dict[Tuple[int, int], int] = {}
        self._quant_cache: Dict[Tuple[bool, int, int], int] = {}
        self._andex_cache: Dict[Tuple[int, int, int], int] = {}
        self._evictable = (
            self._ite_cache, self._and_cache, self._or_cache,
            self._xor_cache, self._diff_cache, self._op_cache,
            self._cof_cache, self._quant_cache, self._andex_cache)
        # Interning table turning the frozensets that parameterise the
        # derived operators (quantified level sets, cofactor cubes, ...)
        # into small integers, so their cache keys hash in O(1).
        self._key_ids: Dict[object, int] = {}
        self._cache_limit = cache_limit
        # Live function handles (for garbage collection roots).
        self._roots: "weakref.WeakSet" = weakref.WeakSet()
        # Statistics.
        self.gc_count = 0
        self.created_nodes = 2
        self.cache_lookups = 0
        self.cache_hits = 0
        self.cache_evictions = 0
        if variables is not None:
            for name in variables:
                self.add_var(name)

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> "Function":
        """Declare a new variable appended at the end of the current order.

        Returns the projection function of the variable.  Declaring an
        already-known variable is an error.
        """
        if name in self._var2level:
            raise BDDOrderError(f"variable {name!r} already declared")
        level = len(self._level2var)
        self._var2level[name] = level
        self._level2var.append(name)
        return self.var(name)

    def ensure_var(self, name: str) -> "Function":
        """Return the projection of ``name``, declaring it if necessary."""
        if name not in self._var2level:
            return self.add_var(name)
        return self.var(name)

    def var(self, name: str) -> "Function":
        """Return the projection function of an existing variable."""
        try:
            level = self._var2level[name]
        except KeyError as exc:
            raise BDDOrderError(f"unknown variable {name!r}") from exc
        node = self._mk(level, FALSE_ID, TRUE_ID)
        return self._wrap(node)

    def nvar(self, name: str) -> "Function":
        """Return the negative literal (complement of the projection)."""
        try:
            level = self._var2level[name]
        except KeyError as exc:
            raise BDDOrderError(f"unknown variable {name!r}") from exc
        node = self._mk(level, TRUE_ID, FALSE_ID)
        return self._wrap(node)

    def level_of(self, name: str) -> int:
        """Return the level (order position) of a variable."""
        try:
            return self._var2level[name]
        except KeyError as exc:
            raise BDDOrderError(f"unknown variable {name!r}") from exc

    def var_at_level(self, level: int) -> str:
        """Return the variable name at a given level."""
        return self._level2var[level]

    @property
    def variables(self) -> List[str]:
        """The variable names in their current order (root to leaves)."""
        return list(self._level2var)

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._level2var)

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    @property
    def true(self) -> "Function":
        """The constant TRUE function."""
        return self._wrap(TRUE_ID)

    @property
    def false(self) -> "Function":
        """The constant FALSE function."""
        return self._wrap(FALSE_ID)

    # ------------------------------------------------------------------
    # Node primitives
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)``."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        node = len(self._level)
        self._level.append(level)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        self.created_nodes += 1
        return node

    def node_level(self, node: int) -> int:
        """Level of a node (terminals have a level past every variable)."""
        return self._level[node]

    def node_low(self, node: int) -> int:
        """Low (else) child of an internal node."""
        return self._low[node]

    def node_high(self, node: int) -> int:
        """High (then) child of an internal node."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        """True for the two constant nodes."""
        return node <= TRUE_ID

    def _wrap(self, node: int) -> "Function":
        from repro.bdd.function import Function

        handle = Function(self, node)
        self._roots.add(handle)
        return handle

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else on node identifiers: ``f·g + f'·h``.

        This is the universal binary operation; every two-argument boolean
        connective is expressed through it.
        """
        # Terminal cases.
        if f == TRUE_ID:
            return g
        if f == FALSE_ID:
            return h
        if g == h:
            return g
        if g == TRUE_ID and h == FALSE_ID:
            return f
        key = (f, g, h)
        cache = self._ite_cache
        self.cache_lookups += 1
        cached = cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f0, f1 = self._cofactors_at(f, level)
        g0, g1 = self._cofactors_at(g, level)
        h0, h1 = self._cofactors_at(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(level, low, high)
        if len(cache) >= self._cache_limit:
            self._evict_oldest(cache)
        cache[key] = result
        return result

    def _cofactors_at(self, node: int, level: int) -> Tuple[int, int]:
        """Return the (low, high) cofactors of ``node`` w.r.t. ``level``."""
        if self._level[node] == level:
            return self._low[node], self._high[node]
        return node, node

    def negate(self, node: int) -> int:
        """Complement of the function rooted at ``node``."""
        if node == TRUE_ID:
            return FALSE_ID
        if node == FALSE_ID:
            return TRUE_ID
        cached = self._not_cache.get(node)
        if cached is not None:
            return cached
        result = self._mk(
            self._level[node],
            self.negate(self._low[node]),
            self.negate(self._high[node]),
        )
        self._not_cache[node] = result
        return result

    def _apply_children(self, f: int, g: int) -> Tuple[int, int, int, int, int]:
        """Top level and the four cofactors of a binary apply step."""
        level_f = self._level[f]
        level_g = self._level[g]
        if level_f <= level_g:
            level = level_f
            f0, f1 = self._low[f], self._high[f]
        else:
            level = level_g
            f0 = f1 = f
        if level_g <= level_f:
            g0, g1 = self._low[g], self._high[g]
        else:
            g0 = g1 = g
        return level, f0, f1, g0, g1

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction on node identifiers (specialised, own cache)."""
        if f == g:
            return f
        if f == FALSE_ID or g == FALSE_ID:
            return FALSE_ID
        if f == TRUE_ID:
            return g
        if g == TRUE_ID:
            return f
        if f > g:  # commutative: canonical operand order halves the cache
            f, g = g, f
        key = (f, g)
        cache = self._and_cache
        self.cache_lookups += 1
        cached = cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        level, f0, f1, g0, g1 = self._apply_children(f, g)
        low = self.apply_and(f0, g0)
        high = self.apply_and(f1, g1)
        result = self._mk(level, low, high)
        if len(cache) >= self._cache_limit:
            self._evict_oldest(cache)
        cache[key] = result
        return result

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction on node identifiers (specialised, own cache)."""
        if f == g:
            return f
        if f == TRUE_ID or g == TRUE_ID:
            return TRUE_ID
        if f == FALSE_ID:
            return g
        if g == FALSE_ID:
            return f
        if f > g:
            f, g = g, f
        key = (f, g)
        cache = self._or_cache
        self.cache_lookups += 1
        cached = cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        level, f0, f1, g0, g1 = self._apply_children(f, g)
        low = self.apply_or(f0, g0)
        high = self.apply_or(f1, g1)
        result = self._mk(level, low, high)
        if len(cache) >= self._cache_limit:
            self._evict_oldest(cache)
        cache[key] = result
        return result

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or on node identifiers (specialised, own cache)."""
        if f == g:
            return FALSE_ID
        if f == FALSE_ID:
            return g
        if g == FALSE_ID:
            return f
        if f == TRUE_ID:
            return self.negate(g)
        if g == TRUE_ID:
            return self.negate(f)
        if f > g:
            f, g = g, f
        key = (f, g)
        cache = self._xor_cache
        self.cache_lookups += 1
        cached = cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        level, f0, f1, g0, g1 = self._apply_children(f, g)
        low = self.apply_xor(f0, g0)
        high = self.apply_xor(f1, g1)
        result = self._mk(level, low, high)
        if len(cache) >= self._cache_limit:
            self._evict_oldest(cache)
        cache[key] = result
        return result

    def apply_diff(self, f: int, g: int) -> int:
        """Difference ``f · g'`` on node identifiers (specialised).

        This is the frontier subtraction the Figure 5 traversal performs
        on every image, so it gets its own cache and short-circuits
        instead of paying a negation plus a generic ``ite``.
        """
        if f == FALSE_ID or g == TRUE_ID or f == g:
            return FALSE_ID
        if g == FALSE_ID:
            return f
        if f == TRUE_ID:
            return self.negate(g)
        key = (f, g)
        cache = self._diff_cache
        self.cache_lookups += 1
        cached = cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        level, f0, f1, g0, g1 = self._apply_children(f, g)
        low = self.apply_diff(f0, g0)
        high = self.apply_diff(f1, g1)
        result = self._mk(level, low, high)
        if len(cache) >= self._cache_limit:
            self._evict_oldest(cache)
        cache[key] = result
        return result

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f' + g`` on node identifiers."""
        return self.negate(self.apply_diff(f, g))

    def apply_iff(self, f: int, g: int) -> int:
        """Equivalence on node identifiers."""
        return self.negate(self.apply_xor(f, g))

    # ------------------------------------------------------------------
    # Cube helpers
    # ------------------------------------------------------------------
    def cube(self, literals: Dict[str, bool]) -> "Function":
        """Build the conjunction of literals given as ``{name: polarity}``.

        ``polarity`` True means the positive literal.  The empty dictionary
        yields the constant TRUE.
        """
        # Build the cube bottom-up in reverse level order so every _mk call
        # is constant time (no need for full ite).
        items = sorted(
            ((self.level_of(name), value) for name, value in literals.items()),
            reverse=True,
        )
        node = TRUE_ID
        for level, value in items:
            if value:
                node = self._mk(level, FALSE_ID, node)
            else:
                node = self._mk(level, node, FALSE_ID)
        return self._wrap(node)

    def from_assignment(self, assignment: Dict[str, bool],
                        care_vars: Optional[Sequence[str]] = None) -> "Function":
        """Minterm of ``assignment`` over ``care_vars`` (default: its keys)."""
        if care_vars is None:
            return self.cube(assignment)
        literals = {name: bool(assignment[name]) for name in care_vars}
        return self.cube(literals)

    # ------------------------------------------------------------------
    # Cache / memory management
    # ------------------------------------------------------------------
    def _evict_oldest(self, cache: Dict) -> None:
        """Generational eviction: drop the oldest-*inserted* half.

        Dictionaries iterate in insertion order, so the first half of the
        keys are the entries created longest ago (hits do not reorder --
        deliberately: probes stay a plain ``get``, at the cost of FIFO
        rather than true LRU eviction).  Keeping the newer generation
        bounds memory like the old clear-everything policy did, without
        the repeated full cold-cache rebuilds.
        """
        drop = len(cache) - self._cache_limit // 2
        for key in list(islice(iter(cache), drop)):
            del cache[key]
        self.cache_evictions += 1

    def intern_key(self, key: object) -> int:
        """Intern a hashable operation parameter to a small integer.

        The derived operators of :mod:`repro.bdd.operators` are
        parameterised by frozensets (quantified level sets, cofactor
        cubes); hashing those on every cache probe is where a naive
        memoisation spends its time.  Interning gives each distinct
        parameter a small id, so cache keys are plain integer tuples.
        """
        ident = self._key_ids.get(key)
        if ident is None:
            ident = len(self._key_ids)
            self._key_ids[key] = ident
        return ident

    def clear_caches(self) -> None:
        """Drop every memoisation table (does not drop nodes)."""
        for cache in self._evictable:
            cache.clear()
        self._not_cache.clear()

    def cache_stats(self) -> Dict[str, int]:
        """Aggregate operation-cache statistics (monotonic counters).

        ``lookups``/``hits`` count every probe of a memoisation table
        (the specialised binary applies, ``ite`` and the derived
        operators all report here); ``evictions`` counts generational
        half-evictions; ``entries`` is the current live entry total.
        """
        return {
            "lookups": self.cache_lookups,
            "hits": self.cache_hits,
            "evictions": self.cache_evictions,
            "entries": (sum(len(cache) for cache in self._evictable)
                        + len(self._not_cache)),
        }

    def collect_garbage(self) -> int:
        """Remove nodes unreachable from any live :class:`Function` handle.

        Returns the number of reclaimed nodes.  Node identifiers of live
        functions are remapped in place, so handles stay valid.
        """
        live_roots = [h.node for h in self._roots]
        marked = set([FALSE_ID, TRUE_ID])
        stack = [n for n in live_roots if n not in marked]
        while stack:
            node = stack.pop()
            if node in marked:
                continue
            marked.add(node)
            low, high = self._low[node], self._high[node]
            if low not in marked:
                stack.append(low)
            if high not in marked:
                stack.append(high)
        reclaimed = len(self._level) - len(marked)
        if reclaimed == 0:
            return 0
        # Build the remapping old id -> new id, preserving 0/1.
        order = sorted(marked)
        remap = {old: new for new, old in enumerate(order)}
        new_level = [self._level[old] for old in order]
        new_low = [remap[self._low[old]] for old in order]
        new_high = [remap[self._high[old]] for old in order]
        self._level, self._low, self._high = new_level, new_low, new_high
        self._unique = {
            (self._level[n], self._low[n], self._high[n]): n
            for n in range(2, len(self._level))
        }
        self.clear_caches()
        # Patch live handles.
        for handle in self._roots:
            handle.node = remap[handle.node]
        self.gc_count += 1
        return reclaimed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of nodes currently stored (including terminals)."""
        return len(self._level)

    def size(self, node: int) -> int:
        """Number of nodes in the DAG rooted at ``node`` (terminals included)."""
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current > TRUE_ID:
                stack.append(self._low[current])
                stack.append(self._high[current])
        return len(seen)

    def descendants(self, node: int) -> Iterable[int]:
        """Iterate over every node reachable from ``node`` (incl. itself)."""
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            yield current
            if current > TRUE_ID:
                stack.append(self._low[current])
                stack.append(self._high[current])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"BDDManager(vars={self.num_vars}, nodes={self.num_nodes}, "
                f"gc={self.gc_count})")
