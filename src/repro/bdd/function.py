"""Function handles: user-facing view of a BDD root.

A :class:`Function` pairs a manager with a root node identifier and exposes
the usual boolean operators.  Handles are hashable and compare equal when
they denote the same function in the same manager (plain edges make node
identity canonical).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.bdd.manager import BDDManager


class Function:
    """A boolean function represented by a BDD root in a manager.

    Operator summary (all return new :class:`Function` objects):

    ========  =========================
    ``~f``    complement
    ``f & g`` conjunction
    ``f | g`` disjunction
    ``f ^ g`` exclusive or
    ``f - g`` difference (``f & ~g``)
    ``f >> g``implication
    ``f == g``semantic equality (bool)
    ========  =========================
    """

    __slots__ = ("manager", "node", "__weakref__")

    def __init__(self, manager: "BDDManager", node: int) -> None:
        self.manager = manager
        self.node = node

    # ------------------------------------------------------------------
    # Constant tests
    # ------------------------------------------------------------------
    def is_true(self) -> bool:
        """True iff this is the constant TRUE function."""
        from repro.bdd.manager import TRUE_ID

        return self.node == TRUE_ID

    def is_false(self) -> bool:
        """True iff this is the constant FALSE function."""
        from repro.bdd.manager import FALSE_ID

        return self.node == FALSE_ID

    def is_constant(self) -> bool:
        """True iff this is one of the two constant functions."""
        return self.is_true() or self.is_false()

    def __bool__(self) -> bool:
        raise TypeError(
            "Function truth value is ambiguous; use is_true()/is_false() "
            "or compare with == explicitly"
        )

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def _other_node(self, other: "Function") -> int:
        if not isinstance(other, Function):
            raise TypeError(f"expected a Function, got {type(other).__name__}")
        if other.manager is not self.manager:
            raise ValueError("cannot combine functions from different managers")
        return other.node

    def __invert__(self) -> "Function":
        return self.manager._wrap(self.manager.negate(self.node))

    def __and__(self, other: "Function") -> "Function":
        return self.manager._wrap(
            self.manager.apply_and(self.node, self._other_node(other)))

    def __or__(self, other: "Function") -> "Function":
        return self.manager._wrap(
            self.manager.apply_or(self.node, self._other_node(other)))

    def __xor__(self, other: "Function") -> "Function":
        return self.manager._wrap(
            self.manager.apply_xor(self.node, self._other_node(other)))

    def __sub__(self, other: "Function") -> "Function":
        return self.manager._wrap(
            self.manager.apply_diff(self.node, self._other_node(other)))

    def __rshift__(self, other: "Function") -> "Function":
        return self.manager._wrap(
            self.manager.apply_implies(self.node, self._other_node(other)))

    def iff(self, other: "Function") -> "Function":
        """Logical equivalence ``f <-> g`` as a function."""
        return self.manager._wrap(
            self.manager.apply_iff(self.node, self._other_node(other)))

    def ite(self, then_f: "Function", else_f: "Function") -> "Function":
        """``self`` ? ``then_f`` : ``else_f``."""
        return self.manager._wrap(
            self.manager.ite(self.node, self._other_node(then_f),
                             self._other_node(else_f)))

    # ------------------------------------------------------------------
    # Comparison / hashing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Function):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __le__(self, other: "Function") -> bool:
        """Implication test: True iff ``self -> other`` is a tautology."""
        from repro.bdd.manager import TRUE_ID

        return self.manager.apply_implies(self.node, self._other_node(other)) == TRUE_ID

    def __ge__(self, other: "Function") -> bool:
        return other <= self

    def __lt__(self, other: "Function") -> bool:
        return self <= other and self != other

    def __gt__(self, other: "Function") -> bool:
        return other < self

    def disjoint(self, other: "Function") -> bool:
        """True iff the two functions have no common satisfying assignment."""
        from repro.bdd.manager import FALSE_ID

        return self.manager.apply_and(self.node, self._other_node(other)) == FALSE_ID

    # ------------------------------------------------------------------
    # Derived operations (delegate to repro.bdd.operators / analysis)
    # ------------------------------------------------------------------
    def exist(self, variables: Sequence[str]) -> "Function":
        """Existential quantification over ``variables``."""
        from repro.bdd import operators

        return operators.exist(self, variables)

    def forall(self, variables: Sequence[str]) -> "Function":
        """Universal quantification over ``variables``."""
        from repro.bdd import operators

        return operators.forall(self, variables)

    def cofactor(self, literals: Dict[str, bool]) -> "Function":
        """Cofactor with respect to a cube given as ``{var: polarity}``."""
        from repro.bdd import operators

        return operators.cofactor(self, literals)

    def compose(self, substitutions: Dict[str, "Function"]) -> "Function":
        """Simultaneous functional composition ``f[var := g]``."""
        from repro.bdd import operators

        return operators.compose(self, substitutions)

    def rename(self, mapping: Dict[str, str]) -> "Function":
        """Rename variables (must map to variables, used for primed copies)."""
        from repro.bdd import operators

        return operators.rename(self, mapping)

    def and_exist(self, other: "Function", variables: Sequence[str]) -> "Function":
        """Relational product: ``exists variables . (self & other)``."""
        from repro.bdd import operators

        return operators.and_exist(self, other, variables)

    def support(self) -> Sequence[str]:
        """The set of variables the function actually depends on."""
        from repro.bdd import analysis

        return analysis.support(self)

    def sat_count(self, care_vars: Optional[Sequence[str]] = None) -> int:
        """Number of satisfying assignments over ``care_vars``."""
        from repro.bdd import analysis

        return analysis.sat_count(self, care_vars)

    def iter_models(self, care_vars: Optional[Sequence[str]] = None
                    ) -> Iterator[Dict[str, bool]]:
        """Iterate over satisfying assignments as dictionaries."""
        from repro.bdd import analysis

        return analysis.iter_models(self, care_vars)

    def pick_one(self, care_vars: Optional[Sequence[str]] = None
                 ) -> Optional[Dict[str, bool]]:
        """Return one satisfying assignment, or ``None`` if unsatisfiable."""
        from repro.bdd import analysis

        return analysis.pick_one(self, care_vars)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate the function under a (total enough) assignment."""
        from repro.bdd import analysis

        return analysis.evaluate(self, assignment)

    def size(self) -> int:
        """Number of BDD nodes of this function (terminals included)."""
        return self.manager.size(self.node)

    def to_cover(self) -> Sequence[Dict[str, bool]]:
        """Irredundant sum-of-products cover (list of cubes)."""
        from repro.bdd import cover

        return cover.isop(self)

    def to_expr(self) -> str:
        """Human-readable sum-of-products expression string."""
        from repro.bdd import cover

        return cover.to_expression(self)

    def to_dot(self) -> str:
        """Graphviz DOT representation of the BDD."""
        from repro.bdd import dot

        return dot.to_dot(self)

    def __repr__(self) -> str:
        if self.is_true():
            return "Function(TRUE)"
        if self.is_false():
            return "Function(FALSE)"
        return f"Function(node={self.node}, size={self.size()})"
