"""Derived BDD operations: quantification, cofactors, composition, renaming.

All functions here take and return :class:`~repro.bdd.function.Function`
handles.  They memoise their recursion in the manager's shared operation
cache, keyed by an operation tag so different operations never collide.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence

from repro.bdd.function import Function
from repro.bdd.manager import BDDManager, BDDOrderError, FALSE_ID, TRUE_ID


def _levels_of(manager: BDDManager, variables: Sequence[str]) -> FrozenSet[int]:
    return frozenset(manager.level_of(name) for name in variables)


# ----------------------------------------------------------------------
# Quantification
# ----------------------------------------------------------------------
def exist(f: Function, variables: Sequence[str]) -> Function:
    """Existential quantification ``exists variables . f``.

    The abstraction of a single variable x is the classic
    ``f[x:=0] + f[x:=1]`` (Section 4 of the paper).
    """
    manager = f.manager
    levels = _levels_of(manager, variables)
    if not levels:
        return f
    result = _quantify(manager, f.node, levels, conjunction=False)
    return manager._wrap(result)


def forall(f: Function, variables: Sequence[str]) -> Function:
    """Universal quantification ``forall variables . f``."""
    manager = f.manager
    levels = _levels_of(manager, variables)
    if not levels:
        return f
    result = _quantify(manager, f.node, levels, conjunction=True)
    return manager._wrap(result)


def _quantify(manager: BDDManager, node: int, levels: FrozenSet[int],
              conjunction: bool) -> int:
    if manager.is_terminal(node):
        return node
    level = manager.node_level(node)
    if level > max(levels):
        # Every quantified variable is above this node: nothing to abstract.
        return node
    key = ("quant", conjunction, node, levels)
    cached = manager._op_cache.get(key)
    if cached is not None:
        return cached
    low = _quantify(manager, manager.node_low(node), levels, conjunction)
    high = _quantify(manager, manager.node_high(node), levels, conjunction)
    if level in levels:
        if conjunction:
            result = manager.apply_and(low, high)
        else:
            result = manager.apply_or(low, high)
    else:
        result = manager.ite(
            manager._mk(level, FALSE_ID, TRUE_ID), high, low)
    manager._op_cache[key] = result
    return result


def and_exist(f: Function, g: Function, variables: Sequence[str]) -> Function:
    """Relational product ``exists variables . (f & g)`` in one pass."""
    manager = f.manager
    if g.manager is not manager:
        raise ValueError("cannot combine functions from different managers")
    levels = _levels_of(manager, variables)
    result = _and_exist(manager, f.node, g.node, levels)
    return manager._wrap(result)


def _and_exist(manager: BDDManager, f: int, g: int,
               levels: FrozenSet[int]) -> int:
    if f == FALSE_ID or g == FALSE_ID:
        return FALSE_ID
    if f == TRUE_ID and g == TRUE_ID:
        return TRUE_ID
    if f == TRUE_ID or g == TRUE_ID:
        single = g if f == TRUE_ID else f
        return _quantify(manager, single, levels, conjunction=False) \
            if levels else single
    key = ("andex", min(f, g), max(f, g), levels)
    cached = manager._op_cache.get(key)
    if cached is not None:
        return cached
    level = min(manager.node_level(f), manager.node_level(g))
    f0, f1 = manager._cofactors_at(f, level)
    g0, g1 = manager._cofactors_at(g, level)
    if level in levels:
        low = _and_exist(manager, f0, g0, levels)
        if low == TRUE_ID:
            result = TRUE_ID
        else:
            high = _and_exist(manager, f1, g1, levels)
            result = manager.apply_or(low, high)
    else:
        low = _and_exist(manager, f0, g0, levels)
        high = _and_exist(manager, f1, g1, levels)
        result = manager._mk(level, low, high) if low != high else low
    manager._op_cache[key] = result
    return result


# ----------------------------------------------------------------------
# Cofactor / restrict
# ----------------------------------------------------------------------
def cofactor(f: Function, literals: Dict[str, bool]) -> Function:
    """Cofactor of ``f`` with respect to a cube of literals.

    ``literals`` maps variable names to the value they are fixed to.  The
    result does not depend on the fixed variables; this corresponds to the
    paper's cube-generalised cofactor ``f_c``.
    """
    manager = f.manager
    if not literals:
        return f
    assignment = {manager.level_of(name): bool(value)
                  for name, value in literals.items()}
    frozen = frozenset(assignment.items())
    result = _cofactor(manager, f.node, assignment, frozen)
    return manager._wrap(result)


def _cofactor(manager: BDDManager, node: int,
              assignment: Dict[int, bool], frozen: FrozenSet) -> int:
    if manager.is_terminal(node):
        return node
    level = manager.node_level(node)
    if level > max(assignment):
        return node
    key = ("cof", node, frozen)
    cached = manager._op_cache.get(key)
    if cached is not None:
        return cached
    if level in assignment:
        child = (manager.node_high(node) if assignment[level]
                 else manager.node_low(node))
        result = _cofactor(manager, child, assignment, frozen)
    else:
        low = _cofactor(manager, manager.node_low(node), assignment, frozen)
        high = _cofactor(manager, manager.node_high(node), assignment, frozen)
        result = manager._mk(level, low, high) if low != high else low
    manager._op_cache[key] = result
    return result


def restrict(f: Function, literals: Dict[str, bool]) -> Function:
    """Alias of :func:`cofactor` (classical name)."""
    return cofactor(f, literals)


# ----------------------------------------------------------------------
# Composition and renaming
# ----------------------------------------------------------------------
def compose(f: Function, substitutions: Dict[str, Function]) -> Function:
    """Simultaneous composition: replace each variable by a function.

    Implemented by a single recursive pass that rebuilds the function with
    ``ite`` at substituted variables, so simultaneous substitution is exact
    (no sequential-composition artefacts).
    """
    manager = f.manager
    if not substitutions:
        return f
    by_level: Dict[int, int] = {}
    for name, g in substitutions.items():
        if g.manager is not manager:
            raise ValueError("substitution functions must share the manager")
        by_level[manager.level_of(name)] = g.node
    frozen = frozenset(by_level.items())
    result = _compose(manager, f.node, by_level, frozen)
    return manager._wrap(result)


def _compose(manager: BDDManager, node: int, by_level: Dict[int, int],
             frozen: FrozenSet) -> int:
    if manager.is_terminal(node):
        return node
    key = ("compose", node, frozen)
    cached = manager._op_cache.get(key)
    if cached is not None:
        return cached
    level = manager.node_level(node)
    low = _compose(manager, manager.node_low(node), by_level, frozen)
    high = _compose(manager, manager.node_high(node), by_level, frozen)
    replacement = by_level.get(level)
    if replacement is None:
        replacement = manager._mk(level, FALSE_ID, TRUE_ID)
    result = manager.ite(replacement, high, low)
    manager._op_cache[key] = result
    return result


def rename(f: Function, mapping: Dict[str, str]) -> Function:
    """Rename variables according to ``mapping`` (old name -> new name).

    Every target variable must already be declared.  Renaming is a special
    case of composition with projection functions.
    """
    manager = f.manager
    substitutions = {}
    for old, new in mapping.items():
        if new not in manager.variables:
            raise BDDOrderError(f"rename target {new!r} is not declared")
        substitutions[old] = manager.var(new)
    return compose(f, substitutions)
