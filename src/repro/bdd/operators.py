"""Derived BDD operations: quantification, cofactors, composition, renaming.

All functions here take and return :class:`~repro.bdd.function.Function`
handles.  Each operation memoises its recursion in a dedicated cache on
the manager (quantification, cofactor and the relational product each
own one; composition shares the generic ``_op_cache``), keyed by the
node id plus a small interned id of the operation parameter
(:meth:`~repro.bdd.manager.BDDManager.intern_key`) -- so cache probes
hash integer tuples instead of re-hashing frozensets on every visit.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence

from repro.bdd.function import Function
from repro.bdd.manager import BDDManager, BDDOrderError, FALSE_ID, TRUE_ID


def _levels_of(manager: BDDManager, variables: Sequence[str]) -> FrozenSet[int]:
    return frozenset(manager.level_of(name) for name in variables)


# ----------------------------------------------------------------------
# Quantification
# ----------------------------------------------------------------------
def exist(f: Function, variables: Sequence[str]) -> Function:
    """Existential quantification ``exists variables . f``.

    The abstraction of a single variable x is the classic
    ``f[x:=0] + f[x:=1]`` (Section 4 of the paper).
    """
    manager = f.manager
    levels = _levels_of(manager, variables)
    if not levels:
        return f
    key_id = manager.intern_key(("quant", levels))
    result = _quantify(manager, f.node, levels, max(levels), key_id,
                       conjunction=False)
    return manager._wrap(result)


def forall(f: Function, variables: Sequence[str]) -> Function:
    """Universal quantification ``forall variables . f``."""
    manager = f.manager
    levels = _levels_of(manager, variables)
    if not levels:
        return f
    key_id = manager.intern_key(("quant", levels))
    result = _quantify(manager, f.node, levels, max(levels), key_id,
                       conjunction=True)
    return manager._wrap(result)


def _quantify(manager: BDDManager, node: int, levels: FrozenSet[int],
              top: int, key_id: int, conjunction: bool) -> int:
    if manager.is_terminal(node):
        return node
    level = manager.node_level(node)
    if level > top:
        # Every quantified variable is above this node: nothing to abstract.
        return node
    cache = manager._quant_cache
    key = (conjunction, node, key_id)
    manager.cache_lookups += 1
    cached = cache.get(key)
    if cached is not None:
        manager.cache_hits += 1
        return cached
    low = _quantify(manager, manager.node_low(node), levels, top, key_id,
                    conjunction)
    high = _quantify(manager, manager.node_high(node), levels, top, key_id,
                     conjunction)
    if level in levels:
        if conjunction:
            result = manager.apply_and(low, high)
        else:
            result = manager.apply_or(low, high)
    else:
        result = manager._mk(level, low, high)
    if len(cache) >= manager._cache_limit:
        manager._evict_oldest(cache)
    cache[key] = result
    return result


def and_exist(f: Function, g: Function, variables: Sequence[str]) -> Function:
    """Relational product ``exists variables . (f & g)`` in one pass."""
    manager = f.manager
    if g.manager is not manager:
        raise ValueError("cannot combine functions from different managers")
    levels = _levels_of(manager, variables)
    key_id = manager.intern_key(("andex", levels))
    result = _and_exist(manager, f.node, g.node, levels, key_id)
    return manager._wrap(result)


def _and_exist(manager: BDDManager, f: int, g: int,
               levels: FrozenSet[int], key_id: int) -> int:
    if f == FALSE_ID or g == FALSE_ID:
        return FALSE_ID
    if f == TRUE_ID and g == TRUE_ID:
        return TRUE_ID
    if f == TRUE_ID or g == TRUE_ID:
        single = g if f == TRUE_ID else f
        if not levels:
            return single
        quant_id = manager.intern_key(("quant", levels))
        return _quantify(manager, single, levels, max(levels), quant_id,
                         conjunction=False)
    cache = manager._andex_cache
    key = (min(f, g), max(f, g), key_id)
    manager.cache_lookups += 1
    cached = cache.get(key)
    if cached is not None:
        manager.cache_hits += 1
        return cached
    level = min(manager.node_level(f), manager.node_level(g))
    f0, f1 = manager._cofactors_at(f, level)
    g0, g1 = manager._cofactors_at(g, level)
    if level in levels:
        low = _and_exist(manager, f0, g0, levels, key_id)
        if low == TRUE_ID:
            result = TRUE_ID
        else:
            high = _and_exist(manager, f1, g1, levels, key_id)
            result = manager.apply_or(low, high)
    else:
        low = _and_exist(manager, f0, g0, levels, key_id)
        high = _and_exist(manager, f1, g1, levels, key_id)
        result = manager._mk(level, low, high) if low != high else low
    if len(cache) >= manager._cache_limit:
        manager._evict_oldest(cache)
    cache[key] = result
    return result


# ----------------------------------------------------------------------
# Cofactor / restrict
# ----------------------------------------------------------------------
def cofactor(f: Function, literals: Dict[str, bool]) -> Function:
    """Cofactor of ``f`` with respect to a cube of literals.

    ``literals`` maps variable names to the value they are fixed to.  The
    result does not depend on the fixed variables; this corresponds to the
    paper's cube-generalised cofactor ``f_c``.
    """
    manager = f.manager
    if not literals:
        return f
    assignment = {manager.level_of(name): bool(value)
                  for name, value in literals.items()}
    key_id = manager.intern_key(("cof", frozenset(assignment.items())))
    result = _cofactor(manager, f.node, assignment, max(assignment), key_id)
    return manager._wrap(result)


def _cofactor(manager: BDDManager, node: int,
              assignment: Dict[int, bool], top: int, key_id: int) -> int:
    if manager.is_terminal(node):
        return node
    level = manager.node_level(node)
    if level > top:
        return node
    cache = manager._cof_cache
    key = (node, key_id)
    manager.cache_lookups += 1
    cached = cache.get(key)
    if cached is not None:
        manager.cache_hits += 1
        return cached
    if level in assignment:
        child = (manager.node_high(node) if assignment[level]
                 else manager.node_low(node))
        result = _cofactor(manager, child, assignment, top, key_id)
    else:
        low = _cofactor(manager, manager.node_low(node), assignment, top,
                        key_id)
        high = _cofactor(manager, manager.node_high(node), assignment, top,
                         key_id)
        result = manager._mk(level, low, high) if low != high else low
    if len(cache) >= manager._cache_limit:
        manager._evict_oldest(cache)
    cache[key] = result
    return result


def restrict(f: Function, literals: Dict[str, bool]) -> Function:
    """Alias of :func:`cofactor` (classical name)."""
    return cofactor(f, literals)


# ----------------------------------------------------------------------
# Composition and renaming
# ----------------------------------------------------------------------
def compose(f: Function, substitutions: Dict[str, Function]) -> Function:
    """Simultaneous composition: replace each variable by a function.

    Implemented by a single recursive pass that rebuilds the function with
    ``ite`` at substituted variables, so simultaneous substitution is exact
    (no sequential-composition artefacts).
    """
    manager = f.manager
    if not substitutions:
        return f
    by_level: Dict[int, int] = {}
    for name, g in substitutions.items():
        if g.manager is not manager:
            raise ValueError("substitution functions must share the manager")
        by_level[manager.level_of(name)] = g.node
    key_id = manager.intern_key(("compose", frozenset(by_level.items())))
    result = _compose(manager, f.node, by_level, key_id)
    return manager._wrap(result)


def _compose(manager: BDDManager, node: int, by_level: Dict[int, int],
             key_id: int) -> int:
    if manager.is_terminal(node):
        return node
    cache = manager._op_cache
    key = (node, key_id)
    manager.cache_lookups += 1
    cached = cache.get(key)
    if cached is not None:
        manager.cache_hits += 1
        return cached
    level = manager.node_level(node)
    low = _compose(manager, manager.node_low(node), by_level, key_id)
    high = _compose(manager, manager.node_high(node), by_level, key_id)
    replacement = by_level.get(level)
    if replacement is None:
        replacement = manager._mk(level, FALSE_ID, TRUE_ID)
    result = manager.ite(replacement, high, low)
    if len(cache) >= manager._cache_limit:
        manager._evict_oldest(cache)
    cache[key] = result
    return result


def rename(f: Function, mapping: Dict[str, str]) -> Function:
    """Rename variables according to ``mapping`` (old name -> new name).

    Every target variable must already be declared.  Renaming is a special
    case of composition with projection functions.
    """
    manager = f.manager
    substitutions = {}
    for old, new in mapping.items():
        if new not in manager.variables:
            raise BDDOrderError(f"rename target {new!r} is not declared")
        substitutions[old] = manager.var(new)
    return compose(f, substitutions)
