"""Small shared utilities (timing, deterministic naming)."""

from repro.utils.timing import Stopwatch, PhaseTimer

__all__ = ["Stopwatch", "PhaseTimer"]
