"""Timing utilities used by the checker and the benchmark harness."""

from __future__ import annotations

import time
from typing import Dict, Iterator, Optional
from contextlib import contextmanager


class DeadlineExceeded(Exception):
    """A cooperative deadline expired mid-computation.

    Raised by the symbolic traversal's fixpoint loop when the
    ``deadline`` execution knob (an absolute :func:`time.monotonic`
    instant) has passed.  The worker primitive catches it and reports
    the entry as a ``timeout`` record, which is how the ``serial``,
    ``thread`` and ``asyncio`` backends -- none of which can preempt a
    running entry the way the ``process`` backend can -- still honour
    per-entry time budgets.
    """


def deadline_from_timeout(timeout: Optional[float]) -> Optional[float]:
    """Absolute monotonic deadline for a relative ``timeout`` budget."""
    if timeout is None:
        return None
    return time.monotonic() + float(timeout)


def check_deadline(deadline: Optional[float], context: str) -> None:
    """Raise :class:`DeadlineExceeded` when ``deadline`` has passed."""
    if deadline is not None and time.monotonic() > deadline:
        raise DeadlineExceeded(
            f"cooperative deadline exceeded during {context}")


class Stopwatch:
    """A simple cumulative stopwatch.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     pass
    >>> watch.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: Optional[float] = None

    def start(self) -> None:
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("stopwatch not running")
        delta = time.perf_counter() - self._started
        self.elapsed += delta
        self._started = None
        return delta

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    Mirrors the columns of the paper's Table 1 (T+C, NI-p, CSC, Total).
    """

    def __init__(self) -> None:
        self._phases: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._phases[name] = self._phases.get(name, 0.0) + elapsed

    def get(self, name: str) -> float:
        """Seconds accumulated in a phase (0.0 if the phase never ran)."""
        return self._phases.get(name, 0.0)

    @property
    def total(self) -> float:
        """Sum of every recorded phase."""
        return sum(self._phases.values())

    def as_dict(self) -> Dict[str, float]:
        """Copy of the per-phase timings."""
        return dict(self._phases)
