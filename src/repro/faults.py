"""Deterministic fault injection for the sweep fabric.

:class:`FaultPlan` is the chaos dial of the lease-based sweep fabric
(:mod:`repro.fabric`): a seeded, fully deterministic description of
which faults to inject where.  It rides on
:class:`~repro.api.config.EngineConfig` as the ``fault_plan`` execution
knob -- excluded from every cache fingerprint, exactly like
``trace_dir`` -- so an injected sweep caches, fingerprints and verifies
identically to a clean one.  That is the property the sweep gate's
chaos leg turns into CI: a fault-injected lease sweep must emit stable
JSON byte-identical to a clean serial sweep.

Determinism is load-bearing.  Each injection decision hashes
``seed | kind | key`` with SHA-256 and compares against the kind's
rate, so decisions are independent of ``PYTHONHASHSEED``, execution
order, worker count and wall clock: the same plan injects the same
faults into the same entries on every machine, every run.  Decisions
also fire only on an entry's *first* attempt
(:meth:`FaultPlan.for_attempt` stamps the attempt number into the
per-dispatch plan), so the retry machinery always converges on the
clean verdict.

Four fault kinds cover the recovery paths the fabric promises:

``crash``
    The worker primitive raises before verifying -- the entry yields an
    ``error`` record, retried by policy.
``hang``
    The entry starts with an already-expired cooperative deadline, so
    the traversal's per-iteration check raises
    :class:`~repro.utils.timing.DeadlineExceeded` -- a ``timeout``
    record, retried by policy.
``truncate``
    The coordinator tears the store append mid-line
    (:func:`torn_write`) and discards the in-memory result -- the lease
    is never released, expires, and the entry is re-issued.
``stall``
    The coordinator's renewal loop skips the entry's lease, which
    expires mid-flight; the late release is rejected and the entry is
    re-issued.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional

#: The injectable fault kinds, in spec order.
FAULT_KINDS = ("crash", "hang", "truncate", "stall")

#: Scale of the 64-bit hash prefix an injection decision compares
#: against its rate.
_HASH_SPAN = float(2 ** 64)


class FaultSpecError(ValueError):
    """A ``--inject-faults`` spec string does not parse."""


class InjectedWorkerCrash(Exception):
    """The fault a ``crash`` injection raises inside the worker.

    Deliberately a plain :class:`Exception`: the worker primitive's
    normal catch-all turns it into an ``error`` record, exactly like a
    real engine crash would -- the recovery path under test is the
    generic one, not a special case."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic fault-injection plan.

    Rates are probabilities in ``[0, 1]`` per fault kind; ``seed``
    decorrelates plans; ``attempt`` is the dispatch attempt the plan is
    evaluated under (faults fire only on attempt 1, so retries always
    recover the clean verdict).
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    truncate: float = 0.0
    stall: float = 0.0
    attempt: int = 1

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(
                    f"fault rate {kind}={rate} outside [0, 1]")
        if self.attempt < 1:
            raise FaultSpecError(
                f"attempt must be >= 1, got {self.attempt}")

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decides(self, kind: str, key: str) -> bool:
        """Deterministically decide whether ``kind`` fires for ``key``.

        ``key`` is any stable per-entry identifier (the sweep uses the
        task fingerprint).  The decision is a pure function of
        ``(seed, kind, key)`` -- immune to hash randomisation and
        execution order -- and always ``False`` past attempt 1.
        """
        if kind not in FAULT_KINDS:
            raise FaultSpecError(f"unknown fault kind {kind!r}; "
                                 f"known: {', '.join(FAULT_KINDS)}")
        if self.attempt != 1:
            return False
        rate = float(getattr(self, kind))
        if rate <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}|{kind}|{key}".encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / _HASH_SPAN
        return draw < rate

    def for_attempt(self, attempt: int) -> "FaultPlan":
        """The same plan evaluated under dispatch attempt ``attempt``."""
        return replace(self, attempt=attempt)

    @property
    def active(self) -> bool:
        """True when any fault kind has a non-zero rate."""
        return any(getattr(self, kind) > 0.0 for kind in FAULT_KINDS)

    # ------------------------------------------------------------------
    # The spec string (CLI flag, EngineConfig.fault_plan knob)
    # ------------------------------------------------------------------
    def to_spec(self) -> str:
        """Canonical ``--inject-faults`` spec string form.

        ``parse_fault_spec(plan.to_spec()) == plan`` holds exactly; the
        string form is what rides on ``EngineConfig.fault_plan`` so the
        knob stays a plain JSON scalar in worker payloads.
        """
        parts = [f"{kind}={getattr(self, kind):g}" for kind in FAULT_KINDS
                 if getattr(self, kind) > 0.0]
        parts.append(f"seed={self.seed}")
        if self.attempt != 1:
            parts.append(f"attempt={self.attempt}")
        return ",".join(parts)

    # ------------------------------------------------------------------
    # Round-trip schema
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "crash": self.crash,
            "hang": self.hang,
            "truncate": self.truncate,
            "stall": self.stall,
            "attempt": self.attempt,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            crash=float(data.get("crash", 0.0)),
            hang=float(data.get("hang", 0.0)),
            truncate=float(data.get("truncate", 0.0)),
            stall=float(data.get("stall", 0.0)),
            attempt=int(data.get("attempt", 1)))


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse an ``--inject-faults`` spec.

    Comma-separated ``key=value`` pairs: one per fault kind
    (``crash=0.2,hang=0.1``), plus ``seed=N`` and (internal)
    ``attempt=N``.  Raises :class:`FaultSpecError` on anything else.
    """
    kwargs: Dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise FaultSpecError(
                f"bad fault spec part {part!r}; expected key=value")
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key in FAULT_KINDS:
                kwargs[key] = float(value)
            elif key in ("seed", "attempt"):
                kwargs[key] = int(value)
            else:
                raise FaultSpecError(
                    f"unknown fault spec key {key!r}; known: "
                    f"{', '.join(FAULT_KINDS + ('seed', 'attempt'))}")
        except ValueError as error:
            if isinstance(error, FaultSpecError):
                raise
            raise FaultSpecError(
                f"bad value for {key!r} in fault spec: {value!r}")
    return FaultPlan(**kwargs)


def plan_from_config(config: Mapping[str, object]) -> Optional[FaultPlan]:
    """The :class:`FaultPlan` carried by a config dict, if any.

    The worker primitive calls this on the raw payload config; a
    missing or empty ``fault_plan`` knob means no injection.
    """
    spec = config.get("fault_plan")
    if not spec:
        return None
    return parse_fault_spec(str(spec))


def torn_write(path: str, record: Mapping[str, object]) -> None:
    """Append the *front half* of a JSONL record -- a simulated
    crash-mid-write.

    The torn line still ends in a newline so subsequent appends stay
    line-aligned (a real crash tears the final line of the file, which
    the crash-mid-write tests exercise separately); loading the store
    skips exactly the torn line and ``compact()`` repairs the file.
    """
    line = json.dumps(record, sort_keys=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line[:max(1, len(line) // 2)] + "\n")
