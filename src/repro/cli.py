"""Command-line interface: ``stg-check`` (also ``python -m repro``).

Check the implementability of an STG given as a ``.g`` file or as one of
the built-in examples.  All verification flows through the public
:mod:`repro.api` facade -- the CLI holds no engine knowledge, so engines
registered via :func:`repro.engines.register` are immediately usable::

    stg-check handshake
    stg-check muller_pipeline --scale 8
    stg-check path/to/spec.g --explicit
    stg-check vme_read --engine explicit
    stg-check mutex_element --arbitration p_me
    stg-check handshake --checks csc,persistency

The ``batch-check`` mode sweeps the benchmark corpus (:mod:`repro.corpus`)
through the sweep runner (:mod:`repro.runner`) and validates every
per-property verdict against the registry's expected metadata::

    stg-check batch-check                 # every corpus entry
    stg-check batch-check vme_read mutex_element
    stg-check batch-check --engine explicit
    stg-check batch-check --list
    stg-check batch-check --list --json - # machine-readable listing
    stg-check batch-check --jobs 4 --cache-dir .repro-cache
    stg-check batch-check --shard 0/8 --jobs 2 --backend thread
    stg-check batch-check --family random_ring:1-100 --json report.json
    stg-check batch-check --cache-dir store --resume
    stg-check batch-check --merge shard-0 shard-1 --cache-dir merged
    stg-check batch-check --cache-dir store --cache-gc entries=1000,age=7d
    stg-check batch-check --bdd-cache bdd-store --checks csc --profile 5

The ``serve`` mode starts the always-warm verification daemon
(:mod:`repro.serve`)::

    stg-check serve --port 8642 --jobs 4
    stg-check serve --port 0 --state-dir .repro-serve   # free port
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import sys
from typing import List, Optional

from repro import api, obs
from repro.core.encoding import ORDERING_STRATEGIES
from repro.sg.builder import infer_initial_values
from repro.stg.generators import FIXED_EXAMPLES, SCALABLE_FAMILIES, build_example
from repro.stg.parser import read_g_file
from repro.stg.validate import validate_structure


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stg-check",
        description="Check Signal Transition Graph implementability "
                    "(symbolic BDD traversal, Kondratyev et al. 1995).")
    parser.add_argument(
        "specification",
        help="path to a .g file, the name of a built-in example "
             f"({', '.join(sorted(FIXED_EXAMPLES))}; scalable families: "
             f"{', '.join(sorted(SCALABLE_FAMILIES))}), or the "
             "'batch-check' mode sweeping the benchmark corpus")
    parser.add_argument("--scale", type=int, default=None,
                        help="scale parameter for scalable families")
    parser.add_argument("--engine", default=None, metavar="NAME",
                        help="verification engine (any registered engine; "
                             "default: symbolic)")
    parser.add_argument("--explicit", action="store_true",
                        help="shorthand for --engine explicit")
    parser.add_argument("--ordering", choices=list(ORDERING_STRATEGIES),
                        default="force",
                        help="BDD variable ordering strategy (symbolic only)")
    parser.add_argument("--checks", default=None, metavar="NAMES",
                        help="comma-separated subset of property checks to "
                             f"run ({', '.join(api.available_checks())}); "
                             "default: the engine's full default set")
    parser.add_argument("--arbitration", nargs="*", default=[],
                        metavar="PLACE",
                        help="places to treat as arbitration points "
                             "(validated against the STG's actual places)")
    parser.add_argument("--bdd-cache", metavar="DIR", dest="bdd_cache",
                        default=None,
                        help="persist the reachable-state BDD under DIR "
                             "(symbolic engine); a later run on the same "
                             "specification -- e.g. with a different "
                             "--checks selection -- loads it and skips "
                             "the traversal entirely")
    parser.add_argument("--base", metavar="REF", default=None,
                        help="incremental re-check: warm-start the "
                             "traversal from the cached base entry REF "
                             "(a .g file path, a benchmark-corpus entry "
                             "name, or a 64-hex reachability "
                             "fingerprint); requires --bdd-cache, and the "
                             "summary reports the reuse tier -- verdicts "
                             "are byte-identical to a cold run")
    parser.add_argument("--stable-json", metavar="PATH",
                        dest="stable_json_path", default=None,
                        help="write the timing- and provenance-free "
                             "stable view of this check to PATH ('-' for "
                             "stdout): byte-identical across cold and "
                             "--base warm-started runs of the same "
                             "specification")
    parser.add_argument("--trace", metavar="DIR", dest="trace_dir",
                        default=None,
                        help="write a JSONL trace of the run (spans for "
                             "parse/encoding/ordering/traversal/checks/"
                             "synthesis, per-iteration frontier sizes, "
                             "BDD cache deltas) under DIR; inspect with "
                             "tools/trace_report.py")
    parser.add_argument("--infer-initial-values", action="store_true",
                        help="infer missing initial signal values before "
                             "checking")
    parser.add_argument("--validate-only", action="store_true",
                        help="only run the structural validation")
    parser.add_argument("--liveness", action="store_true",
                        help="additionally report deadlocks and reversibility "
                             "(symbolic engine only)")
    parser.add_argument("--synthesize", action="store_true",
                        help="derive and print the complex-gate equations "
                             "when the specification is gate-implementable")
    return parser


def build_batch_check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stg-check batch-check",
        description="Sweep the benchmark corpus (repro.corpus) through the "
                    "parallel sharded runner (repro.runner) and validate "
                    "every per-property verdict against the registry's "
                    "expected metadata.")
    parser.add_argument("names", nargs="*", metavar="NAME",
                        help="corpus entries to check (default: all)")
    parser.add_argument("--list", action="store_true", dest="list_entries",
                        help="list the corpus entries with their expected-"
                             "verdict metadata and exit (add --json PATH "
                             "for a machine-readable listing)")
    parser.add_argument("--engine", default="symbolic", metavar="NAME",
                        help="verification engine (any registered engine; "
                             "default: symbolic)")
    parser.add_argument("--ordering", choices=list(ORDERING_STRATEGIES),
                        default="force",
                        help="BDD variable ordering strategy (symbolic only)")
    parser.add_argument("--checks", default=None, metavar="NAMES",
                        help="comma-separated subset of property checks to "
                             "run per entry (default: every check the "
                             "engine supports); the subset is batched over "
                             "each entry's shared intermediates and keys "
                             "the result cache")
    parser.add_argument("--family", action="append", default=[],
                        metavar="FAMILY:SCALES", dest="families",
                        help="additionally sweep a scalable family over a "
                             "scale range, e.g. random_ring:1-100 or "
                             "muller_pipeline:6 (repeatable)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="number of concurrent workers (default: 1)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="execution backend: process (worker pool, the "
                             "default; the only one enforcing --timeout), "
                             "thread, serial, or any backend registered "
                             "via repro.runner.backends.register; all "
                             "backends produce byte-identical stable "
                             "results")
    parser.add_argument("--shard", default="0/1", metavar="I/N",
                        help="run only shard I of an N-way round-robin "
                             "partition of the sweep (default: 0/1)")
    parser.add_argument("--leases", metavar="DIR", dest="lease_dir",
                        default=None,
                        help="coordinate the sweep through work-stealing "
                             "leases journalled under DIR "
                             "(repro.fabric): entries are claimed "
                             "longest-job-first, leases renew while the "
                             "entry computes, and an expired lease (dead "
                             "or wedged worker) makes its entry "
                             "claimable again; retryable failures are "
                             "re-issued per --retry; SIGINT/SIGTERM "
                             "drain gracefully keeping finished work")
    parser.add_argument("--retry", metavar="SPEC", dest="retry_spec",
                        default=None,
                        help="retry policy for the lease coordinator "
                             "(requires --leases): comma-separated "
                             "attempts=N, base=SECONDS, max=SECONDS, "
                             "multiplier=X, jitter=F, seed=N, e.g. "
                             "attempts=4,base=0.05,max=1; error and "
                             "timeout records retry with seeded-jitter "
                             "exponential backoff, verdicts never do "
                             "(default: attempts=3)")
    parser.add_argument("--inject-faults", metavar="SPEC",
                        dest="fault_spec", default=None,
                        help="deterministic chaos testing (requires "
                             "--leases): comma-separated rates per fault "
                             "kind plus seed=N, e.g. crash=0.2,hang=0.1,"
                             "truncate=0.1,stall=0.1,seed=7; injected "
                             "worker crashes, entry hangs, torn store "
                             "writes and lease-renewal stalls are all "
                             "recovered by retry/re-issue -- stable JSON "
                             "stays byte-identical to a clean run")
    parser.add_argument("--lease-duration", type=float, default=30.0,
                        metavar="SECONDS", dest="lease_duration",
                        help="validity window of one lease claim/renewal "
                             "(requires --leases; default: 30); in-flight "
                             "leases renew every quarter duration")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-entry timeout; needs the process backend "
                             "with --jobs >= 2 to be enforceable (the "
                             "worker is terminated)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persist per-entry results under DIR and skip "
                             "entries whose content and engine config are "
                             "unchanged (reported as 'cached')")
    parser.add_argument("--bdd-cache", metavar="DIR", dest="bdd_cache",
                        default=None,
                        help="persist each entry's reachable-state BDD "
                             "under DIR (repro.cache.BDDStore): matching "
                             "entries skip the traversal on later sweeps "
                             "-- even ones asking different --checks -- "
                             "and family instances warm-start from the "
                             "nearest smaller stored scale; verdicts are "
                             "byte-identical with and without the store")
    parser.add_argument("--trace", metavar="DIR", dest="trace_dir",
                        default=None,
                        help="write one JSONL trace file per swept entry "
                             "(keyed by the entry's content fingerprint) "
                             "under DIR; an execution knob like "
                             "--bdd-cache: excluded from fingerprints, "
                             "stable JSON is byte-identical with and "
                             "without it; aggregate the files with "
                             "tools/trace_report.py")
    parser.add_argument("--profile", type=int, default=None, metavar="N",
                        help="after the sweep, print the N slowest entries "
                             "with their traversal statistics (any "
                             "backend; durations of cached entries are "
                             "the original compute times)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir: recompute everything and "
                             "do not touch the store")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep from the partial "
                             "state in --cache-dir: repair the store file "
                             "if the kill truncated it, then compute only "
                             "the entries whose fingerprints are missing "
                             "(the rest report as 'cached')")
    parser.add_argument("--merge", nargs="+", metavar="DIR",
                        dest="merge_dirs", default=None,
                        help="merge mode: combine the shard run stores in "
                             "the given directories into --cache-dir and "
                             "report the merged sweep instead of executing "
                             "anything (verdict records win fingerprint "
                             "conflicts; per-entry provenance is kept)")
    parser.add_argument("--cache-gc", metavar="SPEC", dest="cache_gc",
                        default=None,
                        help="after the sweep (or merge), evict old records "
                             "from the --cache-dir store; SPEC is "
                             "entries=N and/or age=AGE[s|m|h|d], e.g. "
                             "entries=1000,age=7d")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        default=None,
                        help="write the full sweep result (same schema as "
                             "the run store, header records engine/backend/"
                             "shard) as JSON to PATH, or '-' for stdout; "
                             "with --list, write the corpus listing instead")
    parser.add_argument("--stable-json", metavar="PATH",
                        dest="stable_json_path", default=None,
                        help="write the timing- and provenance-free stable "
                             "view of the sweep result to PATH ('-' for "
                             "stdout): byte-identical across backends, job "
                             "counts, cache states and shard merges")
    parser.add_argument("--write-dir", metavar="DIR", default=None,
                        help="additionally materialise the .g files of the "
                             "checked entries under DIR (shard- and "
                             "family-aware: exactly the swept tasks)")
    return parser


def load_specification(name: str, scale: Optional[int]):
    """Load a ``.g`` file or instantiate a built-in example.

    Anything that looks like a path (a ``.g`` suffix or a directory
    separator) is treated as a file even when missing, so the user gets
    the parser's corpus-aware not-found message instead of
    "unknown example".
    """
    looks_like_path = (name.endswith(".g") or os.sep in name
                       or bool(os.altsep and os.altsep in name))
    if os.path.exists(name) or looks_like_path:
        return read_g_file(name)
    return build_example(name, scale)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``stg-check`` console script."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "batch-check":
        return batch_check_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve import serve_main

        return serve_main(argv[1:])
    parser = build_argument_parser()
    arguments = parser.parse_args(argv)
    try:
        stg = load_specification(arguments.specification, arguments.scale)
    except Exception as error:  # pragma: no cover - user input path
        parser.error(str(error))
        return 2

    validation = validate_structure(stg)
    if validation.issues:
        print(validation)
    if arguments.validate_only:
        return 0 if validation.valid else 1
    if not validation.valid:
        print("structural validation failed; aborting the behavioural check")
        return 1

    if arguments.infer_initial_values or not stg.has_complete_initial_values():
        stg.set_initial_values(infer_initial_values(stg))

    if (arguments.explicit and arguments.engine
            and arguments.engine != "explicit"):
        parser.error(f"--explicit conflicts with "
                     f"--engine {arguments.engine}")
        return 2
    engine = arguments.engine or (
        "explicit" if arguments.explicit else "symbolic")
    try:
        config = api.EngineConfig(
            engine=engine,
            ordering=arguments.ordering,
            arbitration_places=tuple(arguments.arbitration),
            bdd_cache_dir=arguments.bdd_cache,
            trace_dir=arguments.trace_dir)
    except api.ApiError as error:
        parser.error(str(error))  # exits with status 2
        return 2

    base = arguments.base
    if base is not None:
        if not arguments.bdd_cache:
            parser.error("--base requires --bdd-cache (the store the "
                         "base entry lives in)")
            return 2
        if os.path.exists(base) or base.endswith(".g"):
            try:
                base = read_g_file(base)
            except Exception as error:
                parser.error(f"--base: {error}")
                return 2
        # otherwise: a corpus entry name or raw fingerprint -- the
        # facade resolves (and rejects) those.

    # The tracing context covers the whole run -- main check, liveness
    # extras and synthesis all land in one trace file under --trace.
    with obs.tracing(config.trace_dir, name=stg.name,
                     meta={"engine": engine}):
        try:
            outcome = api.run(stg, config, checks=arguments.checks,
                              base=base)
        except api.ApiError as error:
            parser.error(str(error))  # exits with status 2
            return 2
        report = outcome.report
        print(report.summary())

        if arguments.liveness or arguments.synthesize:
            _run_extras(stg, arguments, config, report, outcome.pipeline)

    if arguments.stable_json_path:
        _write_json(_stable_check_dict(stg, config, arguments.checks,
                                       outcome),
                    arguments.stable_json_path)
    if arguments.checks is not None:
        # A subset run classifies as 'partial' (the class is undecided);
        # succeed iff every verdict that was actually checked holds.
        return 0 if all(v.holds for v in report.verdicts) else 1
    return 0 if report.io_implementable else 1


def _stable_check_dict(stg, config: api.EngineConfig, checks, outcome):
    """The stable view of one single-specification check.

    Shaped exactly like one entry of a ``batch-check --stable-json``
    sweep (an :class:`~repro.runner.results.EntryResult` stable dict,
    keyed by the task content fingerprint), so cold runs, ``--base``
    warm-started runs and daemon verdicts of the same specification all
    byte-compare.  ``base_fingerprint`` is an execution knob -- it never
    reaches the fingerprint.
    """
    from repro.api.checks import resolve_checks
    from repro.engines import get as get_engine
    from repro.runner.plan import SweepTask
    from repro.runner.results import EntryResult
    from repro.stg.writer import to_g_string

    # None stays None (the engine default set), matching how
    # batch-check builds its tasks -- an explicit subset resolves to
    # the same tuple the sweep planner would fingerprint.
    selected = None if checks is None else resolve_checks(
        checks, engine=config.engine,
        supported=get_engine(config.engine).checks)
    task = SweepTask(name=stg.name, g_text=to_g_string(stg),
                     config=config, checks=selected)
    result = EntryResult(name=stg.name, status="ok", engine=config.engine,
                         fingerprint=task.fingerprint,
                         report=outcome.report.to_dict(),
                         traversal=outcome.traversal)
    return result.stable_dict()


def _run_extras(stg, arguments, config: api.EngineConfig,
                report, pipeline) -> None:
    """Optional liveness analysis and logic derivation (symbolic engine).

    When the main check already ran symbolically its pipeline is reused,
    so the reachable-state BDD is not recomputed; after a run on another
    engine a fresh symbolic pipeline (one traversal) is dispatched
    through the facade with an empty check selection -- the chain builds
    lazily on first access.
    """
    from repro.synthesis import synthesize_complex_gates
    from repro.synthesis.functions import SynthesisError

    if pipeline is None:
        symbolic = config.with_overrides(engine="symbolic")
        pipeline = api.run(stg, symbolic, checks=()).pipeline
    if arguments.liveness:
        print(f"  liveness: {pipeline.deadlock_freedom()}; "
              f"{pipeline.reversibility()}")
    if arguments.synthesize:
        if not report.gate_implementable:
            print("  synthesis skipped: the specification is not "
                  "gate-implementable")
            return
        try:
            gates = synthesize_complex_gates(
                pipeline.encoding, pipeline.reached, pipeline.charfun)
        except SynthesisError as error:
            print(f"  synthesis failed: {error}")
            return
        print("  derived complex-gate equations:")
        for gate in gates.values():
            print(f"    {gate}")


# ----------------------------------------------------------------------
# batch-check: sweep the benchmark corpus through the runner
# ----------------------------------------------------------------------
def batch_check_main(argv: List[str]) -> int:
    """Thin front-end over :mod:`repro.runner` for corpus sweeps."""
    from repro import corpus
    from repro.runner import (
        PlanError,
        RunStore,
        ShardSpec,
        SweepPlan,
        SweepRunner,
        backends,
        parse_family_spec,
        parse_gc_spec,
    )

    parser = build_batch_check_parser()
    arguments = parser.parse_args(argv)

    if arguments.list_entries:
        if arguments.json_path:
            _write_json(_corpus_listing_dict(), arguments.json_path)
        else:
            _print_corpus_listing()
        return 0

    if (arguments.resume or arguments.merge_dirs or arguments.cache_gc) \
            and not arguments.cache_dir:
        parser.error("--resume, --merge and --cache-gc require --cache-dir")
    if arguments.no_cache and (arguments.resume or arguments.merge_dirs
                               or arguments.cache_gc):
        parser.error("--no-cache conflicts with --resume/--merge/--cache-gc")
    for directory in (arguments.merge_dirs or ()):
        if not os.path.isdir(directory):
            parser.error(f"--merge: no such run-store directory "
                         f"{directory!r}")
    if arguments.lease_dir is None:
        if arguments.retry_spec is not None:
            parser.error("--retry requires --leases (the retry policy "
                         "belongs to the lease coordinator)")
        if arguments.fault_spec is not None:
            parser.error("--inject-faults requires --leases (only the "
                         "lease coordinator recovers injected faults)")
    elif arguments.merge_dirs is not None:
        parser.error("--leases conflicts with --merge (a merge executes "
                     "nothing, so there is nothing to lease)")

    retry_policy = None
    if arguments.lease_dir is not None:
        from repro.fabric import RetrySpecError, parse_retry_spec

        try:
            retry_policy = (parse_retry_spec(arguments.retry_spec)
                            if arguments.retry_spec is not None else None)
        except RetrySpecError as error:
            parser.error(f"--retry: {error}")
        if arguments.lease_duration <= 0:
            parser.error(f"--lease-duration must be positive, got "
                         f"{arguments.lease_duration}")

    try:
        config = api.EngineConfig(
            engine=arguments.engine,
            ordering=arguments.ordering,
            timeout=arguments.timeout,
            bdd_cache_dir=arguments.bdd_cache,
            trace_dir=arguments.trace_dir,
            fault_plan=arguments.fault_spec)
        checks = None
        if arguments.checks is not None:
            from repro.api.checks import resolve_checks

            checks = resolve_checks(arguments.checks,
                                    engine=arguments.engine)
        selection = [_resolve_entry(name, parser).name
                     for name in (arguments.names or corpus.names())]
        plan = SweepPlan(
            names=selection,
            families=[parse_family_spec(spec)
                      for spec in arguments.families],
            config=config,
            checks=checks,
            jobs=arguments.jobs,
            shard=ShardSpec.parse(arguments.shard),
            backend=arguments.backend)
        if arguments.backend is not None:
            backends.get(arguments.backend)  # unknown name -> usage error
        gc_keywords = (parse_gc_spec(arguments.cache_gc)
                       if arguments.cache_gc else None)
        plan.tasks()  # expand now: bad family names/scales become usage
    except (PlanError, api.ApiError, ValueError) as error:
        parser.error(str(error))  # errors here, not tracebacks mid-sweep
        return 2

    if arguments.write_dir:
        _write_swept_tasks(plan, arguments.write_dir)

    store = None
    if arguments.cache_dir and not arguments.no_cache:
        store = RunStore(arguments.cache_dir)

    coordinator = None
    if arguments.merge_dirs is not None:
        sweep = _merge_sweep(store, arguments.merge_dirs, plan)
    else:
        if arguments.resume and store.skipped_lines:
            store.compact()  # repair what the killed sweep left behind
        if arguments.lease_dir is not None:
            from repro.fabric import LeaseCoordinator

            coordinator = LeaseCoordinator(
                plan, leases=arguments.lease_dir, store=store,
                policy=retry_policy,
                lease_duration=arguments.lease_duration)
            sweep = coordinator.run()
        else:
            sweep = SweepRunner(plan, store=store).run()

    width = max((len(result.name) for result in sweep), default=1)
    for result in sweep:
        _print_entry_result(result, width)
    print(f"batch-check: {len(sweep)} entries, "
          f"{sweep.matching} matching the registry metadata, "
          f"{sweep.mismatching} mismatching, {sweep.errors} errors, "
          f"{sweep.cached} cached "
          f"[engine: {plan.engine}, backend: {sweep.backend}, "
          f"jobs: {plan.jobs}, shard: {plan.shard}]")
    if coordinator is not None:
        _print_fabric_summary(coordinator)

    if arguments.profile:
        _print_profile(sweep, arguments.profile)

    if gc_keywords:
        evicted = store.gc(**gc_keywords)
        print(f"cache-gc: evicted {evicted} of {evicted + len(store)} "
              f"records from {store.directory}")

    if arguments.json_path:
        _write_json(sweep.to_json_dict(), arguments.json_path)
    if arguments.stable_json_path:
        _write_json(sweep.stable_json_dict(), arguments.stable_json_path)
    return 0 if sweep.succeeded else 1


def _merge_sweep(store, merge_dirs: List[str], plan):
    """The ``--merge`` verb: combine shard stores, report the merged sweep.

    Every source store is merged into ``store`` (the ``--cache-dir``
    destination), then the plan's tasks are answered entirely from the
    merged records -- nothing is executed.  Entries no shard computed (or
    that only failed) surface as ``error`` results, so a merge of
    incomplete shards fails loudly instead of silently shrinking the
    sweep.  Each served entry keeps the provenance stamped by the shard
    that computed it.
    """
    from repro.runner import EntryResult, SweepResult

    adopted_total = 0
    for directory in merge_dirs:
        adopted = store.merge(directory, compact=False)
        adopted_total += adopted
        print(f"merge: adopted {adopted} records from {directory}")
    if adopted_total:
        store.compact()  # once, after every source is in

    results = []
    for task in plan.shard_tasks():
        hit = store.lookup(task.name, task.fingerprint)
        if hit is None:
            hit = EntryResult(
                name=task.name, status="error", engine=task.engine,
                fingerprint=task.fingerprint,
                error="no verdict for this fingerprint in the merged "
                      "stores (shard missing or entry failed everywhere)")
        results.append(hit)
    return SweepResult(engine=plan.engine, jobs=plan.jobs,
                       shard=str(plan.shard), backend="merge",
                       results=results)


def _print_fabric_summary(coordinator) -> None:
    """One line of lease-fabric bookkeeping after a ``--leases`` sweep.

    Scheduling telemetry only (claims, steals, retries); the full
    snapshot lands in ``metrics.json`` inside the lease directory.
    """
    counters = {name: snap.get("value") or 0
                for name, snap in coordinator.metrics.snapshot().items()}
    retries = sum(value for name, value in counters.items()
                  if name.startswith("fabric.retry."))
    print(f"fabric: {counters.get('fabric.lease.claims', 0)} leases "
          f"claimed, {counters.get('fabric.lease.reclaims', 0)} stolen "
          f"after expiry, {retries} re-issues "
          f"[holder: {coordinator.holder}, "
          f"drained: {'yes' if coordinator.draining else 'no'}]")


def _write_json(payload: dict, path: str) -> None:
    """Write a JSON payload to ``path`` (``-`` = stdout)."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _write_swept_tasks(plan, directory: str) -> None:
    """Materialise the ``.g`` text of exactly the swept tasks.

    Task-based (not registry-based), so family instances are included and
    a ``--shard`` run writes only its own slice.
    """
    os.makedirs(directory, exist_ok=True)
    for task in plan.shard_tasks():
        path = os.path.join(directory, f"{task.name}.g")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(task.g_text)


def _resolve_entry(name: str, parser: argparse.ArgumentParser):
    """Corpus lookup with a did-you-mean suggestion on unknown names.

    ``parser.error`` exits with status 2, matching argparse's own usage
    errors.
    """
    from repro import corpus

    try:
        return corpus.entry(name)
    except corpus.CorpusError as error:
        close = difflib.get_close_matches(name, corpus.names(), n=3)
        suggestion = f"; did you mean: {', '.join(close)}?" if close else ""
        parser.error(f"{error}{suggestion}")  # exits with status 2


def _corpus_listing_dict() -> dict:
    """The machine-readable ``--list --json`` payload.

    One record per corpus entry (name, source, family/scale provenance,
    interface sizes, expected verdicts) plus the scalable families a
    ``--family`` sweep can draw from -- so external tooling reads this
    instead of scraping the text table.
    """
    from repro import corpus
    from repro.corpus import FAMILIES

    return {
        "entries": [corpus.entry(name).listing_dict()
                    for name in corpus.names()],
        "families": [
            {"name": family.name,
             "expected": {key: _json_metadata_value(value)
                          for key, value in family.expected.items()}}
            for family in FAMILIES.values()],
    }


def _json_metadata_value(value: object) -> object:
    return str(value) if not isinstance(value, (bool, int, str)) else value


def _print_corpus_listing() -> None:
    """One entry per block: name, source, expected verdicts, description."""
    from repro import corpus

    width = max(len(name) for name in corpus.names())
    for name in corpus.names():
        item = corpus.entry(name)
        expected = " ".join(
            f"{key}={_metadata_value(value)}"
            for key, value in item.expected.items())
        print(f"{name:<{width}}  [{item.source}] {item.description}")
        print(f"{'':<{width}}  expected: {expected}")


def _metadata_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def _print_profile(sweep, count: int) -> None:
    """The ``--profile N`` report: the N slowest entries with their stats.

    Backend-independent: it reads the per-entry durations and traversal
    statistics every backend records, formatted through
    :func:`repro.obs.report.format_traversal` (the same stats layer the
    trace reports use).  A cached entry shows the duration of the run
    that originally computed it.
    """
    from repro.obs.report import format_traversal

    slowest = sorted(sweep, key=lambda result: result.duration,
                     reverse=True)[:max(count, 0)]
    if not slowest:
        return
    width = max(len(result.name) for result in slowest)
    print(f"profile: {len(slowest)} slowest entries")
    for result in slowest:
        line = (f"  {result.name:<{width}}  {result.duration:8.3f}s "
                f"[{result.display_status}]")
        formatted = format_traversal(result.traversal)
        if formatted:
            line += f" {formatted}"
        print(line)


def _print_entry_result(result, width: int) -> None:
    report = result.report_object()
    if report is None:  # error or timeout: no verdicts to show
        print(f"{result.name:<{width}}  "
              f"[{result.display_status}] {result.error}")
        return
    verdicts = (f"states={report.num_states:<6d} "
                f"consistent={_flag(report.consistent)} "
                f"persistent={_flag(report.output_persistent)} "
                f"csc={_flag(report.csc)} "
                f"deadlock_free={_flag(report.deadlock_free)}")
    status = ("MISMATCH" if result.status == "mismatch"
              else result.display_status)
    print(f"{result.name:<{width}}  {verdicts} "
          f"{str(report.classification):<38} [{status}]")
    for problem in result.mismatches:
        print(f"{'':<{width}}    {problem}")


def _flag(value: Optional[bool]) -> str:
    return "-" if value is None else ("yes" if value else "no ")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
