"""Command-line interface: ``stg-check`` (also ``python -m repro``).

Check the implementability of an STG given as a ``.g`` file or as one of
the built-in examples, using either the symbolic (default) or the explicit
engine::

    stg-check handshake
    stg-check muller_pipeline --scale 8
    stg-check path/to/spec.g --explicit
    stg-check mutex_element --arbitration p_me

The ``batch-check`` mode sweeps the whole benchmark corpus
(:mod:`repro.corpus`) in one invocation and validates every per-property
verdict against the registry's expected metadata::

    stg-check batch-check                 # every corpus entry
    stg-check batch-check vme_read mutex_element
    stg-check batch-check --engine explicit
    stg-check batch-check --list
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.checker import ImplementabilityChecker
from repro.core.encoding import ORDERING_STRATEGIES
from repro.core.pipeline import VerificationPipeline
from repro.sg.builder import infer_initial_values
from repro.sg.checker import ExplicitChecker
from repro.stg.generators import FIXED_EXAMPLES, SCALABLE_FAMILIES, build_example
from repro.stg.parser import read_g_file
from repro.stg.validate import validate_structure


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stg-check",
        description="Check Signal Transition Graph implementability "
                    "(symbolic BDD traversal, Kondratyev et al. 1995).")
    parser.add_argument(
        "specification",
        help="path to a .g file, the name of a built-in example "
             f"({', '.join(sorted(FIXED_EXAMPLES))}; scalable families: "
             f"{', '.join(sorted(SCALABLE_FAMILIES))}), or the "
             "'batch-check' mode sweeping the benchmark corpus")
    parser.add_argument("--scale", type=int, default=None,
                        help="scale parameter for scalable families")
    parser.add_argument("--explicit", action="store_true",
                        help="use the explicit enumeration engine instead "
                             "of the symbolic one")
    parser.add_argument("--ordering", choices=list(ORDERING_STRATEGIES),
                        default="force",
                        help="BDD variable ordering strategy (symbolic only)")
    parser.add_argument("--arbitration", nargs="*", default=[],
                        metavar="PLACE",
                        help="places to treat as arbitration points")
    parser.add_argument("--infer-initial-values", action="store_true",
                        help="infer missing initial signal values before "
                             "checking")
    parser.add_argument("--validate-only", action="store_true",
                        help="only run the structural validation")
    parser.add_argument("--liveness", action="store_true",
                        help="additionally report deadlocks and reversibility "
                             "(symbolic engine only)")
    parser.add_argument("--synthesize", action="store_true",
                        help="derive and print the complex-gate equations "
                             "when the specification is gate-implementable")
    return parser


def build_batch_check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stg-check batch-check",
        description="Sweep the benchmark corpus (repro.corpus) and validate "
                    "every per-property verdict against the registry's "
                    "expected metadata.")
    parser.add_argument("names", nargs="*", metavar="NAME",
                        help="corpus entries to check (default: all)")
    parser.add_argument("--list", action="store_true", dest="list_entries",
                        help="list the corpus entries and exit")
    parser.add_argument("--engine", choices=["symbolic", "explicit"],
                        default="symbolic",
                        help="verification engine (default: symbolic)")
    parser.add_argument("--ordering", choices=list(ORDERING_STRATEGIES),
                        default="force",
                        help="BDD variable ordering strategy (symbolic only)")
    parser.add_argument("--write-dir", metavar="DIR", default=None,
                        help="additionally materialise the .g files of the "
                             "checked entries under DIR")
    return parser


def load_specification(name: str, scale: Optional[int]):
    """Load a ``.g`` file or instantiate a built-in example.

    Anything that looks like a path (a ``.g`` suffix or a directory
    separator) is treated as a file even when missing, so the user gets
    the parser's corpus-aware not-found message instead of
    "unknown example".
    """
    looks_like_path = (name.endswith(".g") or os.sep in name
                       or bool(os.altsep and os.altsep in name))
    if os.path.exists(name) or looks_like_path:
        return read_g_file(name)
    return build_example(name, scale)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``stg-check`` console script."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "batch-check":
        return batch_check_main(argv[1:])
    parser = build_argument_parser()
    arguments = parser.parse_args(argv)
    try:
        stg = load_specification(arguments.specification, arguments.scale)
    except Exception as error:  # pragma: no cover - user input path
        parser.error(str(error))
        return 2

    validation = validate_structure(stg)
    if validation.issues:
        print(validation)
    if arguments.validate_only:
        return 0 if validation.valid else 1
    if not validation.valid:
        print("structural validation failed; aborting the behavioural check")
        return 1

    if arguments.infer_initial_values or not stg.has_complete_initial_values():
        stg.set_initial_values(infer_initial_values(stg))

    if arguments.explicit:
        checker = ExplicitChecker(stg,
                                  arbitration_places=arguments.arbitration)
    else:
        checker = ImplementabilityChecker(
            stg, arbitration_places=arguments.arbitration,
            ordering=arguments.ordering)
    report = checker.check()
    print(report.summary())
    pipeline = getattr(checker, "pipeline", None)

    if arguments.liveness or arguments.synthesize:
        _run_extras(stg, arguments, report, pipeline)
    return 0 if report.io_implementable else 1


def _run_extras(stg, arguments, report,
                pipeline: Optional[VerificationPipeline] = None) -> None:
    """Optional liveness analysis and logic derivation (symbolic engine).

    When the main check already ran symbolically its pipeline is reused,
    so the reachable-state BDD is not recomputed; after an explicit-engine
    run a fresh pipeline (one traversal) is built.
    """
    from repro.synthesis import synthesize_complex_gates
    from repro.synthesis.functions import SynthesisError

    if pipeline is None:
        pipeline = VerificationPipeline(
            stg, arbitration_places=arguments.arbitration,
            ordering=arguments.ordering)
    if arguments.liveness:
        print(f"  liveness: {pipeline.deadlock_freedom()}; "
              f"{pipeline.reversibility()}")
    if arguments.synthesize:
        if not report.gate_implementable:
            print("  synthesis skipped: the specification is not "
                  "gate-implementable")
            return
        try:
            gates = synthesize_complex_gates(
                pipeline.encoding, pipeline.reached, pipeline.charfun)
        except SynthesisError as error:
            print(f"  synthesis failed: {error}")
            return
        print("  derived complex-gate equations:")
        for gate in gates.values():
            print(f"    {gate}")


# ----------------------------------------------------------------------
# batch-check: sweep the benchmark corpus
# ----------------------------------------------------------------------
def batch_check_main(argv: List[str]) -> int:
    """Run every (selected) corpus entry and validate its metadata."""
    from repro import corpus

    parser = build_batch_check_parser()
    arguments = parser.parse_args(argv)

    if arguments.list_entries:
        width = max(len(name) for name in corpus.names())
        for name in corpus.names():
            item = corpus.entry(name)
            print(f"{name:<{width}}  [{item.source}] {item.description}")
        return 0

    try:
        selection = [corpus.entry(name).name
                     for name in (arguments.names or corpus.names())]
    except corpus.CorpusError as error:
        parser.error(str(error))
        return 2

    if arguments.write_dir:
        corpus.write_all(arguments.write_dir, selection)

    mismatching_entries = 0
    width = max(len(name) for name in selection)
    for name in selection:
        item = corpus.entry(name)
        stg = corpus.load(name)
        if arguments.engine == "explicit":
            report = ExplicitChecker(
                stg, arbitration_places=item.arbitration_places).check()
        else:
            pipeline = VerificationPipeline(
                stg, arbitration_places=item.arbitration_places,
                ordering=arguments.ordering)
            report = pipeline.run(include_liveness=True)
        mismatches = item.mismatches(report)
        verdicts = (f"states={report.num_states:<6d} "
                    f"consistent={_flag(report.consistent)} "
                    f"persistent={_flag(report.output_persistent)} "
                    f"csc={_flag(report.csc)} "
                    f"deadlock_free={_flag(report.deadlock_free)}")
        status = "ok" if not mismatches else "MISMATCH"
        print(f"{name:<{width}}  {verdicts} "
              f"{str(report.classification):<38} [{status}]")
        for problem in mismatches:
            print(f"{'':<{width}}    {problem}")
        if mismatches:
            mismatching_entries += 1
    total = len(selection)
    print(f"batch-check: {total} entries, "
          f"{total - mismatching_entries} matching the registry metadata, "
          f"{mismatching_entries} mismatching "
          f"[engine: {arguments.engine}]")
    return 0 if mismatching_entries == 0 else 1


def _flag(value: Optional[bool]) -> str:
    return "-" if value is None else ("yes" if value else "no ")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
