"""Command-line interface: ``stg-check``.

Check the implementability of an STG given as a ``.g`` file or as one of
the built-in examples, using either the symbolic (default) or the explicit
engine::

    stg-check handshake
    stg-check muller_pipeline --scale 8
    stg-check path/to/spec.g --explicit
    stg-check mutex_element --arbitration p_me
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.checker import ImplementabilityChecker
from repro.core.encoding import ORDERING_STRATEGIES
from repro.sg.builder import infer_initial_values
from repro.sg.checker import ExplicitChecker
from repro.stg.generators import FIXED_EXAMPLES, SCALABLE_FAMILIES, build_example
from repro.stg.parser import read_g_file
from repro.stg.validate import validate_structure


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stg-check",
        description="Check Signal Transition Graph implementability "
                    "(symbolic BDD traversal, Kondratyev et al. 1995).")
    parser.add_argument(
        "specification",
        help="path to a .g file or the name of a built-in example "
             f"({', '.join(sorted(FIXED_EXAMPLES))}; scalable families: "
             f"{', '.join(sorted(SCALABLE_FAMILIES))})")
    parser.add_argument("--scale", type=int, default=None,
                        help="scale parameter for scalable families")
    parser.add_argument("--explicit", action="store_true",
                        help="use the explicit enumeration engine instead "
                             "of the symbolic one")
    parser.add_argument("--ordering", choices=list(ORDERING_STRATEGIES),
                        default="force",
                        help="BDD variable ordering strategy (symbolic only)")
    parser.add_argument("--arbitration", nargs="*", default=[],
                        metavar="PLACE",
                        help="places to treat as arbitration points")
    parser.add_argument("--infer-initial-values", action="store_true",
                        help="infer missing initial signal values before "
                             "checking")
    parser.add_argument("--validate-only", action="store_true",
                        help="only run the structural validation")
    parser.add_argument("--liveness", action="store_true",
                        help="additionally report deadlocks and reversibility "
                             "(symbolic engine only)")
    parser.add_argument("--synthesize", action="store_true",
                        help="derive and print the complex-gate equations "
                             "when the specification is gate-implementable")
    return parser


def load_specification(name: str, scale: Optional[int]):
    """Load a ``.g`` file or instantiate a built-in example."""
    if os.path.exists(name):
        return read_g_file(name)
    return build_example(name, scale)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``stg-check`` console script."""
    parser = build_argument_parser()
    arguments = parser.parse_args(argv)
    try:
        stg = load_specification(arguments.specification, arguments.scale)
    except Exception as error:  # pragma: no cover - user input path
        parser.error(str(error))
        return 2

    validation = validate_structure(stg)
    if validation.issues:
        print(validation)
    if arguments.validate_only:
        return 0 if validation.valid else 1
    if not validation.valid:
        print("structural validation failed; aborting the behavioural check")
        return 1

    if arguments.infer_initial_values or not stg.has_complete_initial_values():
        stg.set_initial_values(infer_initial_values(stg))

    if arguments.explicit:
        checker = ExplicitChecker(stg,
                                  arbitration_places=arguments.arbitration)
    else:
        checker = ImplementabilityChecker(
            stg, arbitration_places=arguments.arbitration,
            ordering=arguments.ordering)
    report = checker.check()
    print(report.summary())

    if arguments.liveness or arguments.synthesize:
        _run_extras(stg, arguments, report)
    return 0 if report.io_implementable else 1


def _run_extras(stg, arguments, report) -> None:
    """Optional liveness analysis and logic derivation (symbolic engine)."""
    from repro.core.deadlock import check_deadlock_freedom, check_reversibility
    from repro.core.encoding import SymbolicEncoding
    from repro.core.image import SymbolicImage
    from repro.core.traversal import symbolic_traversal
    from repro.synthesis import synthesize_complex_gates
    from repro.synthesis.functions import SynthesisError

    encoding = SymbolicEncoding(stg, ordering=arguments.ordering)
    image = SymbolicImage(encoding)
    reached, _ = symbolic_traversal(encoding, image=image)
    if arguments.liveness:
        print(f"  liveness: "
              f"{check_deadlock_freedom(encoding, reached, image.charfun)}; "
              f"{check_reversibility(encoding, reached, image)}")
    if arguments.synthesize:
        if not report.gate_implementable:
            print("  synthesis skipped: the specification is not "
                  "gate-implementable")
            return
        try:
            gates = synthesize_complex_gates(encoding, reached, image.charfun)
        except SynthesisError as error:
            print(f"  synthesis failed: {error}")
            return
        print("  derived complex-gate equations:")
        for gate in gates.values():
            print(f"    {gate}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
