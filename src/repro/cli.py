"""Command-line interface: ``stg-check`` (also ``python -m repro``).

Check the implementability of an STG given as a ``.g`` file or as one of
the built-in examples, using either the symbolic (default) or the explicit
engine::

    stg-check handshake
    stg-check muller_pipeline --scale 8
    stg-check path/to/spec.g --explicit
    stg-check mutex_element --arbitration p_me

The ``batch-check`` mode sweeps the benchmark corpus (:mod:`repro.corpus`)
through the sweep runner (:mod:`repro.runner`) and validates every
per-property verdict against the registry's expected metadata::

    stg-check batch-check                 # every corpus entry
    stg-check batch-check vme_read mutex_element
    stg-check batch-check --engine explicit
    stg-check batch-check --list
    stg-check batch-check --jobs 4 --cache-dir .repro-cache
    stg-check batch-check --shard 0/8 --jobs 2
    stg-check batch-check --family random_ring:1-100 --json report.json
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import sys
from typing import List, Optional

from repro.core.checker import ImplementabilityChecker
from repro.core.encoding import ORDERING_STRATEGIES
from repro.core.pipeline import VerificationPipeline
from repro.sg.builder import infer_initial_values
from repro.sg.checker import ExplicitChecker
from repro.stg.generators import FIXED_EXAMPLES, SCALABLE_FAMILIES, build_example
from repro.stg.parser import read_g_file
from repro.stg.validate import validate_structure


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stg-check",
        description="Check Signal Transition Graph implementability "
                    "(symbolic BDD traversal, Kondratyev et al. 1995).")
    parser.add_argument(
        "specification",
        help="path to a .g file, the name of a built-in example "
             f"({', '.join(sorted(FIXED_EXAMPLES))}; scalable families: "
             f"{', '.join(sorted(SCALABLE_FAMILIES))}), or the "
             "'batch-check' mode sweeping the benchmark corpus")
    parser.add_argument("--scale", type=int, default=None,
                        help="scale parameter for scalable families")
    parser.add_argument("--explicit", action="store_true",
                        help="use the explicit enumeration engine instead "
                             "of the symbolic one")
    parser.add_argument("--ordering", choices=list(ORDERING_STRATEGIES),
                        default="force",
                        help="BDD variable ordering strategy (symbolic only)")
    parser.add_argument("--arbitration", nargs="*", default=[],
                        metavar="PLACE",
                        help="places to treat as arbitration points")
    parser.add_argument("--infer-initial-values", action="store_true",
                        help="infer missing initial signal values before "
                             "checking")
    parser.add_argument("--validate-only", action="store_true",
                        help="only run the structural validation")
    parser.add_argument("--liveness", action="store_true",
                        help="additionally report deadlocks and reversibility "
                             "(symbolic engine only)")
    parser.add_argument("--synthesize", action="store_true",
                        help="derive and print the complex-gate equations "
                             "when the specification is gate-implementable")
    return parser


def build_batch_check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stg-check batch-check",
        description="Sweep the benchmark corpus (repro.corpus) through the "
                    "parallel sharded runner (repro.runner) and validate "
                    "every per-property verdict against the registry's "
                    "expected metadata.")
    parser.add_argument("names", nargs="*", metavar="NAME",
                        help="corpus entries to check (default: all)")
    parser.add_argument("--list", action="store_true", dest="list_entries",
                        help="list the corpus entries with their expected-"
                             "verdict metadata and exit")
    parser.add_argument("--engine", choices=["symbolic", "explicit"],
                        default="symbolic",
                        help="verification engine (default: symbolic)")
    parser.add_argument("--ordering", choices=list(ORDERING_STRATEGIES),
                        default="force",
                        help="BDD variable ordering strategy (symbolic only)")
    parser.add_argument("--family", action="append", default=[],
                        metavar="FAMILY:SCALES", dest="families",
                        help="additionally sweep a scalable family over a "
                             "scale range, e.g. random_ring:1-100 or "
                             "muller_pipeline:6 (repeatable)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="number of worker processes (default: 1, "
                             "in-process)")
    parser.add_argument("--shard", default="0/1", metavar="I/N",
                        help="run only shard I of an N-way round-robin "
                             "partition of the sweep (default: 0/1)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-entry timeout; needs --jobs >= 2 to be "
                             "enforceable (the worker is terminated)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persist per-entry results under DIR and skip "
                             "entries whose content and engine config are "
                             "unchanged (reported as 'cached')")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir: recompute everything and "
                             "do not touch the store")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        default=None,
                        help="write the full sweep result (same schema as "
                             "the run store) as JSON to PATH, or '-' for "
                             "stdout")
    parser.add_argument("--write-dir", metavar="DIR", default=None,
                        help="additionally materialise the .g files of the "
                             "checked entries under DIR (shard- and "
                             "family-aware: exactly the swept tasks)")
    return parser


def load_specification(name: str, scale: Optional[int]):
    """Load a ``.g`` file or instantiate a built-in example.

    Anything that looks like a path (a ``.g`` suffix or a directory
    separator) is treated as a file even when missing, so the user gets
    the parser's corpus-aware not-found message instead of
    "unknown example".
    """
    looks_like_path = (name.endswith(".g") or os.sep in name
                       or bool(os.altsep and os.altsep in name))
    if os.path.exists(name) or looks_like_path:
        return read_g_file(name)
    return build_example(name, scale)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``stg-check`` console script."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "batch-check":
        return batch_check_main(argv[1:])
    parser = build_argument_parser()
    arguments = parser.parse_args(argv)
    try:
        stg = load_specification(arguments.specification, arguments.scale)
    except Exception as error:  # pragma: no cover - user input path
        parser.error(str(error))
        return 2

    validation = validate_structure(stg)
    if validation.issues:
        print(validation)
    if arguments.validate_only:
        return 0 if validation.valid else 1
    if not validation.valid:
        print("structural validation failed; aborting the behavioural check")
        return 1

    if arguments.infer_initial_values or not stg.has_complete_initial_values():
        stg.set_initial_values(infer_initial_values(stg))

    if arguments.explicit:
        checker = ExplicitChecker(stg,
                                  arbitration_places=arguments.arbitration)
    else:
        checker = ImplementabilityChecker(
            stg, arbitration_places=arguments.arbitration,
            ordering=arguments.ordering)
    report = checker.check()
    print(report.summary())
    pipeline = getattr(checker, "pipeline", None)

    if arguments.liveness or arguments.synthesize:
        _run_extras(stg, arguments, report, pipeline)
    return 0 if report.io_implementable else 1


def _run_extras(stg, arguments, report,
                pipeline: Optional[VerificationPipeline] = None) -> None:
    """Optional liveness analysis and logic derivation (symbolic engine).

    When the main check already ran symbolically its pipeline is reused,
    so the reachable-state BDD is not recomputed; after an explicit-engine
    run a fresh pipeline (one traversal) is built.
    """
    from repro.synthesis import synthesize_complex_gates
    from repro.synthesis.functions import SynthesisError

    if pipeline is None:
        pipeline = VerificationPipeline(
            stg, arbitration_places=arguments.arbitration,
            ordering=arguments.ordering)
    if arguments.liveness:
        print(f"  liveness: {pipeline.deadlock_freedom()}; "
              f"{pipeline.reversibility()}")
    if arguments.synthesize:
        if not report.gate_implementable:
            print("  synthesis skipped: the specification is not "
                  "gate-implementable")
            return
        try:
            gates = synthesize_complex_gates(
                pipeline.encoding, pipeline.reached, pipeline.charfun)
        except SynthesisError as error:
            print(f"  synthesis failed: {error}")
            return
        print("  derived complex-gate equations:")
        for gate in gates.values():
            print(f"    {gate}")


# ----------------------------------------------------------------------
# batch-check: sweep the benchmark corpus through the runner
# ----------------------------------------------------------------------
def batch_check_main(argv: List[str]) -> int:
    """Thin front-end over :mod:`repro.runner` for corpus sweeps."""
    from repro import corpus
    from repro.runner import (
        PlanError,
        RunStore,
        ShardSpec,
        SweepPlan,
        SweepRunner,
        parse_family_spec,
    )

    parser = build_batch_check_parser()
    arguments = parser.parse_args(argv)

    if arguments.list_entries:
        _print_corpus_listing()
        return 0

    try:
        selection = [_resolve_entry(name, parser).name
                     for name in (arguments.names or corpus.names())]
        plan = SweepPlan(
            names=selection,
            families=[parse_family_spec(spec)
                      for spec in arguments.families],
            engine=arguments.engine,
            ordering=arguments.ordering,
            jobs=arguments.jobs,
            shard=ShardSpec.parse(arguments.shard),
            timeout=arguments.timeout)
        plan.tasks()  # expand now: bad family names/scales become usage
    except PlanError as error:  # errors here, not tracebacks mid-sweep
        parser.error(str(error))
        return 2

    if arguments.write_dir:
        _write_swept_tasks(plan, arguments.write_dir)

    store = None
    if arguments.cache_dir and not arguments.no_cache:
        store = RunStore(arguments.cache_dir)

    sweep = SweepRunner(plan, store=store).run()

    width = max((len(result.name) for result in sweep), default=1)
    for result in sweep:
        _print_entry_result(result, width)
    print(f"batch-check: {len(sweep)} entries, "
          f"{sweep.matching} matching the registry metadata, "
          f"{sweep.mismatching} mismatching, {sweep.errors} errors, "
          f"{sweep.cached} cached "
          f"[engine: {plan.engine}, jobs: {plan.jobs}, "
          f"shard: {plan.shard}]")

    if arguments.json_path:
        payload = json.dumps(sweep.to_json_dict(), indent=2, sort_keys=True)
        if arguments.json_path == "-":
            print(payload)
        else:
            with open(arguments.json_path, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    return 0 if sweep.succeeded else 1


def _write_swept_tasks(plan, directory: str) -> None:
    """Materialise the ``.g`` text of exactly the swept tasks.

    Task-based (not registry-based), so family instances are included and
    a ``--shard`` run writes only its own slice.
    """
    os.makedirs(directory, exist_ok=True)
    for task in plan.shard_tasks():
        path = os.path.join(directory, f"{task.name}.g")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(task.g_text)


def _resolve_entry(name: str, parser: argparse.ArgumentParser):
    """Corpus lookup with a did-you-mean suggestion on unknown names.

    ``parser.error`` exits with status 2, matching argparse's own usage
    errors.
    """
    from repro import corpus

    try:
        return corpus.entry(name)
    except corpus.CorpusError as error:
        close = difflib.get_close_matches(name, corpus.names(), n=3)
        suggestion = f"; did you mean: {', '.join(close)}?" if close else ""
        parser.error(f"{error}{suggestion}")  # exits with status 2


def _print_corpus_listing() -> None:
    """One entry per block: name, source, expected verdicts, description."""
    from repro import corpus

    width = max(len(name) for name in corpus.names())
    for name in corpus.names():
        item = corpus.entry(name)
        expected = " ".join(
            f"{key}={_metadata_value(value)}"
            for key, value in item.expected.items())
        print(f"{name:<{width}}  [{item.source}] {item.description}")
        print(f"{'':<{width}}  expected: {expected}")


def _metadata_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def _print_entry_result(result, width: int) -> None:
    report = result.report_object()
    if report is None:  # error or timeout: no verdicts to show
        print(f"{result.name:<{width}}  "
              f"[{result.display_status}] {result.error}")
        return
    verdicts = (f"states={report.num_states:<6d} "
                f"consistent={_flag(report.consistent)} "
                f"persistent={_flag(report.output_persistent)} "
                f"csc={_flag(report.csc)} "
                f"deadlock_free={_flag(report.deadlock_free)}")
    status = ("MISMATCH" if result.status == "mismatch"
              else result.display_status)
    print(f"{result.name:<{width}}  {verdicts} "
          f"{str(report.classification):<38} [{status}]")
    for problem in result.mismatches:
        print(f"{'':<{width}}    {problem}")


def _flag(value: Optional[bool]) -> str:
    return "-" if value is None else ("yes" if value else "no ")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
