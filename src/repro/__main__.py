"""``python -m repro`` -- alias of the ``stg-check`` console script.

Supports the same arguments, including the corpus sweep::

    python -m repro handshake
    python -m repro batch-check
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
