"""Persistent BDD caching: reachable-set reuse across runs and scales.

This package hosts the :class:`~repro.cache.bddstore.BDDStore` -- the
sibling of the sweep runner's result cache that persists the reachable
BDD per specification -- and :func:`bind_pipeline`, which wires a store
into a :class:`~repro.core.pipeline.VerificationPipeline` so the
traversal is skipped on a hit, warm-started on a family miss, and
persisted after a cold run::

    from repro.cache import BDDStore, bind_pipeline

    store = BDDStore(".repro-bdd-cache")
    pipeline = VerificationPipeline(stg)
    bind_pipeline(pipeline, store, name=stg.name, config=config)
    pipeline.run(checks=("csc",))   # traversal served from the store

The CLI exposes the store as ``--bdd-cache DIR`` (both on single checks
and on ``batch-check`` sweeps, where every worker binds its pipeline
through :class:`~repro.api.config.EngineConfig.bdd_cache_dir`).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.bddstore import (
    BDD_SCHEMA_VERSION,
    BDDStore,
    BDDStoreWarning,
    reachable_fingerprint,
)

__all__ = [
    "BDD_SCHEMA_VERSION",
    "BDDStore",
    "BDDStoreWarning",
    "bind_pipeline",
    "reachable_fingerprint",
]


def bind_pipeline(pipeline, store: BDDStore, name: str, config,
                  g_text: Optional[str] = None) -> str:
    """Attach a :class:`BDDStore` to a pipeline's reachability hooks.

    ``config`` is the run's :class:`~repro.api.config.EngineConfig`;
    ``g_text`` is the canonical ``.g`` text (serialised from the
    pipeline's STG when omitted -- the writer is deterministic, so both
    spellings fingerprint identically).  Returns the reachability
    fingerprint the store entry is keyed by.

    When ``config.base_fingerprint`` is set and the exact lookup
    misses, the provider asks :func:`repro.delta.warmstart.apply_base`
    for the strongest sound reuse of the named base entry (adopting it
    outright on structural identity, seeding the traversal for monotone
    edits, pre-warming structurally otherwise); the family-scale
    warm-start remains the fallback when no base was named.
    """
    from repro.stg.writer import to_g_string

    if g_text is None:
        g_text = to_g_string(pipeline.stg)
    fingerprint = reachable_fingerprint(g_text, config)
    base_fingerprint = getattr(config, "base_fingerprint", None)

    def provider(p):
        hit = store.lookup(name, fingerprint, p.encoding.manager)
        if hit is not None:
            return hit
        if base_fingerprint:
            from repro.delta.warmstart import apply_base

            return apply_base(p, store, base_fingerprint)
        # Miss: maybe pre-build structure from a smaller family scale.
        p.warm_handle = store.warm_start(name, p.encoding.manager)
        return None

    def consumer(p, reached, stats):
        store.put(name, fingerprint, reached, stats, g_text=g_text)

    pipeline.reached_provider = provider
    pipeline.reached_consumer = consumer
    return fingerprint
