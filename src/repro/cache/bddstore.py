"""The persistent reachable-set cache: a BDD store warm-starting sweeps.

A :class:`BDDStore` is the sibling of the sweep runner's
:class:`~repro.runner.store.RunStore`: where the RunStore persists
*results* (verdict records served as cache hits), the BDDStore persists
the expensive *intermediate* -- the reachable-state BDD of the Figure 5
traversal, serialised with :mod:`repro.bdd.serialize` -- so later runs
over the same specification skip the traversal entirely even when they
ask different questions (a different ``--checks`` selection, synthesis,
liveness extras).

Each entry is one file per specification name, stamped with a
**reachability fingerprint** (:func:`reachable_fingerprint`): a content
hash of the canonical ``.g`` text plus exactly the
:class:`~repro.api.config.EngineConfig` fields the reachable set depends
on (ordering, traversal strategy, initial-value overrides).  A lookup
whose fingerprint does not match -- the specification changed, the
variable order changed -- is a miss and falls back to a cold traversal;
a corrupt file warns with :class:`BDDStoreWarning` and recomputes
(mirroring :class:`~repro.runner.store.RunStoreWarning` semantics).

Scalable-family instances (``family@scale`` names) additionally
**warm-start**: when entry ``family@N`` misses, the store loads the
nearest smaller scale's reachable set into the traversal's manager
before the cold traversal runs.  The loaded BDD is *not* used as a state
set (its states are not necessarily reachable at the new scale -- doing
so would corrupt verdicts); it only pre-builds shared node structure and
operation-cache entries, so the traversal result is byte-for-byte the
cold result, just cheaper to construct.

**Delta warm-starts** (:mod:`repro.delta`) generalise this to *edited*
specifications: :meth:`BDDStore.find` locates a base entry by
fingerprint and schema-2 entries carry the base's canonical ``.g`` text
in their meta line, so the engine can diff the edited STG against the
base and -- for strictly monotone edits -- seed the traversal from the
stored reachable set instead of the single initial state.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
import warnings
from typing import Dict, Optional, TextIO, Tuple

from repro.bdd import serialize
from repro.bdd.function import Function
from repro.bdd.manager import BDDError, BDDManager
from repro.core.stats import TraversalStats

#: Bump when the store format or the fingerprint material changes
#: incompatibly; part of every fingerprint, so old entries invalidate.
#: 2: the meta line records the canonical ``.g`` text of the stored
#:    specification, so delta warm-starts can diff an edited STG
#:    against the base without a side channel.
BDD_SCHEMA_VERSION = 2

FORMAT_HEADER = f"bddstore {BDD_SCHEMA_VERSION}"

_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.@-]")


class BDDStoreWarning(UserWarning):
    """A non-fatal BDD-store problem (e.g. a corrupt entry recomputed)."""


def reachable_fingerprint(g_text: str, config) -> str:
    """Content hash keying one persisted reachable set.

    Covers exactly what the reachable BDD depends on: the canonical
    ``.g`` text and the reachability-relevant
    :class:`~repro.api.config.EngineConfig` fields.  Check selection,
    arbitration places, timeouts and the cache directory itself are
    deliberately excluded -- they change what is *asked about* the
    reachable set, never the set (or its BDD) itself.
    """
    material = json.dumps({
        "schema": BDD_SCHEMA_VERSION,
        "g_text": g_text,
        "ordering": config.ordering,
        "traversal_strategy": config.traversal_strategy,
        "initial_values": config.initial_values_dict,
    }, sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


#: Process-wide store instances keyed by absolute directory (see
#: :meth:`BDDStore.shared`).
_SHARED_STORES: Dict[str, "BDDStore"] = {}
_SHARED_STORES_LOCK = threading.Lock()


class BDDStore:
    """File-per-entry persistent cache of serialised reachable BDDs."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        # Effectiveness counters (reported by traversal consumers).
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.warm_starts = 0
        # Delta warm-start outcomes, by reuse tier (see repro.delta).
        self.delta_hits = 0
        self.delta_seeds = 0
        self.delta_prewarms = 0
        self.delta_colds = 0

    @classmethod
    def shared(cls, directory: str) -> "BDDStore":
        """The process-wide store instance of ``directory``.

        Every consumer of the same cache directory -- each entry of a
        thread-backend sweep, every request of the ``repro.serve``
        daemon -- gets the *same* object, so the effectiveness counters
        aggregate across runs (the daemon's warm-repeat tests and
        ``/metrics`` read exactly these).  Safe to share: lookups
        deserialise into the caller's own manager and writes are
        atomic temp-file renames, so concurrent users never observe a
        half-written entry; the counters are diagnostics, not verdict
        material.
        """
        key = os.path.abspath(directory)
        with _SHARED_STORES_LOCK:
            store = _SHARED_STORES.get(key)
            if store is None:
                store = _SHARED_STORES[key] = cls(key)
            return store

    def _path(self, name: str) -> str:
        return os.path.join(self.directory,
                            _SAFE_NAME.sub("_", name) + ".bdd")

    def _alt_path(self, name: str, fingerprint: str) -> str:
        """The overflow entry of a (name, fingerprint) pair.

        Edited specifications usually keep their base's ``.model`` name,
        so one name legitimately maps to several live contents in an
        editor loop.  The first content keeps the primary ``name.bdd``
        path (family warm-starts scan those); later different-content
        puts land here instead of evicting the base entry a delta
        re-check is about to ask for.
        """
        return os.path.join(
            self.directory,
            f"{_SAFE_NAME.sub('_', name)}-{fingerprint[:12]}.bdd")

    def __contains__(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    # ------------------------------------------------------------------
    # The cache protocol
    # ------------------------------------------------------------------
    def lookup(self, name: str, fingerprint: str, manager: BDDManager
               ) -> Optional[Tuple[Function, TraversalStats]]:
        """Load the persisted reachable set of ``name`` into ``manager``.

        Returns ``(reached, stats)`` on a hit.  Misses (no entry, or a
        fingerprint recorded under a different specification content /
        engine config) return ``None`` silently; corrupt entries warn
        with :class:`BDDStoreWarning` and return ``None`` so the caller
        recomputes.
        """
        path = self._path(name)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                meta = self._read_meta(handle, path)
                if meta.get("name") != name:
                    raise BDDError(
                        f"entry records name {meta.get('name')!r}, "
                        f"expected {name!r}")
                if meta.get("fingerprint") != fingerprint:
                    # Another content owns the primary path; an editor
                    # loop may have parked this one on its overflow
                    # path (see :meth:`_alt_path`).
                    alternate = self._alt_path(name, fingerprint)
                    if os.path.exists(alternate):
                        return self._lookup_file(alternate, name,
                                                 fingerprint, manager)
                    # Content or engine config changed: a plain
                    # invalidation, not corruption.
                    self.invalidations += 1
                    self.misses += 1
                    return None
                reached = self._load_bdd(handle, manager, path,
                                         require_exact_order=True)
                stats = TraversalStats.from_dict(meta.get("stats") or {})
        except (BDDError, ValueError, OSError) as error:
            warnings.warn(
                f"{path}: corrupt BDD-store entry ({error}); falling "
                f"back to a cold traversal", BDDStoreWarning,
                stacklevel=2)
            self.misses += 1
            return None
        self.hits += 1
        return reached, stats

    def _lookup_file(self, path: str, name: str, fingerprint: str,
                     manager: BDDManager
                     ) -> Optional[Tuple[Function, TraversalStats]]:
        """:meth:`lookup` semantics against one specific entry file."""
        try:
            with open(path, encoding="utf-8") as handle:
                meta = self._read_meta(handle, path)
                if (meta.get("name") != name
                        or meta.get("fingerprint") != fingerprint):
                    self.invalidations += 1
                    self.misses += 1
                    return None
                reached = self._load_bdd(handle, manager, path,
                                         require_exact_order=True)
                stats = TraversalStats.from_dict(meta.get("stats") or {})
        except (BDDError, ValueError, OSError) as error:
            warnings.warn(
                f"{path}: corrupt BDD-store entry ({error}); falling "
                f"back to a cold traversal", BDDStoreWarning,
                stacklevel=2)
            self.misses += 1
            return None
        self.hits += 1
        return reached, stats

    def put(self, name: str, fingerprint: str, reached: Function,
            stats: TraversalStats, g_text: Optional[str] = None) -> None:
        """Persist one reachable set (atomically: write-temp + rename).

        ``g_text`` is the canonical specification text the fingerprint
        was computed over; storing it lets a later *delta* lookup
        (:meth:`find` + :meth:`load_entry`) diff an edited STG against
        this base without re-supplying the base source.

        When the primary ``{name}.bdd`` file already holds a *different*
        fingerprint, the new entry goes to its overflow path
        (:meth:`_alt_path`) instead of evicting it -- in an editor loop
        the edited spec usually keeps the base's ``.model`` name, and
        clobbering the base entry would turn every subsequent re-check
        cold.  An unreadable primary is overwritten as before.
        """
        path = self._path(name)
        if os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as handle:
                    existing = self._read_meta(handle, path)
            except (BDDError, ValueError, OSError):
                existing = None  # corrupt primary: reclaim it
            if existing is not None and \
                    existing.get("fingerprint") != fingerprint:
                path = self._alt_path(name, fingerprint)
        temporary = path + ".tmp"
        meta = {
            "name": name,
            "fingerprint": fingerprint,
            "stats": stats.to_dict(),
            "stored_at": time.time(),
        }
        if g_text is not None:
            meta["g_text"] = g_text
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(FORMAT_HEADER + "\n")
            handle.write("meta " + json.dumps(meta, sort_keys=True) + "\n")
            serialize.dump([reached], handle)
        os.replace(temporary, path)

    # ------------------------------------------------------------------
    # Delta warm starts (repro.delta)
    # ------------------------------------------------------------------
    def find(self, fingerprint: str) -> Optional[Tuple[str, dict]]:
        """Locate the entry stored under ``fingerprint``, if any.

        Returns ``(path, meta)`` without deserialising the BDD section,
        so callers can read the base's canonical ``g_text`` and decide
        on a reuse tier before paying for the load.  Corrupt entries
        are skipped silently (a later :meth:`lookup` of the same file
        will warn).
        """
        try:
            entries = sorted(os.listdir(self.directory))
        except OSError:
            return None
        for filename in entries:
            if not filename.endswith(".bdd"):
                continue
            path = os.path.join(self.directory, filename)
            try:
                with open(path, encoding="utf-8") as handle:
                    meta = self._read_meta(handle, path)
            except (BDDError, ValueError, OSError):
                continue
            if meta.get("fingerprint") == fingerprint:
                return path, meta
        return None

    def load_entry(self, path: str, manager: BDDManager
                   ) -> Optional[Tuple[Function, Tuple[str, ...]]]:
        """Deserialise the BDD of one entry file into ``manager``.

        Returns ``(reached, stored_variables)`` or ``None`` when the
        stored variables are not a subset of the manager's (an
        incompatible base) or the entry is corrupt (which warns).  Used
        by the delta warm-start path after :meth:`find` has picked the
        entry and read its meta.
        """
        try:
            with open(path, encoding="utf-8") as handle:
                self._read_meta(handle, path)
                position = handle.tell()
                handle.readline()  # serialize header
                vars_line = handle.readline().split()
                if not vars_line or vars_line[0] != "vars":
                    raise BDDError("missing 'vars' line")
                stored = tuple(vars_line[1:])
                handle.seek(position)
                loaded = self._load_bdd(handle, manager, path,
                                        require_exact_order=False)
        except (BDDError, ValueError, OSError) as error:
            warnings.warn(
                f"{path}: corrupt BDD-store entry ({error}); delta "
                f"warm-start falls back to a cold traversal",
                BDDStoreWarning, stacklevel=2)
            return None
        if loaded is None:
            return None
        return loaded, stored

    # ------------------------------------------------------------------
    # Family warm starts
    # ------------------------------------------------------------------
    def warm_start(self, name: str, manager: BDDManager
                   ) -> Optional[Function]:
        """Pre-build node structure from the nearest smaller family scale.

        For a ``family@scale`` entry that missed, load the stored
        reachable set of the largest smaller scale whose variables all
        exist in ``manager`` (scales of one family share most of their
        variable names).  Returns the loaded function handle -- the
        caller should keep it alive while traversing -- or ``None`` when
        no compatible smaller scale is stored.  Purely structural: the
        traversal still starts from the initial state, so its result is
        exactly the cold one.
        """
        family = separator = None
        for candidate_sep in ("@", "_"):  # task names vs STG model names
            prefix, sep, scale_text = name.rpartition(candidate_sep)
            if prefix and sep and scale_text.isdigit():
                family, separator = prefix, sep
                break
        if family is None:
            return None
        scale = int(scale_text)
        for candidate in self._smaller_scales(family, separator, scale):
            path = self._path(f"{family}{separator}{candidate}")
            try:
                with open(path, encoding="utf-8") as handle:
                    self._read_meta(handle, path)
                    loaded = self._load_bdd(handle, manager, path,
                                            require_exact_order=False)
            except (BDDError, ValueError, OSError):
                continue  # corrupt or incompatible: try the next scale
            if loaded is not None:
                self.warm_starts += 1
                return loaded
        return None

    def _smaller_scales(self, family: str, separator: str, scale: int):
        """Stored scales of ``family`` below ``scale``, largest first."""
        prefix = _SAFE_NAME.sub("_", family) + separator
        scales = []
        try:
            entries = os.listdir(self.directory)
        except OSError:
            return []
        for filename in entries:
            if not (filename.startswith(prefix)
                    and filename.endswith(".bdd")):
                continue
            scale_text = filename[len(prefix):-len(".bdd")]
            if scale_text.isdigit() and int(scale_text) < scale:
                scales.append(int(scale_text))
        return sorted(scales, reverse=True)

    # ------------------------------------------------------------------
    # File format helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _read_meta(handle: TextIO, path: str) -> dict:
        header = handle.readline().strip()
        if header != FORMAT_HEADER:
            raise BDDError(f"unrecognised store header {header!r} "
                           f"(expected {FORMAT_HEADER!r})")
        meta_line = handle.readline()
        tag, _, payload = meta_line.partition(" ")
        if tag != "meta":
            raise BDDError("missing 'meta' line")
        meta = json.loads(payload)
        if not isinstance(meta, dict):
            raise BDDError("malformed 'meta' payload")
        return meta

    @staticmethod
    def _load_bdd(handle: TextIO, manager: BDDManager, path: str,
                  require_exact_order: bool) -> Optional[Function]:
        """Load the serialised BDD section into an *existing* manager.

        The stored variable order is checked against the manager before
        anything is created: an exact-order mismatch on a hit is
        corruption (the fingerprint pins the order), while a warm start
        merely requires the stored variables to be a subset of the
        manager's (returning ``None`` otherwise) so the load can never
        pollute the encoding's variable order.
        """
        position = handle.tell()
        serialize_header = handle.readline()  # validated by serialize.load
        vars_line = handle.readline().split()
        if not vars_line or vars_line[0] != "vars":
            raise BDDError("missing 'vars' line")
        stored = vars_line[1:]
        if require_exact_order:
            if stored != manager.variables:
                raise BDDError("stored variable order differs from the "
                               "encoding's (stale entry)")
        elif not set(stored).issubset(manager.variables):
            return None  # incompatible family scale: skip, do not warn
        del serialize_header
        handle.seek(position)
        _, roots = serialize.load(handle, manager=manager)
        if len(roots) != 1:
            raise BDDError(f"expected one root, found {len(roots)}")
        return roots[0]
