"""The one typed engine configuration of the verification facade.

:class:`EngineConfig` replaces the kwargs soup that used to be threaded
through the CLI, :class:`~repro.runner.plan.SweepPlan` and the worker
processes as a bare engine string plus ad-hoc keyword arguments.  It is

* **frozen and hashable** -- safe as a dict key and safe to share,
* **normalised** -- arbitration places and initial-value overrides are
  stored as sorted tuples, so two configs that mean the same thing
  compare (and serialise) identically,
* **validated at construction** -- unknown engines, ordering strategies
  and traversal strategies raise :class:`~repro.api.errors.ApiError`
  immediately instead of failing deep inside a sweep,
* **serialisable** -- :meth:`to_dict` / :meth:`from_dict` round-trip
  losslessly.  The dict form is what the sweep runner pickles to worker
  processes, what `RunStore` fingerprints cache records with, and what
  ``--json`` reports embed.

Every field applies to at least one engine; fields an engine does not
use (e.g. ``ordering`` on the explicit engine) are carried but ignored,
so one config can drive any registered engine.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.api.errors import ApiError

#: Valid symbolic traversal strategies (Figure 5 chained vs frontier).
TRAVERSAL_STRATEGIES = ("chained", "frontier")

#: Config fields that are pure execution/observability knobs: they steer
#: *where and how fast* a verdict is computed (and whether anyone
#: watched), never *what* is computed.  Excluded from every cache
#: fingerprint (:attr:`repro.runner.plan.SweepTask.fingerprint`) and
#: stripped from client-supplied configs by the ``repro.serve`` daemon,
#: which owns its own cache directories.
EXECUTION_KNOB_FIELDS = ("timeout", "bdd_cache_dir", "trace_dir",
                         "base_fingerprint", "deadline", "fault_plan")


@dataclass(frozen=True)
class EngineConfig:
    """Complete, serialisable configuration of one verification run.

    Parameters
    ----------
    engine:
        Name of a registered engine (see :func:`repro.engines.available`).
    ordering:
        BDD variable-ordering strategy (symbolic engine).
    traversal_strategy:
        ``"chained"`` (Figure 5) or ``"frontier"`` (symbolic engine).
    max_states:
        Enumeration budget of the explicit engine.
    initial_values:
        Optional completion/override of the initial signal values,
        honoured by **both** engines; given as a mapping, stored as a
        sorted tuple of ``(signal, value)`` pairs.
    arbitration_places:
        Places whose output/output conflicts model arbitration; validated
        against the specification's actual places by the facade.
    timeout:
        Per-entry wall-clock budget in seconds (an execution knob: it is
        excluded from cache fingerprints).
    bdd_cache_dir:
        Directory of the persistent reachable-set cache
        (:class:`repro.cache.BDDStore`); the symbolic engine serves the
        reachable BDD from it instead of traversing when the entry's
        reachability fingerprint matches.  An execution knob like
        ``timeout``: where a run caches can never change what it
        computes, so the field is excluded from result-cache
        fingerprints.
    trace_dir:
        Directory the worker writes per-entry JSONL trace files into
        (:mod:`repro.obs`; the ``--trace`` flag).  A pure observability
        knob: like ``timeout`` and ``bdd_cache_dir`` it is excluded
        from every fingerprint, and the sweep gate proves traced and
        untraced runs emit byte-identical stable JSON.
    base_fingerprint:
        Reachability fingerprint of a *base* entry in the BDD cache to
        warm-start from when re-verifying an edited specification
        (:mod:`repro.delta`; requires ``bdd_cache_dir``).  An execution
        knob like the cache directory itself: seeding only moves where
        the traversal starts, never its fixpoint, so the field is
        excluded from every fingerprint and the sweep gate's delta leg
        proves seeded and cold runs emit byte-identical stable JSON.
    deadline:
        Absolute :func:`time.monotonic` instant the entry must finish
        by; the symbolic traversal checks it cooperatively once per
        fixpoint iteration and raises
        :class:`~repro.utils.timing.DeadlineExceeded` past it, which
        the worker reports as a ``timeout`` record.  This is how the
        ``serial``/``thread``/``asyncio`` backends -- which cannot
        preempt a running entry -- still honour ``timeout`` budgets.
        Normally derived from ``timeout`` by the worker; an execution
        knob excluded from every fingerprint.
    fault_plan:
        Spec string of a :class:`repro.faults.FaultPlan` -- the
        deterministic chaos dial of the lease fabric (worker crashes,
        entry hangs, store truncation, renewal stalls).  An execution
        knob like ``trace_dir``: injected faults are always recovered
        by retry, so the knob can never change what a sweep computes,
        and the sweep gate's chaos leg proves injected and clean runs
        emit byte-identical stable JSON.
    commutativity_fallback_states:
        State bound under which the symbolic engine falls back to the
        explicit commutativity check when fake conflicts are present.
    """

    engine: str = "symbolic"
    ordering: str = "force"
    traversal_strategy: str = "chained"
    max_states: int = 1_000_000
    initial_values: Optional[Tuple[Tuple[str, bool], ...]] = None
    arbitration_places: Tuple[str, ...] = ()
    timeout: Optional[float] = None
    bdd_cache_dir: Optional[str] = None
    trace_dir: Optional[str] = None
    base_fingerprint: Optional[str] = None
    deadline: Optional[float] = None
    fault_plan: Optional[str] = None
    commutativity_fallback_states: int = 10_000

    def __post_init__(self) -> None:
        object.__setattr__(self, "arbitration_places",
                           tuple(sorted(self.arbitration_places)))
        if self.initial_values is not None:
            items = (self.initial_values.items()
                     if isinstance(self.initial_values, Mapping)
                     else self.initial_values)
            object.__setattr__(self, "initial_values", tuple(sorted(
                (str(signal), bool(value)) for signal, value in items)))
        self._validate()

    def _validate(self) -> None:
        from repro import engines
        from repro.core.encoding import ORDERING_STRATEGIES

        engines.get(self.engine)  # raises UnknownEngineError
        if self.ordering not in ORDERING_STRATEGIES:
            raise ApiError(
                f"unknown ordering strategy {self.ordering!r}; available: "
                f"{', '.join(ORDERING_STRATEGIES)}")
        if self.traversal_strategy not in TRAVERSAL_STRATEGIES:
            raise ApiError(
                f"unknown traversal strategy {self.traversal_strategy!r}; "
                f"available: {', '.join(TRAVERSAL_STRATEGIES)}")
        if self.max_states < 1:
            raise ApiError(f"max_states must be >= 1, "
                           f"got {self.max_states}")
        if self.timeout is not None and self.timeout <= 0:
            raise ApiError(f"timeout must be positive, got {self.timeout}")
        if self.base_fingerprint is not None and not re.fullmatch(
                r"[0-9a-f]{64}", self.base_fingerprint):
            raise ApiError(
                f"base_fingerprint must be a 64-char lowercase hex "
                f"reachability fingerprint, got {self.base_fingerprint!r}")
        if self.deadline is not None and self.deadline <= 0:
            raise ApiError(
                f"deadline must be a positive monotonic instant, "
                f"got {self.deadline}")
        if self.fault_plan is not None:
            from repro.faults import FaultSpecError, parse_fault_spec
            try:
                parse_fault_spec(self.fault_plan)
            except FaultSpecError as error:
                raise ApiError(f"bad fault_plan spec: {error}")

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    @property
    def initial_values_dict(self) -> Optional[Dict[str, bool]]:
        """The initial-value overrides as a plain dict (or ``None``)."""
        if self.initial_values is None:
            return None
        return dict(self.initial_values)

    def with_overrides(self, **changes: object) -> "EngineConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    def without_execution_knobs(self) -> "EngineConfig":
        """A copy with every :data:`EXECUTION_KNOB_FIELDS` field reset.

        The semantic core of the config: two configs that agree on this
        view compute identical verdicts.  The serve daemon normalises
        client configs through it before stamping its own cache
        directories on.
        """
        defaults = {spec.name: spec.default for spec in fields(self)
                    if spec.name in EXECUTION_KNOB_FIELDS}
        return replace(self, **defaults)

    # ------------------------------------------------------------------
    # The one serialised schema (workers, cache fingerprints, --json)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Lossless, JSON-serialisable form.

        ``from_dict(to_dict(config)) == config`` holds exactly.  Sweep
        cache fingerprints are computed from this dict (minus the
        execution-knob ``timeout``), so any semantic config change -- and
        nothing else -- invalidates cached results.
        """
        return {
            "engine": self.engine,
            "ordering": self.ordering,
            "traversal_strategy": self.traversal_strategy,
            "max_states": self.max_states,
            "initial_values": self.initial_values_dict,
            "arbitration_places": list(self.arbitration_places),
            "timeout": self.timeout,
            "bdd_cache_dir": self.bdd_cache_dir,
            "trace_dir": self.trace_dir,
            "base_fingerprint": self.base_fingerprint,
            "deadline": self.deadline,
            "fault_plan": self.fault_plan,
            "commutativity_fallback_states":
                self.commutativity_fallback_states,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "EngineConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are ignored and missing keys fall back to the field
        defaults, so configs serialised by older versions keep loading.
        """
        known = {spec.name for spec in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        if kwargs.get("initial_values") is not None:
            kwargs["initial_values"] = dict(kwargs["initial_values"])
        kwargs["arbitration_places"] = tuple(
            kwargs.get("arbitration_places") or ())
        return cls(**kwargs)
