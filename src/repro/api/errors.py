"""Errors of the public verification API.

Everything the facade can reject -- an unknown engine, an unknown
property check, an arbitration place that does not exist on the
specification -- raises a subclass of :class:`ApiError` whose message is
ready to be shown to a user verbatim (the CLI maps them to usage errors,
exit status 2).  Unknown-name errors carry a did-you-mean suggestion
built from the registered names, matching the behaviour of unknown
corpus entries in ``batch-check``.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Optional


def suggest(name: str, options: Iterable[str]) -> str:
    """A ``"; did you mean: ..."`` suffix (empty when nothing is close)."""
    close = difflib.get_close_matches(name, list(options), n=3)
    return f"; did you mean: {', '.join(close)}?" if close else ""


class ApiError(ValueError):
    """An invalid request to the verification facade."""


class UnknownEngineError(ApiError):
    """The requested engine is not registered."""

    def __init__(self, name: str, options: Iterable[str],
                 message: Optional[str] = None) -> None:
        options = list(options)
        self.engine = name
        self.options = options
        super().__init__(message or (
            f"unknown engine {name!r}; available: "
            f"{', '.join(options)}{suggest(name, options)}"))


class UnknownCheckError(ApiError):
    """The requested property check is not registered."""

    def __init__(self, name: str, options: Iterable[str],
                 message: Optional[str] = None) -> None:
        options = list(options)
        self.check = name
        self.options = options
        super().__init__(message or (
            f"unknown check {name!r}; available: "
            f"{', '.join(options)}{suggest(name, options)}"))
