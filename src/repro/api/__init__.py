"""`repro.api` -- the public verification surface.

One stable, typed entry point for every consumer of the verification
pipeline (CLI, sweep runner, corpus batch-check, synthesis, external
tooling)::

    from repro.api import EngineConfig, verify

    report = verify(stg)                                    # defaults
    report = verify(stg, EngineConfig(engine="explicit",
                                      arbitration_places=("p_me",)))
    report = verify(stg, checks=("csc", "persistency"))     # a subset

The moving parts:

* :class:`EngineConfig` -- the one frozen, serialisable engine
  configuration (replaces per-engine constructor kwargs); its
  :meth:`~EngineConfig.to_dict` form is what workers receive, what cache
  fingerprints hash and what ``--json`` reports embed.
* :mod:`repro.engines` -- the engine protocol and registry; new backends
  plug in with ``engines.register(name, engine)`` and are immediately
  usable from the CLI and the sweep runner.
* the **check registry** (:mod:`repro.api.checks`) -- every property
  check is named and selectable; custom checks plug in via
  :func:`register_check`.
* :func:`verify` / :func:`run` -- the facade: validation (unknown
  engines/checks/arbitration places raise :class:`ApiError` with
  did-you-mean suggestions), dispatch, and -- via :func:`run` -- access
  to the engine intermediates for synthesis and liveness extras.
"""

from repro.api.checks import (
    ALL,
    CheckSpec,
    available_checks,
    default_checks,
    register_check,
    resolve_checks,
    supported_checks,
    unregister_check,
)
from repro.api.config import (
    EXECUTION_KNOB_FIELDS,
    TRAVERSAL_STRATEGIES,
    EngineConfig,
)
from repro.api.errors import ApiError, UnknownCheckError, UnknownEngineError
from repro.api.facade import run, validate_arbitration_places, verify
from repro.engines import EngineRun

__all__ = [
    "ALL",
    "ApiError",
    "CheckSpec",
    "EngineConfig",
    "EngineRun",
    "EXECUTION_KNOB_FIELDS",
    "TRAVERSAL_STRATEGIES",
    "UnknownCheckError",
    "UnknownEngineError",
    "available_checks",
    "default_checks",
    "register_check",
    "resolve_checks",
    "run",
    "supported_checks",
    "unregister_check",
    "validate_arbitration_places",
    "verify",
]
