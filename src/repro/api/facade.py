"""The single public verification entry point.

Every consumer -- the CLI, the sweep runner, the corpus batch-check,
synthesis drivers, external tooling -- verifies through this facade::

    from repro.api import EngineConfig, verify

    report = verify(stg)                                   # defaults
    report = verify(stg, EngineConfig(engine="explicit"))
    report = verify(stg, checks=("csc", "persistency"))    # a subset

:func:`verify` returns the :class:`~repro.report.ImplementabilityReport`;
:func:`run` additionally returns the engine intermediates (traversal
statistics, the symbolic pipeline) for consumers that keep working after
the check.  Engine choice, check selection and arbitration places are all
validated here, so a bad request fails fast with a clear
:class:`~repro.api.errors.ApiError` instead of silently misbehaving deep
inside an engine.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.api.config import EngineConfig
from repro.api.errors import ApiError, suggest
from repro.engines import EngineRun
from repro.report import ImplementabilityReport
from repro.stg.stg import STG


def validate_arbitration_places(stg: STG,
                                places: Iterable[str]) -> None:
    """Reject arbitration places that do not exist on the specification.

    Both engines used to treat an unknown arbitration place as a silent
    no-op -- the persistency check simply never matched it, quietly
    turning real violations into accepted "arbitration".  Unknown places
    are now a hard :class:`ApiError` naming the close matches.
    """
    known = set(stg.places)
    unknown = [place for place in places if place not in known]
    if unknown:
        shown = ", ".join(repr(place) for place in unknown)
        raise ApiError(
            f"unknown arbitration place(s) {shown} on STG {stg.name!r}"
            f"{suggest(unknown[0], known)}")


def run(stg: STG, config: Optional[EngineConfig] = None,
        checks: Union[None, str, Iterable[str]] = None) -> EngineRun:
    """Verify ``stg`` and return the full :class:`EngineRun` outcome.

    ``config`` defaults to ``EngineConfig()`` (symbolic engine, force
    ordering).  ``checks`` selects the property checks to run: ``None``
    for the engine's default set, :data:`repro.api.checks.ALL` for every
    supported check, or an iterable / comma-separated string of check
    names (see :func:`repro.api.checks.available_checks`).
    """
    from repro import engines
    from repro.api.checks import resolve_checks

    if config is None:
        config = EngineConfig()
    validate_arbitration_places(stg, config.arbitration_places)
    engine = engines.get(config.engine)
    selected = resolve_checks(checks, engine=config.engine,
                              supported=engine.checks)
    return engine.run(stg, config, selected)


def verify(stg: STG, config: Optional[EngineConfig] = None,
           checks: Union[None, str, Iterable[str]] = None
           ) -> ImplementabilityReport:
    """Verify ``stg`` and return the :class:`ImplementabilityReport`.

    The facade every consumer should call; see :func:`run` for the
    parameters and for access to the engine intermediates.
    """
    return run(stg, config, checks=checks).report
