"""The single public verification entry point.

Every consumer -- the CLI, the sweep runner, the corpus batch-check,
synthesis drivers, external tooling -- verifies through this facade::

    from repro.api import EngineConfig, verify

    report = verify(stg)                                   # defaults
    report = verify(stg, EngineConfig(engine="explicit"))
    report = verify(stg, checks=("csc", "persistency"))    # a subset

Incremental re-verification (:mod:`repro.delta`) is part of the same
front door: with a persistent BDD cache configured, ``base=`` names the
entry to warm-start from -- a benchmark-corpus entry name or a raw
reachability fingerprint -- and the returned report carries a ``delta``
provenance block saying which reuse tier applied::

    config = EngineConfig(bdd_cache_dir=".repro-bdd-cache")
    verify(base_stg, config)                               # populate
    report = verify(edited_stg, config, base=base_stg)     # re-check
    report.delta["tier"]                                   # e.g. "seed"

:func:`verify` returns the :class:`~repro.report.ImplementabilityReport`;
:func:`run` additionally returns the engine intermediates (traversal
statistics, the symbolic pipeline) for consumers that keep working after
the check.  Engine choice, check selection, arbitration places and the
base reference are all validated here, so a bad request fails fast with
a clear :class:`~repro.api.errors.ApiError` instead of silently
misbehaving deep inside an engine.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional, Union

from repro.api.config import EngineConfig
from repro.api.errors import ApiError, suggest
from repro.engines import EngineRun
from repro.report import ImplementabilityReport
from repro.stg.stg import STG

_FINGERPRINT = re.compile(r"[0-9a-f]{64}")


def validate_arbitration_places(stg: STG,
                                places: Iterable[str]) -> None:
    """Reject arbitration places that do not exist on the specification.

    Both engines used to treat an unknown arbitration place as a silent
    no-op -- the persistency check simply never matched it, quietly
    turning real violations into accepted "arbitration".  Unknown places
    are now a hard :class:`ApiError` naming the close matches.
    """
    known = set(stg.places)
    unknown = [place for place in places if place not in known]
    if unknown:
        shown = ", ".join(repr(place) for place in unknown)
        raise ApiError(
            f"unknown arbitration place(s) {shown} on STG {stg.name!r}"
            f"{suggest(unknown[0], known)}")


def resolve_base(base: Union[str, STG], config: EngineConfig) -> str:
    """Turn a ``base=`` reference into a reachability fingerprint.

    Accepts, in order of preference:

    * a 64-char lowercase hex string -- taken as the fingerprint itself
      (what the serve daemon's ``queued`` events and
      :func:`repro.cache.reachable_fingerprint` hand out);
    * an :class:`STG` -- fingerprinted from its canonical ``.g`` text;
    * a benchmark-corpus entry name -- fingerprinted from the corpus
      entry's stored text.

    The fingerprint is computed under ``config`` (ordering, traversal
    strategy, initial values), i.e. it names *the base entry this very
    config would have written*.
    """
    from repro.cache import reachable_fingerprint
    from repro.stg.writer import to_g_string

    if isinstance(base, STG):
        return reachable_fingerprint(to_g_string(base), config)
    base = str(base)
    if _FINGERPRINT.fullmatch(base):
        return base
    from repro.corpus import entry as corpus_entry

    try:
        found = corpus_entry(base)
    except KeyError:
        raise ApiError(
            f"base {base!r} is neither a reachability fingerprint nor a "
            f"benchmark-corpus entry name") from None
    return reachable_fingerprint(found.g_text, config)


def run(stg: STG, config: Optional[EngineConfig] = None,
        checks: Union[None, str, Iterable[str]] = None,
        base: Union[None, str, STG] = None) -> EngineRun:
    """Verify ``stg`` and return the full :class:`EngineRun` outcome.

    ``config`` defaults to ``EngineConfig()`` (symbolic engine, force
    ordering).  ``checks`` selects the property checks to run: ``None``
    for the engine's default set, :data:`repro.api.checks.ALL` for every
    supported check, or an iterable / comma-separated string of check
    names (see :func:`repro.api.checks.available_checks`).

    ``base`` requests a delta warm-start from a previously cached entry
    (see :func:`resolve_base` for the accepted spellings and the module
    docstring for the editor-loop pattern); it requires a configured
    ``bdd_cache_dir`` and the symbolic engine.  The base only seeds the
    traversal -- verdicts are byte-identical to a cold run -- and the
    report's ``delta`` block records the classification outcome.
    """
    from repro import engines
    from repro.api.checks import resolve_checks

    if config is None:
        config = EngineConfig()
    if base is not None:
        if not config.bdd_cache_dir:
            raise ApiError(
                "base= requires a persistent BDD cache: set "
                "EngineConfig.bdd_cache_dir (the store the base entry "
                "lives in)")
        if config.engine != "symbolic":
            raise ApiError(
                f"base= requires the symbolic engine (delta warm-starts "
                f"seed the BDD traversal), got engine={config.engine!r}")
        config = config.with_overrides(
            base_fingerprint=resolve_base(base, config))
    validate_arbitration_places(stg, config.arbitration_places)
    engine = engines.get(config.engine)
    selected = resolve_checks(checks, engine=config.engine,
                              supported=engine.checks)
    outcome = engine.run(stg, config, selected)
    if config.base_fingerprint and outcome.pipeline is not None:
        info = getattr(outcome.pipeline, "delta_info", None)
        if info is not None:
            outcome.report.delta = dict(info)
    return outcome


def verify(stg: STG, config: Optional[EngineConfig] = None,
           checks: Union[None, str, Iterable[str]] = None,
           base: Union[None, str, STG] = None) -> ImplementabilityReport:
    """Verify ``stg`` and return the :class:`ImplementabilityReport`.

    The facade every consumer should call; see :func:`run` for the
    parameters (including the incremental ``base=``) and for access to
    the engine intermediates.
    """
    return run(stg, config, checks=checks, base=base).report
