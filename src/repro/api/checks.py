"""The pluggable property-check registry of the verification facade.

Every implementability property of the paper is a named, registered
check.  ``repro.api.verify(stg, config, checks=("csc", "persistency"))``
(and the CLI's ``--checks csc,persistency``) runs exactly the selected
subset over the engine's shared intermediates -- the symbolic pipeline's
reachable-state BDD or the explicit engine's state graph is still
computed once and shared, but properties nobody asked for are skipped.

A :class:`CheckSpec` carries metadata (timing phase, description, which
engines implement it, whether it is part of the default set) and an
optional generic ``apply`` callable.  The built-in engines implement the
built-in checks as methods on their verification context
(:class:`repro.core.pipeline.VerificationPipeline` /
:class:`repro.sg.checker.ExplicitVerification`); a third-party check
plugs in by registering a spec whose ``apply(context, report)`` works
against those contexts::

    from repro.api import register_check, CheckSpec

    register_check(CheckSpec(
        name="single_output",
        phase="extra",
        description="exactly one output signal",
        apply=lambda ctx, report: report.add_verdict(
            "single output", len(ctx.stg.outputs) == 1)))

Checks always run in registration order regardless of the order they
were selected in, so reports stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.api.errors import UnknownCheckError

#: Sentinel selecting every check the engine supports (the sweep runner
#: uses this so cached verdicts are always complete).
ALL = "all"

CheckApply = Callable[[object, object], None]  # (context, report) -> None


@dataclass(frozen=True)
class CheckSpec:
    """One registered property check.

    ``engines`` names the built-in engines implementing the check as a
    context method ``_check_<name>``; when ``apply`` is given the check
    additionally (or instead) runs on any engine via the generic
    callable.  ``in_default`` controls membership in the default
    selection (``checks=None``): the liveness extras are opt-in, exactly
    like the pre-facade behaviour.
    """

    name: str
    phase: str
    description: str
    engines: Tuple[str, ...] = ("symbolic", "explicit")
    in_default: bool = True
    apply: Optional[CheckApply] = None

    def supported_by(self, engine: str) -> bool:
        return self.apply is not None or engine in self.engines


CHECKS: Dict[str, CheckSpec] = {}


def register_check(spec: CheckSpec, replace: bool = False) -> CheckSpec:
    """Register a property check (``replace=True`` to override)."""
    if spec.name in CHECKS and not replace:
        raise ValueError(f"duplicate check {spec.name!r}")
    CHECKS[spec.name] = spec
    return spec


def unregister_check(name: str) -> None:
    """Remove a registered check (mainly for tests and plug-in teardown)."""
    CHECKS.pop(name, None)


def available_checks() -> List[str]:
    """Every registered check name, in canonical (registration) order."""
    return list(CHECKS)


def default_checks(engine: str = "symbolic") -> List[str]:
    """The default selection for ``engine`` (every in-default check)."""
    return [name for name, spec in CHECKS.items()
            if spec.in_default and spec.supported_by(engine)]


def supported_checks(engine: str) -> List[str]:
    """Every check the given built-in engine implements."""
    return [name for name, spec in CHECKS.items()
            if spec.supported_by(engine)]


def resolve_checks(checks: Union[None, str, Iterable[str]],
                   engine: str = "symbolic",
                   supported: Optional[Iterable[str]] = None) -> List[str]:
    """Validate and canonicalise a check selection for ``engine``.

    ``None`` selects the default set, :data:`ALL` every supported check;
    an iterable (or a comma-separated string, as on the CLI) is validated
    name by name: unknown names raise :class:`UnknownCheckError` with a
    did-you-mean suggestion, checks the engine does not implement raise
    :class:`UnknownCheckError` naming the engine.  ``supported``
    overrides the supported set (custom engines advertise their own via
    ``Engine.checks``).  The result is duplicate-free and in canonical
    registry order.
    """
    supported = list(supported_checks(engine) if supported is None
                     else supported)
    if checks is None:
        return [name for name in supported
                if name in CHECKS and CHECKS[name].in_default]
    if checks == ALL:
        return list(supported)
    if isinstance(checks, str):
        checks = [part.strip() for part in checks.split(",") if part.strip()]
    requested = list(checks)
    for name in requested:
        if name not in CHECKS:
            raise UnknownCheckError(name, available_checks())
        if name not in supported:
            raise UnknownCheckError(
                name, supported,
                message=f"check {name!r} is not supported by the "
                        f"{engine!r} engine (supported: "
                        f"{', '.join(supported)})")
    return [name for name in CHECKS if name in set(requested)]


# ----------------------------------------------------------------------
# Engine-side execution helpers (shared by every engine context)
# ----------------------------------------------------------------------
def group_by_phase(selected: Iterable[str]):
    """Group check names by their registry phase, preserving order."""
    groups: List[Tuple[str, List[str]]] = []
    for name in selected:
        phase = CHECKS[name].phase
        if groups and groups[-1][0] == phase:
            groups[-1][1].append(name)
        else:
            groups.append((phase, [name]))
    return groups


def apply_check(context: object, spec: CheckSpec, report: object,
                engine: str) -> None:
    """Run one check against an engine context.

    A spec's generic ``apply`` takes precedence -- that is what makes
    ``register_check(..., replace=True)`` actually override a built-in
    check; without one, the context's bound ``_check_<name>`` method
    runs.  Both built-in engines dispatch through here, so the
    preference order can never diverge between them.
    """
    if spec.apply is not None:
        spec.apply(context, report)
        return
    method = getattr(context, f"_check_{spec.name}", None)
    if method is None:  # pragma: no cover - resolve_checks filters these
        raise ValueError(
            f"check {spec.name!r} has no {engine} implementation")
    method(report)


# ----------------------------------------------------------------------
# The built-in checks (the paper's Sections 5.1-5.4 plus liveness)
# ----------------------------------------------------------------------
register_check(CheckSpec(
    name="consistency",
    phase="T+C",
    description="boundedness and consistent state assignment along the "
                "reachable states (Section 5.1)"))
register_check(CheckSpec(
    name="safeness",
    phase="T+C",
    description="1-boundedness of every place (Section 5.1)"))
register_check(CheckSpec(
    name="persistency",
    phase="NI-p",
    description="non-input signal and transition persistency "
                "(Figure 6, arbitration places tolerated)"))
register_check(CheckSpec(
    name="fake_conflicts",
    phase="NI-p",
    description="freedom from fake (non-behavioural) conflicts "
                "(Section 5.4)"))
register_check(CheckSpec(
    name="csc",
    phase="CSC",
    description="Complete and Unique State Coding via excitation/"
                "quiescent regions (Section 5.3)"))
register_check(CheckSpec(
    name="reducibility",
    phase="CSC",
    description="CSC-reducibility: determinism, commutativity and "
                "freedom from mutually complementary input sequences"))
register_check(CheckSpec(
    name="liveness",
    phase="live",
    description="deadlock freedom and reversibility extras",
    engines=("symbolic",),
    in_default=False))
