"""The lease journal of the sweep fabric.

A :class:`LeaseStore` is the :class:`~repro.runner.store.RunStore`'s
sibling: an append-only JSONL journal (``leases.jsonl``) living in a
lease directory, recording every ``claim``, ``renew`` and ``release``
of a sweep entry.  A lease grants one holder the right to compute one
entry until a *monotonic deadline*; a holder that keeps working renews
before the deadline, a holder that finishes releases with the entry's
outcome, and a holder that dies simply stops renewing -- the lease
expires and the entry becomes claimable again, which is the whole
work-stealing contract: a dead or wedged worker's entries are
automatically re-issued, no operator intervention required.

The journal shares the RunStore's crash posture: corrupt lines (the
truncated trailing record a killed coordinator leaves behind) are
skipped with a :class:`LeaseStoreWarning` on load and dropped for good
by :meth:`LeaseStore.compact`.  Replaying the journal reconstructs the
active-lease table exactly, so a restarted coordinator refuses to
double-issue entries that are still validly leased elsewhere.

Nothing in this module may influence verdicts: lease records carry
entry *identity* (name + fingerprint key) and scheduling state only,
and the analyzer's RA205 rule keeps lease metadata out of fingerprint
material and stable views.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

LEASES_FILE = "leases.jsonl"

#: Journal operations, in lifecycle order.
LEASE_OPS = ("claim", "renew", "release")


class LeaseStoreWarning(UserWarning):
    """A non-fatal lease-journal problem (e.g. a corrupt line skipped)."""


@dataclass(frozen=True)
class Lease:
    """One granted lease: the right to compute ``key`` until ``deadline``.

    ``key`` identifies the sweep entry (the runner uses
    ``name::fingerprint``); ``token`` is unique per grant, so a stale
    holder whose lease expired and was re-claimed cannot release the
    new holder's lease.  ``deadline`` is a :func:`time.monotonic`
    instant.
    """

    key: str
    name: str
    holder: str
    token: int
    deadline: float

    def expired(self, now: Optional[float] = None) -> bool:
        """True when the lease's deadline has passed."""
        now = time.monotonic() if now is None else now
        return now > self.deadline

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "name": self.name,
            "holder": self.holder,
            "token": self.token,
            "deadline": self.deadline,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Lease":
        return cls(
            key=str(data["key"]),
            name=str(data["name"]),
            holder=str(data["holder"]),
            token=int(data["token"]),
            deadline=float(data["deadline"]))


class LeaseStore:
    """JSONL-backed journal of sweep-entry leases."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, LEASES_FILE)
        #: key -> the currently active lease (claimed or renewed, not
        #: yet released).  Expiry is evaluated lazily against ``now``.
        self._active: Dict[str, Lease] = {}
        #: Corrupt journal lines skipped by the last load; ``compact()``
        #: repairs the file.
        self.skipped_lines = 0
        #: Claims that displaced an expired lease (work stealing).
        self.reclaimed = 0
        self._sequence = 0
        self._load()

    # ------------------------------------------------------------------
    # Journal replay
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    op = record["op"]
                    if op not in LEASE_OPS:
                        raise ValueError(f"unknown lease op {op!r}")
                    lease = Lease.from_dict(record)
                except (ValueError, TypeError, KeyError):
                    # The killed-coordinator state: a trailing record cut
                    # mid-write.  Never fatal -- resuming from what did
                    # land is the point.
                    self.skipped_lines += 1
                    warnings.warn(
                        f"{self.path}:{number}: skipping corrupt lease "
                        f"record (interrupted write?); compact() repairs "
                        f"the file", LeaseStoreWarning, stacklevel=2)
                    continue
                self._sequence = max(self._sequence, lease.token)
                if op == "release":
                    current = self._active.get(lease.key)
                    if current is not None and current.token == lease.token:
                        del self._active[lease.key]
                else:
                    self._active[lease.key] = lease

    def __len__(self) -> int:
        return len(self._active)

    def _append(self, op: str, lease: Lease, **extra: object) -> None:
        record = lease.to_dict()
        record["op"] = op
        record.update(extra)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    # Lease protocol
    # ------------------------------------------------------------------
    def holder_of(self, key: str,
                  now: Optional[float] = None) -> Optional[Lease]:
        """The *valid* (unexpired) lease on ``key``, or ``None``."""
        lease = self._active.get(key)
        if lease is None or lease.expired(now):
            return None
        return lease

    def claimable(self, key: str, now: Optional[float] = None) -> bool:
        """True when ``key`` has no valid lease (free or expired)."""
        return self.holder_of(key, now) is None

    def claim(self, key: str, name: str, holder: str, duration: float,
              now: Optional[float] = None) -> Optional[Lease]:
        """Claim ``key`` for ``duration`` seconds; ``None`` when another
        holder's lease is still valid.

        Claiming over an *expired* lease succeeds -- that is the
        work-stealing path -- and is counted in :attr:`reclaimed`.
        """
        now = time.monotonic() if now is None else now
        current = self._active.get(key)
        if current is not None:
            if not current.expired(now):
                return None
            self.reclaimed += 1
        self._sequence += 1
        lease = Lease(key=key, name=name, holder=holder,
                      token=self._sequence, deadline=now + duration)
        self._append("claim", lease)
        self._active[key] = lease
        return lease

    def renew(self, lease: Lease, duration: float,
              now: Optional[float] = None) -> Optional[Lease]:
        """Extend ``lease`` by ``duration`` from ``now``; ``None`` when
        the lease is no longer current (expired-and-reclaimed, or
        released)."""
        now = time.monotonic() if now is None else now
        current = self._active.get(lease.key)
        if current is None or current.token != lease.token:
            return None
        if current.expired(now):
            return None
        renewed = Lease(key=lease.key, name=lease.name,
                        holder=lease.holder, token=lease.token,
                        deadline=now + duration)
        self._append("renew", renewed)
        self._active[lease.key] = renewed
        return renewed

    def release(self, lease: Lease, outcome: str,
                now: Optional[float] = None) -> bool:
        """Release ``lease``, recording the entry's ``outcome``.

        Returns ``False`` -- and records nothing -- when the lease is no
        longer valid: the token was superseded by a re-claim, or the
        deadline passed before the holder got here.  A ``False`` return
        is the stale-holder signal: the caller's result must be
        discarded, because the entry either was or will be re-issued.
        An invalidated (expired) lease is dropped from the active table
        so the entry is immediately claimable again.
        """
        now = time.monotonic() if now is None else now
        current = self._active.get(lease.key)
        if current is None or current.token != lease.token:
            return False
        if current.expired(now):
            del self._active[lease.key]
            return False
        self._append("release", current, outcome=outcome)
        del self._active[lease.key]
        return True

    def expired_leases(self, now: Optional[float] = None) -> List[Lease]:
        """Active-table leases whose deadline has passed (claimable)."""
        now = time.monotonic() if now is None else now
        return [lease for lease in self._active.values()
                if lease.expired(now)]

    def active_leases(self) -> List[Lease]:
        """Every lease in the active table, expired or not."""
        return list(self._active.values())

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Rewrite the journal keeping one ``claim`` record per active
        lease, dropping corrupt lines and resolved histories."""
        with open(self.path + ".tmp", "w", encoding="utf-8") as handle:
            for key in sorted(self._active):
                record = self._active[key].to_dict()
                record["op"] = "claim"
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(self.path + ".tmp", self.path)
        self.skipped_lines = 0
