"""Fault-tolerant sweep fabric: leases, retry policy, coordinator.

The fabric layer turns the statically sharded sweep runner into an
elastic, failure-tolerant fleet primitive:

* :mod:`repro.fabric.policy` -- :class:`~repro.fabric.policy.RetryPolicy`,
  a frozen, serialisable retry/backoff policy with deterministic seeded
  jitter (also reused by the serve client's opt-in retry);
* :mod:`repro.fabric.leases` -- :class:`~repro.fabric.leases.LeaseStore`,
  an append-only JSONL journal of claim/renew/release records with
  monotonic deadlines; expired leases become claimable again, so a dead
  or wedged worker's entries are automatically re-issued;
* :mod:`repro.fabric.coordinator` --
  :class:`~repro.fabric.coordinator.LeaseCoordinator`, the work-stealing
  dispatch loop replacing static ``--shard I/N`` round-robin: it claims
  leases over sweep entries, hands them to the existing executor
  backends longest-job-first, retries retryable statuses per policy and
  drains gracefully on SIGINT/SIGTERM.

None of this may leak into verdicts: lease, retry and fault metadata
ride :attr:`~repro.runner.results.EntryResult.provenance` (stripped
from stable views) and the analyzer's RA205 rule keeps it out of
fingerprint material.
"""

from repro.fabric.policy import RetryPolicy, RetrySpecError, parse_retry_spec
from repro.fabric.leases import Lease, LeaseStore, LeaseStoreWarning
from repro.fabric.coordinator import LeaseCoordinator

__all__ = [
    "RetryPolicy",
    "RetrySpecError",
    "parse_retry_spec",
    "Lease",
    "LeaseStore",
    "LeaseStoreWarning",
    "LeaseCoordinator",
]
