"""Retry policy of the sweep fabric (and the serve client).

:class:`RetryPolicy` is frozen, hashable and serialisable -- the same
contract as :class:`~repro.api.config.EngineConfig` -- so a policy can
be parsed once from a ``--retry`` spec, shipped around and compared.
Backoff is exponential with *deterministic seeded jitter*: the jitter
fraction for a given ``(seed, key, attempt)`` comes from a SHA-256
draw, never from :mod:`random`, so two runs of the same plan back off
identically (and the chaos gate's timing stays reproducible in shape
even though wall clock never enters stable output).

Which statuses retry is part of the policy: ``error`` and ``timeout``
records carry no verdict, so re-running them can only help; ``ok`` and
``mismatch`` *are* verdicts and must never be retried -- a mismatch is
a result, not a failure.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

#: Entry statuses that are retryable by default: both mean "no verdict
#: was produced", never "the verdict was bad".
DEFAULT_RETRY_STATUSES = ("error", "timeout")

#: Scale of the 64-bit hash prefix the jitter draw is taken from.
_HASH_SPAN = float(2 ** 64)


class RetrySpecError(ValueError):
    """A ``--retry`` spec string does not parse."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    ``max_attempts`` counts total attempts (1 = never retry).  The
    delay before attempt ``n`` (n >= 2) is
    ``min(base_delay * multiplier**(n - 2), max_delay)`` scaled by a
    seeded jitter factor in ``[1 - jitter, 1]``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    retry_statuses: Tuple[str, ...] = field(
        default=DEFAULT_RETRY_STATUSES)

    def __post_init__(self) -> None:
        object.__setattr__(self, "retry_statuses",
                           tuple(self.retry_statuses))
        if self.max_attempts < 1:
            raise RetrySpecError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise RetrySpecError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise RetrySpecError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise RetrySpecError(
                f"jitter must be in [0, 1], got {self.jitter}")
        for status in self.retry_statuses:
            if status in ("ok", "mismatch"):
                raise RetrySpecError(
                    f"status {status!r} is a verdict and can never be "
                    f"retryable")

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def retryable(self, status: str) -> bool:
        """True when ``status`` is eligible for another attempt."""
        return status in self.retry_statuses

    def should_retry(self, status: str, attempt: int) -> bool:
        """True when attempt number ``attempt`` (1-based) of an entry
        that ended in ``status`` should be followed by another."""
        return self.retryable(status) and attempt < self.max_attempts

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before attempt ``attempt`` (2-based).

        Deterministic for a given ``(seed, key, attempt)``: the jitter
        factor is a SHA-256 draw, not :mod:`random`, so backoff
        schedules agree across workers and machines.
        """
        if attempt <= 1:
            return 0.0
        delay = min(self.base_delay * self.multiplier ** (attempt - 2),
                    self.max_delay)
        if self.jitter > 0.0:
            digest = hashlib.sha256(
                f"{self.seed}|{key}|{attempt}".encode("utf-8")).digest()
            draw = int.from_bytes(digest[:8], "big") / _HASH_SPAN
            delay *= 1.0 - self.jitter * draw
        return delay

    # ------------------------------------------------------------------
    # Round-trip schema
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
            "seed": self.seed,
            "retry_statuses": list(self.retry_statuses),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RetryPolicy":
        return cls(
            max_attempts=int(data.get("max_attempts", 3)),
            base_delay=float(data.get("base_delay", 0.05)),
            multiplier=float(data.get("multiplier", 2.0)),
            max_delay=float(data.get("max_delay", 2.0)),
            jitter=float(data.get("jitter", 0.5)),
            seed=int(data.get("seed", 0)),
            retry_statuses=tuple(
                data.get("retry_statuses") or DEFAULT_RETRY_STATUSES))


#: Spec keys of :func:`parse_retry_spec` mapped to dataclass fields.
_SPEC_KEYS = {
    "attempts": "max_attempts",
    "base": "base_delay",
    "multiplier": "multiplier",
    "max": "max_delay",
    "jitter": "jitter",
    "seed": "seed",
}


def parse_retry_spec(spec: str) -> RetryPolicy:
    """Parse a ``--retry`` spec string.

    Comma-separated ``key=value`` pairs: ``attempts`` (int),
    ``base``/``max`` (seconds), ``multiplier``, ``jitter`` (fraction in
    [0, 1]) and ``seed`` (int).  Example:
    ``attempts=4,base=0.05,max=1,jitter=0.5,seed=7``.
    """
    kwargs: Dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise RetrySpecError(
                f"bad retry spec part {part!r}; expected key=value")
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key not in _SPEC_KEYS:
            raise RetrySpecError(
                f"unknown retry spec key {key!r}; known: "
                f"{', '.join(_SPEC_KEYS)}")
        target = _SPEC_KEYS[key]
        try:
            if target in ("max_attempts", "seed"):
                kwargs[target] = int(value)
            else:
                kwargs[target] = float(value)
        except ValueError:
            raise RetrySpecError(
                f"bad value for {key!r} in retry spec: {value!r}")
    return RetryPolicy(**kwargs)
