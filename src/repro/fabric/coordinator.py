"""The lease-based sweep coordinator: work stealing over sweep entries.

:class:`LeaseCoordinator` replaces the static ``--shard I/N``
round-robin with an elastic dispatch loop.  Where
:class:`~repro.runner.runner.SweepRunner` hands a backend its fixed
slice once, the coordinator runs *rounds*: each round claims leases
over every entry still pending (longest-job-first, using the duration
history already in the :class:`~repro.runner.store.RunStore`), hands
the claimed batch to the ordinary
:class:`~repro.runner.backends.ExecutorBackend`, and releases each
lease as its result lands.  Entries whose result was retryable
(``error``/``timeout``) are re-issued in a later round under the
:class:`~repro.fabric.policy.RetryPolicy`'s backoff; entries whose
lease was lost -- a holder that stopped renewing, a store write torn
mid-append -- are re-issued once the lease expires, which is the
work-stealing guarantee: a dead worker's entries never strand.

Determinism survives all of it: verification is a pure function of the
task fingerprint, so *when* and *how often* an entry runs cannot change
its verdict, retry/lease bookkeeping rides only
:attr:`~repro.runner.results.EntryResult.provenance` (stripped from
stable views; analyzer rule RA205), and the sweep gate's chaos leg pins
byte-identical stable JSON between a fault-injected lease sweep and a
clean serial one.

SIGINT/SIGTERM drain gracefully: the current round finishes, no new
round starts, every already-finished entry is kept (persisted in the
RunStore the moment it landed) and the entries never run are reported
as ``error`` records naming the drain.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import replace
from typing import Dict, List, Optional, Union

from repro import obs
from repro.faults import FaultPlan, plan_from_config, torn_write
from repro.fabric.leases import Lease, LeaseStore
from repro.fabric.policy import RetryPolicy
from repro.runner import backends as backend_registry
from repro.runner.backends import ExecutorBackend
from repro.runner.plan import SweepPlan, SweepTask
from repro.runner.results import EntryResult, SweepResult
from repro.runner.runner import ProgressCallback
from repro.runner.store import RunStore

#: File the coordinator snapshots its metrics registry into (inside the
#: lease directory); the sweep gate's chaos leg reads it to assert every
#: injected fault kind actually exercised its recovery path.
METRICS_FILE = "metrics.json"


def lease_key(task: SweepTask) -> str:
    """The lease key of a sweep entry: name + content fingerprint."""
    return f"{task.name}::{task.fingerprint}"


class LeaseCoordinator:
    """Run one sweep plan through lease-based work stealing.

    Parameters
    ----------
    plan:
        The sweep plan (its shard is honoured, so lease coordination
        composes with sharding; the common case is the full plan).
    leases:
        The :class:`~repro.fabric.leases.LeaseStore` (or its directory)
        entries are claimed from.  Shared state: a second coordinator
        pointed at the same directory refuses entries validly leased by
        the first.
    store:
        Optional result cache, exactly as for the plain runner; also
        the source of the duration history behind longest-job-first
        issue order.
    policy:
        The :class:`~repro.fabric.policy.RetryPolicy`; defaults to
        3 attempts with seeded-jitter exponential backoff.
    backend:
        Executor backend name or instance (the plan's default when
        ``None``) -- the coordinator dispatches through the ordinary
        backend protocol, it does not replace it.
    lease_duration:
        Seconds a claim/renewal is valid for.  In-flight leases are
        renewed every quarter duration, so only a holder that stops
        renewing (crash, wedge, injected stall) lets its lease expire.
    """

    def __init__(self, plan: SweepPlan,
                 leases: Union[LeaseStore, str],
                 store: Optional[RunStore] = None,
                 policy: Optional[RetryPolicy] = None,
                 backend: Union[ExecutorBackend, str, None] = None,
                 progress: Optional[ProgressCallback] = None,
                 lease_duration: float = 30.0,
                 holder: Optional[str] = None) -> None:
        self.plan = plan
        self.leases = (leases if isinstance(leases, LeaseStore)
                       else LeaseStore(leases))
        self.store = store
        self.policy = policy or RetryPolicy()
        self.backend = backend_registry.resolve(backend or plan.backend)
        self.progress = progress
        if lease_duration <= 0:
            raise ValueError(
                f"lease_duration must be positive, got {lease_duration}")
        self.lease_duration = float(lease_duration)
        self.holder = holder or f"coordinator-{os.getpid()}"
        self.metrics = obs.MetricsRegistry()
        self._emit_lock = threading.Lock()
        self._draining = threading.Event()
        self._rounds = 0

    # ------------------------------------------------------------------
    # Drain control
    # ------------------------------------------------------------------
    def request_drain(self) -> None:
        """Stop issuing new rounds; the current round finishes normally."""
        self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def _install_signal_handlers(self):
        """SIGINT/SIGTERM -> drain.  Only possible from the main thread;
        elsewhere (tests, embedded use) drain via :meth:`request_drain`."""
        previous = {}
        def handler(signum, frame):
            self.request_drain()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, handler)
            except ValueError:  # not the main thread
                break
        return previous

    @staticmethod
    def _restore_signal_handlers(previous) -> None:
        for signum, old in previous.items():
            signal.signal(signum, old)

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------
    def run(self) -> SweepResult:
        tasks = self.plan.shard_tasks()
        results: List[Optional[EntryResult]] = [None] * len(tasks)
        pending: List[int] = []
        # Cache triage first, exactly like the plain runner: cached
        # verdicts are never leased at all.
        for position, task in enumerate(tasks):
            cached = (self.store.lookup(task.name, task.fingerprint)
                      if self.store is not None else None)
            if cached is not None:
                results[position] = cached
                self._report_progress(cached)
            else:
                pending.append(position)

        # The chaos dial rides the task configs (an execution knob); all
        # tasks of one plan share it.
        fault_plan = (plan_from_config(tasks[0].config.to_dict())
                      if tasks else None)
        previous_handlers = self._install_signal_handlers()
        #: Completed attempts per position (retry-policy accounting).
        attempts: Dict[int, int] = {p: 0 for p in pending}
        #: Dispatches per position (fault plans fire on dispatch 1 only).
        dispatches: Dict[int, int] = {p: 0 for p in pending}
        #: Not-before instants of retry backoff.
        not_before: Dict[int, float] = {}
        try:
            with obs.span("fabric.sweep", backend=self.backend.name,
                          entries=len(tasks)):
                while pending and not self.draining:
                    pending = self._run_round(
                        tasks, results, pending, attempts, dispatches,
                        not_before, fault_plan)
        finally:
            self._restore_signal_handlers(previous_handlers)
        for position in pending:
            if results[position] is not None:
                # A retryable attempt already landed; drain keeps it as
                # the entry's final word rather than inventing one.
                self._report_progress(results[position])
                continue
            # Drained before execution: an error record keeps the sweep
            # result complete without faking a verdict.
            task = tasks[position]
            result = EntryResult(
                name=task.name, status="error",
                engine=task.config.engine, fingerprint=task.fingerprint,
                error="sweep drained before this entry ran "
                      "(lease coordinator stopped)")
            result.provenance = self._provenance(
                attempt=dispatches.get(position, 0))
            results[position] = result
            self._report_progress(result)
        self._write_metrics()
        return SweepResult(
            engine=self.plan.engine, jobs=self.plan.jobs,
            shard=str(self.plan.shard), backend=self.backend.name,
            results=list(results))

    def _run_round(self, tasks, results, pending, attempts, dispatches,
                   not_before, fault_plan) -> List[int]:
        """Claim + dispatch one round; returns the next pending list."""
        self._rounds += 1
        now = time.monotonic()
        ready = [p for p in pending if not_before.get(p, 0.0) <= now]
        if not ready:
            # Everything pending is backing off; sleep to the earliest.
            wake = min(not_before[p] for p in pending)
            time.sleep(min(max(wake - now, 0.0), 1.0))
            return pending
        claimed: Dict[int, Lease] = {}
        batch: List[backend_registry.WorkItem] = []
        for position in self._issue_order(tasks, ready):
            task = tasks[position]
            lease = self.leases.claim(
                lease_key(task), task.name, self.holder,
                self.lease_duration)
            if lease is None:
                continue  # validly leased elsewhere; steal after expiry
            self.metrics.counter("fabric.lease.claims").add(1)
            claimed[position] = lease
            dispatches[position] += 1
            batch.append((position, self._dispatch_task(
                task, dispatches[position], fault_plan)))
        self.metrics.counter("fabric.lease.reclaims").add(
            self.leases.reclaimed - self._reclaims_seen())
        if not batch:
            # All ready entries are leased by someone else: wait a beat
            # for those leases to expire or release.
            time.sleep(min(self.lease_duration / 4.0, 0.05))
            return pending
        done: List[int] = []
        with obs.span("fabric.round", batch=len(batch)):
            stop_renewals = self._start_renewals(claimed, fault_plan, tasks)
            try:
                self.backend.execute(
                    batch, self.plan.jobs,
                    self._make_emit(tasks, results, claimed, attempts,
                                    dispatches, not_before, fault_plan,
                                    done))
            finally:
                stop_renewals()
        return [p for p in pending if p not in done]

    def _reclaims_seen(self) -> int:
        return int(self.metrics.counter("fabric.lease.reclaims").value)

    def _issue_order(self, tasks, ready: List[int]) -> List[int]:
        """Longest-job-first over the store's duration history.

        Entries with no history sort first (potentially long), then
        known durations descending; plan position breaks ties, so the
        order is deterministic for a given store state.
        """
        def sort_key(position: int):
            hint = (self.store.duration_hint(tasks[position].name)
                    if self.store is not None else None)
            if hint is None:
                return (0, 0.0, position)
            return (1, -hint, position)
        return sorted(ready, key=sort_key)

    def _dispatch_task(self, task: SweepTask, dispatch: int,
                       fault_plan: Optional[FaultPlan]) -> SweepTask:
        """The task as actually handed to the backend for this dispatch:
        provenance stamped, fault plan re-keyed to the attempt number
        (so injections fire on the first dispatch only)."""
        config = task.config
        if fault_plan is not None:
            config = config.with_overrides(
                fault_plan=fault_plan.for_attempt(dispatch).to_spec())
        return replace(task, config=config,
                       provenance=self._provenance(attempt=dispatch))

    def _provenance(self, attempt: int) -> Dict[str, str]:
        return {"backend": self.backend.name,
                "shard": str(self.plan.shard),
                "holder": self.holder,
                "attempt": str(attempt)}

    # ------------------------------------------------------------------
    # Renewals
    # ------------------------------------------------------------------
    def _start_renewals(self, claimed: Dict[int, Lease], fault_plan,
                        tasks):
        """Renew in-flight leases every quarter duration on a helper
        thread; returns the stop function.

        A ``stall``-injected entry is skipped -- its renewal loop has
        notionally wedged -- so its lease genuinely expires and the
        stale-release path fires.
        """
        stop = threading.Event()
        def loop() -> None:
            interval = self.lease_duration / 4.0
            while not stop.wait(interval):
                with self._emit_lock:
                    for position, lease in list(claimed.items()):
                        if self._stalled(tasks[position], fault_plan):
                            continue
                        renewed = self.leases.renew(
                            lease, self.lease_duration)
                        if renewed is not None:
                            claimed[position] = renewed
                            self.metrics.counter(
                                "fabric.lease.renewals").add(1)
        thread = threading.Thread(target=loop, name="lease-renewals",
                                  daemon=True)
        thread.start()
        def stopper() -> None:
            stop.set()
            thread.join()
        return stopper

    @staticmethod
    def _stalled(task: SweepTask, fault_plan: Optional[FaultPlan]) -> bool:
        return (fault_plan is not None
                and fault_plan.decides("stall", task.fingerprint))

    @staticmethod
    def _truncates(task: SweepTask,
                   fault_plan: Optional[FaultPlan]) -> bool:
        return (fault_plan is not None
                and fault_plan.decides("truncate", task.fingerprint))

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _make_emit(self, tasks, results, claimed, attempts, dispatches,
                   not_before, fault_plan, done):
        def emit(position: int, result: EntryResult) -> None:
            with self._emit_lock:
                self._collect(position, result, tasks, results, claimed,
                              attempts, dispatches, not_before,
                              fault_plan, done)
        return emit

    def _collect(self, position, result, tasks, results, claimed,
                 attempts, dispatches, not_before, fault_plan,
                 done) -> None:
        task = tasks[position]
        lease = claimed.pop(position)
        first_dispatch = dispatches[position] == 1
        if first_dispatch and self._truncates(task, fault_plan):
            # Crash-mid-write: the record is torn on disk, the result
            # never reaches the in-memory store, and the lease is left
            # unreleased -- it expires, and a later round steals it.
            if self.store is not None:
                record = result.to_dict()
                record["stored_at"] = time.time()
                torn_write(self.store.path, record)
            self.metrics.counter("fabric.retry.truncated").add(1)
            obs.event("fault-injected", kind="truncate", entry=task.name)
            return
        if first_dispatch and self._stalled(task, fault_plan):
            # The holder's renewal loop wedged: by the time it releases,
            # the (un-renewed) lease has expired.  The store rejects the
            # stale release, the result is discarded, the entry re-runs.
            released = self.leases.release(
                lease, result.status, now=lease.deadline + 1.0)
            assert not released
            self.metrics.counter("fabric.retry.stalled").add(1)
            obs.event("fault-injected", kind="stall", entry=task.name)
            return
        released = self.leases.release(lease, result.status)
        if not released:
            # Lease genuinely lost mid-flight (expired and possibly
            # re-claimed): this holder's result must be discarded --
            # whoever holds the lease now owns the entry.
            self.metrics.counter("fabric.lease.lost").add(1)
            return
        self.metrics.counter("fabric.lease.releases").add(1)
        result.provenance = self._provenance(attempt=dispatches[position])
        attempts[position] += 1
        if self.store is not None:
            self.store.put(result)
        if self.policy.should_retry(result.status, attempts[position]):
            if result.status == "timeout":
                self.metrics.counter("fabric.retry.timeout").add(1)
            else:
                self.metrics.counter("fabric.retry.error").add(1)
            delay = self.policy.delay_for(attempts[position] + 1,
                                          task.fingerprint)
            not_before[position] = time.monotonic() + delay
            results[position] = result  # best-so-far, if retries exhaust
            obs.event("retry-scheduled", entry=task.name,
                      status=result.status, attempt=attempts[position])
            return
        results[position] = result
        done.append(position)
        self._report_progress(result)

    def _report_progress(self, result: EntryResult) -> None:
        if self.progress is not None:
            self.progress(result)

    # ------------------------------------------------------------------
    # Metrics snapshot
    # ------------------------------------------------------------------
    def _write_metrics(self) -> None:
        """Snapshot the fabric metrics into the lease directory.

        The chaos gate reads this file to assert every injected fault
        kind surfaced in ``fabric.retry.*``; operators read it to see
        how eventful a sweep was."""
        snapshot = {
            "rounds": self._rounds,
            "reclaimed": self.leases.reclaimed,
            "metrics": self.metrics.snapshot(),
        }
        path = os.path.join(self.leases.directory, METRICS_FILE)
        with open(path + ".tmp", "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(path + ".tmp", path)
