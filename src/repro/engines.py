"""The verification-engine protocol and registry.

The paper's pipeline exists in two implementations -- the symbolic BDD
engine (:mod:`repro.core`) and the explicit enumeration oracle
(:mod:`repro.sg`).  This module gives them (and any future backend: a
hybrid engine, a remote one, ...) a single plug-in point::

    from repro import engines

    engines.available()                  # ["symbolic", "explicit", ...]
    engine = engines.get("symbolic")
    outcome = engine.run(stg, config, checks)

    engines.register("hybrid", MyHybridEngine())   # new backends plug in

Nothing outside this module hard-codes engine knowledge: the CLI, the
sweep runner and the corpus batch-check all go through
:func:`repro.api.run`, which dispatches here by
:attr:`~repro.api.config.EngineConfig.engine` name.  Adding a backend is
therefore one ``register`` call -- no CLI or runner changes.

An engine is anything matching the :class:`Engine` protocol: a ``name``,
the ``checks`` it supports (names from :mod:`repro.api.checks`), and a
``run(stg, config, checks)`` returning an :class:`EngineRun`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

try:  # Protocol is 3.8+; keep a soft fallback for exotic interpreters
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from repro.api.errors import UnknownEngineError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, hints only
    from repro.api.config import EngineConfig
    from repro.core.pipeline import VerificationPipeline
    from repro.report import ImplementabilityReport
    from repro.stg.stg import STG


@dataclass
class EngineRun:
    """Everything one engine run produced.

    ``report`` is the verdict object every consumer reads;
    ``traversal`` carries the symbolic traversal statistics (``None`` on
    engines without a traversal) and ``pipeline`` exposes the symbolic
    intermediates (encoding, image, reachable BDD) for consumers that
    keep working after the check -- synthesis, liveness extras,
    witnesses -- without re-running the traversal.
    """

    report: "ImplementabilityReport"
    traversal: Optional[Dict[str, int]] = None
    pipeline: Optional["VerificationPipeline"] = None


@runtime_checkable
class Engine(Protocol):
    """The backend protocol: run selected checks on one specification."""

    name: str

    @property
    def checks(self) -> Sequence[str]:
        """Names of the property checks this engine implements."""
        ...  # pragma: no cover - protocol

    def run(self, stg: "STG", config: "EngineConfig",
            checks: Sequence[str]) -> EngineRun:
        """Verify ``stg`` under ``config`` running exactly ``checks``."""
        ...  # pragma: no cover - protocol


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Engine] = {}


def register(name: str, engine: Engine, replace: bool = False) -> Engine:
    """Register an engine under ``name`` (``replace=True`` to override)."""
    if name in _REGISTRY and not replace:
        raise ValueError(f"duplicate engine {name!r}")
    _REGISTRY[name] = engine
    return engine


def unregister(name: str) -> None:
    """Remove a registered engine (mainly for tests and plug-in teardown)."""
    _REGISTRY.pop(name, None)


def available() -> List[str]:
    """Every registered engine name, in registration order."""
    return list(_REGISTRY)


def get(name: str) -> Engine:
    """Look up an engine; unknown names raise :class:`UnknownEngineError`
    with a did-you-mean suggestion."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownEngineError(name, available()) from None


# ----------------------------------------------------------------------
# Built-in engines (adapters over repro.core / repro.sg)
# ----------------------------------------------------------------------
class SymbolicEngine:
    """The paper's contribution: symbolic BDD traversal (:mod:`repro.core`)."""

    name = "symbolic"

    @property
    def checks(self) -> List[str]:
        from repro.api.checks import supported_checks

        return supported_checks(self.name)

    def run(self, stg: "STG", config: "EngineConfig",
            checks: Sequence[str]) -> EngineRun:
        from repro.core.pipeline import VerificationPipeline

        pipeline = VerificationPipeline(
            stg,
            arbitration_places=config.arbitration_places,
            ordering=config.ordering,
            traversal_strategy=config.traversal_strategy,
            initial_values=config.initial_values_dict,
            commutativity_fallback_states=config.
            commutativity_fallback_states,
            deadline=config.deadline)
        if config.bdd_cache_dir:
            from repro.cache import BDDStore, bind_pipeline

            # One store object per cache directory, process-wide: the
            # serve daemon and thread-backend sweeps share it, so its
            # effectiveness counters aggregate across runs.
            bind_pipeline(pipeline, BDDStore.shared(config.bdd_cache_dir),
                          name=stg.name, config=config)
        report = pipeline.run(checks=list(checks))
        traversal = (pipeline.traversal_stats.to_dict()
                     if pipeline.traversal_ran else None)
        return EngineRun(report=report, traversal=traversal,
                         pipeline=pipeline)


class ExplicitEngine:
    """The enumeration baseline and testing oracle (:mod:`repro.sg`)."""

    name = "explicit"

    @property
    def checks(self) -> List[str]:
        from repro.api.checks import supported_checks

        return supported_checks(self.name)

    def run(self, stg: "STG", config: "EngineConfig",
            checks: Sequence[str]) -> EngineRun:
        from repro.sg.checker import ExplicitVerification

        context = ExplicitVerification(
            stg,
            initial_values=config.initial_values_dict,
            arbitration_places=config.arbitration_places,
            max_states=config.max_states,
            deadline=config.deadline)
        return EngineRun(report=context.run(checks=list(checks)))


register("symbolic", SymbolicEngine())
register("explicit", ExplicitEngine())
