"""Complex-gate and generalised C-element covers.

Two implementation styles are derived from the next-state functions:

* **complex gate** -- a single atomic gate computing the next-state
  function of the signal; the cover is an irredundant sum of products
  taken in the interval ``[on_set, on_set + dont_care]``;
* **generalised C-element (gC)** -- separate *set* and *reset* networks
  covering the excitation regions ``ER(a+)`` / ``ER(a-)``, with the
  storage element keeping the value in the quiescent regions.

Both are textbook constructions for speed-independent circuits on top of a
CSC-satisfying state graph (Chu 1987; Kishinevsky et al. 1993 -- the
paper's references [2] and [3]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bdd import Function
from repro.bdd.cover import cover_function, cube_to_string, isop
from repro.core.charfun import CharacteristicFunctions
from repro.core.encoding import SymbolicEncoding
from repro.synthesis.functions import (
    NextStateFunction,
    SynthesisError,
    derive_next_state_functions,
)

Cube = Dict[str, bool]


def _strip_prefix(cube: Cube, encoding: SymbolicEncoding) -> Cube:
    """Map BDD variable names back to signal names in a cube."""
    result = {}
    for variable, value in cube.items():
        if variable.startswith("s:"):
            result[variable[2:]] = value
        else:
            result[variable] = value
    return result


def _render_cover(cubes: List[Cube]) -> str:
    if not cubes:
        return "0"
    return " + ".join(cube_to_string(cube) for cube in cubes)


@dataclass
class ComplexGate:
    """A single-gate implementation of one non-input signal."""

    signal: str
    cover: List[Cube]
    cover_function: Function
    equation: str

    def __str__(self) -> str:
        return f"{self.signal} = {self.equation}"


@dataclass
class GeneralizedCElement:
    """A set/reset (gC) implementation of one non-input signal."""

    signal: str
    set_cover: List[Cube]
    reset_cover: List[Cube]
    set_function: Function
    reset_function: Function
    set_equation: str
    reset_equation: str

    def __str__(self) -> str:
        return (f"{self.signal}: set = {self.set_equation}; "
                f"reset = {self.reset_equation}")


def synthesize_complex_gate(encoding: SymbolicEncoding,
                            function: NextStateFunction) -> ComplexGate:
    """Extract a complex-gate cover from one next-state function."""
    if not function.is_well_defined:
        raise SynthesisError(
            f"signal {function.signal!r} violates CSC; cannot synthesise")
    upper = function.on_set | function.dont_care
    cubes = isop(function.on_set, upper)
    implementation = cover_function(function.on_set, cubes)
    named = [_strip_prefix(cube, encoding) for cube in cubes]
    return ComplexGate(
        signal=function.signal,
        cover=named,
        cover_function=implementation,
        equation=_render_cover(named),
    )


def synthesize_generalized_c_element(encoding: SymbolicEncoding,
                                     function: NextStateFunction
                                     ) -> GeneralizedCElement:
    """Extract set/reset covers (gC style) from one next-state function."""
    if not function.is_well_defined:
        raise SynthesisError(
            f"signal {function.signal!r} violates CSC; cannot synthesise")
    dont_care = function.dont_care
    set_upper = function.excitation_on | dont_care | function.on_set
    reset_upper = function.excitation_off | dont_care | function.off_set
    set_cubes = isop(function.excitation_on, set_upper)
    reset_cubes = isop(function.excitation_off, reset_upper)
    return GeneralizedCElement(
        signal=function.signal,
        set_cover=[_strip_prefix(c, encoding) for c in set_cubes],
        reset_cover=[_strip_prefix(c, encoding) for c in reset_cubes],
        set_function=cover_function(function.excitation_on, set_cubes),
        reset_function=cover_function(function.excitation_off, reset_cubes),
        set_equation=_render_cover(
            [_strip_prefix(c, encoding) for c in set_cubes]),
        reset_equation=_render_cover(
            [_strip_prefix(c, encoding) for c in reset_cubes]),
    )


def synthesize_complex_gates(encoding: SymbolicEncoding, reached: Function,
                             charfun: Optional[CharacteristicFunctions] = None,
                             signals: Optional[List[str]] = None
                             ) -> Dict[str, ComplexGate]:
    """Complex-gate implementations for every non-input signal."""
    from repro import obs

    with obs.span("synthesis", manager=encoding.manager,
                  style="complex-gate") as span:
        functions = derive_next_state_functions(encoding, reached, charfun,
                                                signals)
        gates = {signal: synthesize_complex_gate(encoding, function)
                 for signal, function in functions.items()}
        span.annotate(gates=len(gates))
    return gates


def synthesize_generalized_c_elements(encoding: SymbolicEncoding,
                                      reached: Function,
                                      charfun: Optional[CharacteristicFunctions] = None,
                                      signals: Optional[List[str]] = None
                                      ) -> Dict[str, GeneralizedCElement]:
    """gC implementations for every non-input signal."""
    from repro import obs

    with obs.span("synthesis", manager=encoding.manager,
                  style="gc-element") as span:
        functions = derive_next_state_functions(encoding, reached, charfun,
                                                signals)
        gates = {signal: synthesize_generalized_c_element(encoding, function)
                 for signal, function in functions.items()}
        span.annotate(gates=len(gates))
    return gates
