"""Independent verification of derived logic against the specification.

The covers produced by :mod:`repro.synthesis.complex_gate` are checked in
two ways:

1. **symbolically** -- the cover must contain the on-set and be disjoint
   from the off-set (interval correctness);
2. **by simulation over the explicit state graph** -- for every reachable
   state the gate output computed from the binary code must equal 1
   exactly when the specification requires the signal to be rising or
   stable high.  This closes the loop through a completely different code
   path (the explicit builder), so a systematic error in the symbolic
   region computation would be caught here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.encoding import SymbolicEncoding
from repro.sg.state import StateGraph
from repro.stg.stg import STG
from repro.synthesis.complex_gate import ComplexGate
from repro.synthesis.functions import NextStateFunction


@dataclass
class VerificationResult:
    """Outcome of the implementation-vs-specification comparison."""

    correct: bool
    symbolic_failures: List[str] = field(default_factory=list)
    simulation_failures: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        if self.correct:
            return "implementation matches the specification"
        problems = self.symbolic_failures + self.simulation_failures
        return "implementation errors: " + "; ".join(problems[:5])


def _required_value(graph: StateGraph, stg: STG, state, signal: str) -> bool:
    """The value the gate must drive at a state (next-state semantics)."""
    enabled = graph.enabled_transitions(state)
    rising = any(stg.label_of(t).signal == signal and stg.label_of(t).is_rising
                 for t in enabled)
    falling = any(stg.label_of(t).signal == signal and stg.label_of(t).is_falling
                  for t in enabled)
    if rising:
        return True
    if falling:
        return False
    return state.value_of(signal)


def verify_implementation(encoding: SymbolicEncoding, graph: StateGraph,
                          gates: Dict[str, ComplexGate],
                          functions: Optional[Dict[str, NextStateFunction]] = None
                          ) -> VerificationResult:
    """Check every derived complex gate symbolically and by simulation.

    ``functions`` (the next-state functions the gates were derived from)
    enables the symbolic interval check; the simulation check over the
    explicit state graph always runs.
    """
    stg = encoding.stg
    symbolic_failures: List[str] = []
    simulation_failures: List[str] = []

    if functions:
        for signal, gate in gates.items():
            function = functions.get(signal)
            if function is None:
                continue
            if not (function.on_set <= gate.cover_function):
                symbolic_failures.append(
                    f"{signal}: cover does not contain the on-set")
            if not gate.cover_function.disjoint(function.off_set):
                symbolic_failures.append(
                    f"{signal}: cover intersects the off-set")

    for state in graph.states:
        code = {s: state.value_of(s) for s in stg.signals}
        assignment = {encoding.signal_variable(s): v for s, v in code.items()}
        for signal, gate in gates.items():
            produced = gate.cover_function.evaluate(assignment)
            required = _required_value(graph, stg, state, signal)
            if produced != required:
                simulation_failures.append(
                    f"{signal} at code "
                    f"{state.code_string(stg.signals)}: produced "
                    f"{int(produced)}, required {int(required)}")

    return VerificationResult(
        not (symbolic_failures or simulation_failures),
        symbolic_failures, simulation_failures)
