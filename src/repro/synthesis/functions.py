"""Next-state functions of non-input signals.

For a non-input signal ``a`` of a consistent, CSC-satisfying state graph,
the next-state function maps every reachable binary code to the value the
circuit must drive:

* **on-set**  -- codes where the signal is excited to rise (``ER(a+)``) or
  stable at 1 (``QR(a+)``),
* **off-set** -- codes where it is excited to fall (``ER(a-)``) or stable
  at 0 (``QR(a-)``),
* **don't-care set** -- codes that are not reachable at all.

CSC is exactly the condition making on- and off-set disjoint, so the
derivation refuses to proceed (per signal) when they overlap -- the same
criterion the checker reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bdd import Function
from repro.core.charfun import CharacteristicFunctions
from repro.core.csc import compute_regions
from repro.core.encoding import SymbolicEncoding


class SynthesisError(Exception):
    """Raised when logic cannot be derived (CSC violation, no signals...)."""


@dataclass
class NextStateFunction:
    """On/off/don't-care sets of one non-input signal (over signal codes)."""

    signal: str
    on_set: Function
    off_set: Function
    dont_care: Function
    excitation_on: Function   # ER(a+): the set part of a gC implementation
    excitation_off: Function  # ER(a-): the reset part

    @property
    def is_well_defined(self) -> bool:
        """True when the on- and off-sets do not overlap (CSC for the signal)."""
        return self.on_set.disjoint(self.off_set)

    def value_at(self, code: Dict[str, bool],
                 encoding: SymbolicEncoding) -> Optional[bool]:
        """Required output value at a binary code (None on a don't-care)."""
        literals = {encoding.signal_variable(s): bool(v)
                    for s, v in code.items()}
        point = encoding.manager.cube(literals)
        if not (point & self.on_set).is_false():
            return True
        if not (point & self.off_set).is_false():
            return False
        return None


def derive_next_state_function(encoding: SymbolicEncoding, reached: Function,
                               charfun: CharacteristicFunctions,
                               signal: str) -> NextStateFunction:
    """Derive the next-state function of one non-input signal."""
    if encoding.stg.is_input(signal):
        raise SynthesisError(
            f"signal {signal!r} is an input; the environment drives it")
    regions = compute_regions(encoding, reached, charfun, signal)
    places = encoding.place_variables
    on_set = regions.er_plus | regions.qr_plus
    off_set = regions.er_minus | regions.qr_minus
    reachable_codes = reached.exist(places)
    dont_care = ~reachable_codes
    return NextStateFunction(
        signal=signal,
        on_set=on_set,
        off_set=off_set,
        dont_care=dont_care,
        excitation_on=regions.er_plus,
        excitation_off=regions.er_minus,
    )


def derive_next_state_functions(encoding: SymbolicEncoding, reached: Function,
                                charfun: Optional[CharacteristicFunctions] = None,
                                signals: Optional[List[str]] = None,
                                require_csc: bool = True,
                                require_consistency: bool = True
                                ) -> Dict[str, NextStateFunction]:
    """Next-state functions for every non-input signal (or a given list).

    With ``require_csc`` (default) a :class:`SynthesisError` is raised as
    soon as one signal has overlapping on/off sets; with it disabled the
    ill-defined functions are still returned (useful for diagnostics).
    With ``require_consistency`` (default) the reachable set is first
    checked for a consistent state assignment -- synthesising from an
    inconsistent specification would silently produce garbage.
    """
    charfun = charfun or CharacteristicFunctions(encoding)
    if require_consistency:
        from repro.core.consistency import check_consistency

        consistency = check_consistency(encoding, reached, charfun)
        if not consistency.consistent:
            raise SynthesisError(
                "the specification has an inconsistent state assignment "
                f"(signals {', '.join(consistency.violating_signals)}); "
                "refusing to derive logic from it")
    targets = signals if signals is not None else encoding.stg.noninput_signals
    if not targets:
        raise SynthesisError("the specification has no non-input signals")
    functions: Dict[str, NextStateFunction] = {}
    for signal in targets:
        function = derive_next_state_function(encoding, reached, charfun, signal)
        if require_csc and not function.is_well_defined:
            raise SynthesisError(
                f"signal {signal!r} violates CSC; its next-state function "
                f"is not well defined")
        functions[signal] = function
    return functions
