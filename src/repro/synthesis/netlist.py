"""Netlist emission for the derived logic.

Turns the gates produced by :mod:`repro.synthesis.complex_gate` into a
small structural netlist, in two flavours:

* a plain-text netlist listing one equation per non-input signal (complex
  gates) or one set/reset pair per signal (generalised C-elements);
* a behavioural Verilog module where each complex gate becomes a
  continuous assignment (combinational feedback is intentional: that is
  what a complex-gate speed-independent implementation is) and each gC
  element becomes a set/reset always-block.

The emitted text is meant for inspection and for hand-off to downstream
technology mapping; it is deliberately free of tool-specific pragmas.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bdd.cover import cube_to_string
from repro.stg.stg import STG
from repro.synthesis.complex_gate import ComplexGate, GeneralizedCElement


def _verilog_cover(cover: List[Dict[str, bool]]) -> str:
    """Render a cube list as a Verilog sum-of-products expression."""
    if not cover:
        return "1'b0"
    terms = []
    for cube in cover:
        if not cube:
            return "1'b1"
        literals = [name if value else f"~{name}"
                    for name, value in sorted(cube.items())]
        terms.append(" & ".join(literals))
    return " | ".join(f"({term})" for term in terms)


def complex_gate_netlist(stg: STG, gates: Dict[str, ComplexGate]) -> str:
    """Plain-text netlist: one next-state equation per non-input signal."""
    lines = [f"# complex-gate netlist for {stg.name}",
             f"# inputs : {' '.join(stg.inputs)}",
             f"# outputs: {' '.join(stg.outputs)}"]
    if stg.internals:
        lines.append(f"# internal: {' '.join(stg.internals)}")
    for signal in stg.noninput_signals:
        gate = gates.get(signal)
        if gate is None:
            continue
        lines.append(f"{signal} = {gate.equation}")
    return "\n".join(lines) + "\n"


def gc_netlist(stg: STG, elements: Dict[str, GeneralizedCElement]) -> str:
    """Plain-text netlist of generalised C-elements (set / reset covers)."""
    lines = [f"# generalised C-element netlist for {stg.name}"]
    for signal in stg.noninput_signals:
        element = elements.get(signal)
        if element is None:
            continue
        lines.append(f"{signal}.set   = {element.set_equation}")
        lines.append(f"{signal}.reset = {element.reset_equation}")
    return "\n".join(lines) + "\n"


def to_verilog(stg: STG, gates: Dict[str, ComplexGate],
               module_name: str | None = None) -> str:
    """Behavioural Verilog with one continuous assignment per complex gate."""
    module = module_name or _identifier(stg.name)
    inputs = [_identifier(s) for s in stg.inputs]
    outputs = [_identifier(s) for s in stg.outputs]
    internals = [_identifier(s) for s in stg.internals]
    ports = ", ".join(inputs + outputs)
    lines = [f"// Derived from STG {stg.name!r} (complex-gate implementation).",
             f"module {module} ({ports});"]
    for name in inputs:
        lines.append(f"  input  {name};")
    for name in outputs:
        lines.append(f"  output {name};")
    for name in internals:
        lines.append(f"  wire   {name};")
    lines.append("")
    for signal in stg.noninput_signals:
        gate = gates.get(signal)
        if gate is None:
            continue
        renamed_cover = [
            {_identifier(name): value for name, value in cube.items()}
            for cube in gate.cover
        ]
        lines.append(f"  assign {_identifier(signal)} = "
                     f"{_verilog_cover(renamed_cover)};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def to_verilog_gc(stg: STG, elements: Dict[str, GeneralizedCElement],
                  module_name: str | None = None) -> str:
    """Behavioural Verilog where each signal is a set/reset latch (gC)."""
    module = module_name or (_identifier(stg.name) + "_gc")
    inputs = [_identifier(s) for s in stg.inputs]
    outputs = [_identifier(s) for s in stg.outputs]
    internals = [_identifier(s) for s in stg.internals]
    ports = ", ".join(inputs + outputs)
    lines = [f"// Derived from STG {stg.name!r} (gC implementation).",
             f"module {module} ({ports});"]
    for name in inputs:
        lines.append(f"  input  {name};")
    for name in outputs:
        lines.append(f"  output reg {name};")
    for name in internals:
        lines.append(f"  reg    {name};")
    lines.append("")
    for signal in stg.noninput_signals:
        element = elements.get(signal)
        if element is None:
            continue
        set_expr = _verilog_cover([
            {_identifier(n): v for n, v in cube.items()}
            for cube in element.set_cover])
        reset_expr = _verilog_cover([
            {_identifier(n): v for n, v in cube.items()}
            for cube in element.reset_cover])
        target = _identifier(signal)
        lines.append(f"  always @* begin")
        lines.append(f"    if ({set_expr}) {target} = 1'b1;")
        lines.append(f"    else if ({reset_expr}) {target} = 1'b0;")
        lines.append(f"  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _identifier(name: str) -> str:
    """Sanitise a signal/module name into a Verilog identifier."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "m_" + cleaned
    return cleaned


def cover_as_text(cover: List[Dict[str, bool]]) -> str:
    """Helper mirroring :func:`repro.bdd.cover.cube_to_string` for lists."""
    if not cover:
        return "0"
    return " + ".join(cube_to_string(cube) for cube in cover)
