"""Logic derivation for gate-implementable STGs.

The paper's motivation for checking implementability is that, once the
properties hold, "the logic equations for all gates of the circuit can be
derived by the STG in a conventional way" (Section 2).  This package
provides that conventional derivation for specifications that satisfy CSC:

* :mod:`repro.synthesis.functions` -- next-state (on/off/don't-care) sets
  of every non-input signal from the symbolic reachable set,
* :mod:`repro.synthesis.complex_gate` -- complex-gate and generalised
  C-element (set/reset) covers extracted with the ISOP procedure,
* :mod:`repro.synthesis.verify` -- independent verification of the derived
  logic against the explicit state graph.
"""

from repro.synthesis.functions import NextStateFunction, derive_next_state_functions
from repro.synthesis.complex_gate import (
    ComplexGate,
    GeneralizedCElement,
    synthesize_complex_gates,
    synthesize_generalized_c_elements,
)
from repro.synthesis.verify import verify_implementation

__all__ = [
    "NextStateFunction",
    "derive_next_state_functions",
    "ComplexGate",
    "GeneralizedCElement",
    "synthesize_complex_gates",
    "synthesize_generalized_c_elements",
    "verify_implementation",
]
