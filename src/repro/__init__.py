"""Reproduction of "Checking Signal Transition Graph Implementability by
Symbolic BDD Traversal" (Kondratyev, Cortadella, Kishinevsky, Pastor, Roig,
Yakovlev -- ED&TC 1995).

Public entry points
-------------------

* :mod:`repro.api` -- **the public verification surface**: the
  :func:`~repro.api.facade.verify` facade, the typed
  :class:`~repro.api.config.EngineConfig` and the pluggable property-check
  registry.
* :mod:`repro.engines` -- the engine protocol and registry; new backends
  plug in with ``engines.register(name, engine)``.
* :mod:`repro.corpus` -- the benchmark corpus: named ``.g`` specifications
  with expected-verdict metadata.
* :mod:`repro.runner` -- the parallel, sharded, cached sweep runner behind
  the ``batch-check`` CLI mode.
* :mod:`repro.bdd` -- the ROBDD engine used as symbolic substrate.
* :mod:`repro.petri` -- Petri nets, markings, explicit reachability.
* :mod:`repro.stg` -- Signal Transition Graphs, the ``.g`` file format and
  the scalable benchmark generators.
* :mod:`repro.sg` -- explicit (full) State Graphs and explicit property
  checks; the enumeration baseline and testing oracle.
* :mod:`repro.core` -- the paper's contribution: symbolic traversal and
  symbolic implementability checks (consistency, persistency, CSC,
  CSC-reducibility, fake conflicts).
* :mod:`repro.synthesis` -- derivation of next-state (complex-gate) logic
  for specifications that satisfy CSC.

A typical use::

    from repro import EngineConfig, verify
    from repro.stg.generators import muller_pipeline

    report = verify(muller_pipeline(8))
    print(report.summary())

    report = verify(muller_pipeline(8), EngineConfig(engine="explicit"))
    report = verify(muller_pipeline(8), checks=("csc", "persistency"))
"""

from repro._version import __version__
from repro.api import (
    ApiError,
    EngineConfig,
    available_checks,
    register_check,
    run,
    verify,
)
from repro.report import ImplementabilityClass, ImplementabilityReport

__all__ = [
    "ApiError",
    "EngineConfig",
    "ImplementabilityClass",
    "ImplementabilityReport",
    "__version__",
    "available_checks",
    "register_check",
    "run",
    "verify",
]
