"""Reproduction of "Checking Signal Transition Graph Implementability by
Symbolic BDD Traversal" (Kondratyev, Cortadella, Kishinevsky, Pastor, Roig,
Yakovlev -- ED&TC 1995).

Public entry points
-------------------

* :mod:`repro.bdd` -- the ROBDD engine used as symbolic substrate.
* :mod:`repro.petri` -- Petri nets, markings, explicit reachability.
* :mod:`repro.stg` -- Signal Transition Graphs, the ``.g`` file format and
  the scalable benchmark generators.
* :mod:`repro.sg` -- explicit (full) State Graphs and explicit property
  checks; the enumeration baseline and testing oracle.
* :mod:`repro.core` -- the paper's contribution: symbolic traversal and
  symbolic implementability checks (consistency, persistency, CSC,
  CSC-reducibility, fake conflicts) plus the
  :class:`~repro.core.checker.ImplementabilityChecker` facade.
* :mod:`repro.synthesis` -- derivation of next-state (complex-gate) logic
  for specifications that satisfy CSC.

A typical use::

    from repro.stg.generators import muller_pipeline
    from repro.core import ImplementabilityChecker

    stg = muller_pipeline(8)
    report = ImplementabilityChecker(stg).check()
    print(report.summary())
"""

from repro._version import __version__

__all__ = ["__version__"]
