"""Convenience constructors for Petri nets.

The generators in :mod:`repro.stg.generators` and many tests build nets
from terse descriptions; the helpers here keep that code readable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.petri.net import PetriNet


def net_from_arcs(arcs: Iterable[Tuple[str, str]],
                  initial_marking: Optional[Mapping[str, int]] = None,
                  transitions: Optional[Iterable[str]] = None,
                  places: Optional[Iterable[str]] = None,
                  name: str = "net") -> PetriNet:
    """Build a net from an arc list.

    Node kinds are inferred: names starting with ``p`` or listed in
    ``places`` are places, everything else is a transition, unless the name
    is listed in ``transitions``.  Pass explicit ``places`` / ``transitions``
    whenever the ``p``-prefix convention does not hold.

    Parameters
    ----------
    arcs:
        Pairs ``(source, target)``.
    initial_marking:
        Token counts for initially marked places.
    transitions / places:
        Explicit node-kind declarations (take precedence over inference).
    """
    arcs = list(arcs)
    declared_transitions = set(transitions or ())
    declared_places = set(places or ())
    overlap = declared_transitions & declared_places
    if overlap:
        raise ValueError(f"nodes declared as both kinds: {sorted(overlap)}")

    def is_place(node: str) -> bool:
        if node in declared_places:
            return True
        if node in declared_transitions:
            return False
        return node.startswith("p")

    net = PetriNet(name)
    marking = dict(initial_marking or {})
    seen = []
    for source, target in arcs:
        for node in (source, target):
            if node in seen:
                continue
            seen.append(node)
            if is_place(node):
                net.add_place(node, marking.get(node, 0))
            else:
                net.add_transition(node)
    # Declared but unused nodes are still added (isolated).  Sorted:
    # declaration order fixes the net's place/transition lists, which
    # downstream fix encoding variable order -- set order would leak
    # PYTHONHASHSEED into them.
    for node in sorted(declared_places):
        if not net.has_place(node):
            net.add_place(node, marking.get(node, 0))
    for node in sorted(declared_transitions):
        if not net.has_transition(node):
            net.add_transition(node)
    for source, target in arcs:
        net.add_arc(source, target)
    # Marked places that never appeared in an arc.
    for place, tokens in marking.items():
        if not net.has_place(place):
            net.add_place(place, tokens)
    return net


def chain(transition_names: Sequence[str], name: str = "chain",
          closed: bool = False, marked_place: int = 0) -> PetriNet:
    """A linear (or circular) sequence of transitions joined by places.

    ``t0 -> p(0,1) -> t1 -> p(1,2) -> ...``; with ``closed=True`` the last
    transition feeds a place back into the first one, and ``marked_place``
    selects which connecting place carries the single token (for a closed
    chain) -- an elementary cycle, the building block of marked graphs.
    """
    net = PetriNet(name)
    for transition in transition_names:
        net.add_transition(transition)
    count = len(transition_names)
    if count == 0:
        return net
    limit = count if closed else count - 1
    for index in range(limit):
        source = transition_names[index]
        target = transition_names[(index + 1) % count]
        place = f"p_{source}_{target}"
        tokens = 1 if (closed and index == marked_place % count) else 0
        net.add_place(place, tokens)
        net.add_arc(source, place)
        net.add_arc(place, target)
    if not closed:
        # Initial place feeding the first transition.
        net.add_place("p_start", 1)
        net.add_arc("p_start", transition_names[0])
    return net


def parallel_join(branches: Sequence[Sequence[str]], name: str = "fork_join"
                  ) -> PetriNet:
    """A fork/join net: a fork transition starts all branches, a join ends them.

    Each branch is a sequence of transition names executed in order;
    branches run concurrently between the fork and the join.  The net is a
    safe marked graph whose reachability graph has a product-of-chains shape
    -- handy for state-explosion tests.
    """
    net = PetriNet(name)
    net.add_transition("fork")
    net.add_transition("join")
    net.add_place("p_idle", 1)
    net.add_arc("p_idle", "fork")
    net.add_place("p_done")
    net.add_arc("join", "p_done")
    for branch_index, branch in enumerate(branches):
        previous = "fork"
        for step_index, transition in enumerate(branch):
            place = f"p_b{branch_index}_{step_index}"
            net.add_place(place)
            net.add_arc(previous, place)
            net.add_transition(transition)
            net.add_arc(place, transition)
            previous = transition
        final_place = f"p_b{branch_index}_end"
        net.add_place(final_place)
        net.add_arc(previous, final_place)
        net.add_arc(final_place, "join")
    return net


def free_choice_cell(choices: Dict[str, Sequence[str]], name: str = "choice"
                     ) -> PetriNet:
    """A single free-choice place selecting between alternative branches.

    ``choices`` maps a branch-entry transition to the rest of its branch.
    All branches re-merge into the choice place, forming a state machine.
    """
    net = PetriNet(name)
    net.add_place("p_choice", 1)
    for entry, rest in choices.items():
        net.add_transition(entry)
        net.add_arc("p_choice", entry)
        previous = entry
        for index, transition in enumerate(rest):
            place = f"p_{entry}_{index}"
            net.add_place(place)
            net.add_arc(previous, place)
            net.add_transition(transition)
            net.add_arc(place, transition)
            previous = transition
        net.add_arc(previous, "p_choice")
    return net
