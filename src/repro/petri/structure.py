"""Structural (marking-independent) properties of Petri nets.

Several facts used by the paper depend only on the net structure:

* *conflict places* -- places with more than one output transition -- are
  the only possible sources of transition non-persistency (Section 5.2);
* *marked graphs* (every place has at most one input and one output
  transition) are always persistent, so the persistency and commutativity
  phases are "negligible" for them (Section 6);
* free-choice and state-machine subclasses, used for sanity checks of the
  generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.petri.net import PetriNet


def conflict_places(net: PetriNet) -> List[str]:
    """Places with more than one output transition (``|p•| > 1``)."""
    return [p for p in net.places if len(net.postset_of_place(p)) > 1]


def merge_places(net: PetriNet) -> List[str]:
    """Places with more than one input transition (``|•p| > 1``)."""
    return [p for p in net.places if len(net.preset_of_place(p)) > 1]


def is_marked_graph(net: PetriNet) -> bool:
    """True iff every place has at most one input and one output transition."""
    return all(len(net.preset_of_place(p)) <= 1
               and len(net.postset_of_place(p)) <= 1
               for p in net.places)


def is_state_machine(net: PetriNet) -> bool:
    """True iff every transition has exactly one input and one output place."""
    return all(len(net.preset_of_transition(t)) == 1
               and len(net.postset_of_transition(t)) == 1
               for t in net.transitions)


def is_free_choice(net: PetriNet) -> bool:
    """True iff the net is (extended) free choice.

    Whenever two transitions share an input place, they have identical
    presets; equivalently, every conflict is a free choice between
    transitions with equal enabling conditions.
    """
    for place in net.places:
        successors = sorted(net.postset_of_place(place))
        if len(successors) < 2:
            continue
        presets = [frozenset(net.preset_of_transition(t)) for t in successors]
        if any(preset != presets[0] for preset in presets[1:]):
            return False
    return True


def structural_conflict_pairs(net: PetriNet) -> List[Tuple[str, str]]:
    """Ordered pairs of distinct transitions sharing some input place.

    These are the only candidate pairs for the persistency check
    (Figure 6); any other pair can never disable one another directly.
    """
    pairs: Set[Tuple[str, str]] = set()
    for place in conflict_places(net):
        successors = sorted(net.postset_of_place(place))
        for first in successors:
            for second in successors:
                if first != second:
                    pairs.add((first, second))
    return sorted(pairs)


def source_transitions(net: PetriNet) -> List[str]:
    """Transitions with an empty preset (always enabled -- usually a bug)."""
    return [t for t in net.transitions if not net.preset_of_transition(t)]


def isolated_places(net: PetriNet) -> List[str]:
    """Places not connected to any transition."""
    return [p for p in net.places
            if not net.preset_of_place(p) and not net.postset_of_place(p)]


@dataclass
class StructuralSummary:
    """Bundle of structural facts used by reports and the CLI."""

    num_places: int
    num_transitions: int
    num_arcs: int
    conflict_places: List[str]
    marked_graph: bool
    state_machine: bool
    free_choice: bool
    source_transitions: List[str]
    isolated_places: List[str]

    def as_dict(self) -> Dict[str, object]:
        return {
            "places": self.num_places,
            "transitions": self.num_transitions,
            "arcs": self.num_arcs,
            "conflict_places": list(self.conflict_places),
            "marked_graph": self.marked_graph,
            "state_machine": self.state_machine,
            "free_choice": self.free_choice,
            "source_transitions": list(self.source_transitions),
            "isolated_places": list(self.isolated_places),
        }


def summarize_structure(net: PetriNet) -> StructuralSummary:
    """Compute a :class:`StructuralSummary` for a net."""
    return StructuralSummary(
        num_places=net.num_places,
        num_transitions=net.num_transitions,
        num_arcs=sum(1 for _ in net.arcs()),
        conflict_places=conflict_places(net),
        marked_graph=is_marked_graph(net),
        state_machine=is_state_machine(net),
        free_choice=is_free_choice(net),
        source_transitions=source_transitions(net),
        isolated_places=isolated_places(net),
    )
