"""Petri net structure: places, transitions, flow relation and firing rule.

Follows Section 2 of the paper: a Petri net is ``N = (P, T, F, m0)`` with
``F`` a subset of ``(P x T) U (T x P)`` (ordinary arcs, no weights).  A
transition is enabled when all of its input places are marked; firing it
removes one token from each input place and adds one token to each output
place.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.petri.marking import Marking


class PetriNetError(Exception):
    """Raised for structurally invalid nets or illegal operations."""


class Place:
    """A place of a Petri net.

    Attributes
    ----------
    name:
        Unique identifier inside the net.
    initial_tokens:
        Token count in the initial marking.
    """

    __slots__ = ("name", "initial_tokens")

    def __init__(self, name: str, initial_tokens: int = 0) -> None:
        if initial_tokens < 0:
            raise PetriNetError(f"place {name!r}: negative initial marking")
        self.name = name
        self.initial_tokens = initial_tokens

    def __repr__(self) -> str:
        return f"Place({self.name!r}, tokens={self.initial_tokens})"


class Transition:
    """A transition of a Petri net.

    The optional ``label`` carries the interpretation attached by higher
    layers (for STGs: a signal transition such as ``a+`` or ``b-``); the
    plain Petri-net layer never inspects it.
    """

    __slots__ = ("name", "label")

    def __init__(self, name: str, label: Optional[object] = None) -> None:
        self.name = name
        self.label = label

    def __repr__(self) -> str:
        if self.label is None:
            return f"Transition({self.name!r})"
        return f"Transition({self.name!r}, label={self.label!r})"


class PetriNet:
    """A Petri net ``(P, T, F, m0)`` with ordinary (weight-1) arcs.

    Places and transitions are identified by name.  The flow relation is
    stored as pre-set / post-set adjacency for both node kinds, so the
    neighbourhood queries used throughout the paper (``•t``, ``t•``, ``•p``,
    ``p•``) are O(degree).

    Examples
    --------
    >>> net = PetriNet("toggle")
    >>> _ = net.add_place("p0", tokens=1)
    >>> _ = net.add_place("p1")
    >>> _ = net.add_transition("t01")
    >>> _ = net.add_transition("t10")
    >>> net.add_arc("p0", "t01"); net.add_arc("t01", "p1")
    >>> net.add_arc("p1", "t10"); net.add_arc("t10", "p0")
    >>> sorted(net.enabled_transitions(net.initial_marking))
    ['t01']
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: Dict[str, Place] = {}
        self._transitions: Dict[str, Transition] = {}
        # Flow relation as adjacency.
        self._place_pre: Dict[str, Set[str]] = {}   # •p  (transitions)
        self._place_post: Dict[str, Set[str]] = {}  # p•  (transitions)
        self._trans_pre: Dict[str, Set[str]] = {}   # •t  (places)
        self._trans_post: Dict[str, Set[str]] = {}  # t•  (places)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_place(self, name: str, tokens: int = 0) -> Place:
        """Add a place; returns the created :class:`Place`."""
        if name in self._places:
            raise PetriNetError(f"duplicate place {name!r}")
        if name in self._transitions:
            raise PetriNetError(f"name {name!r} already used by a transition")
        place = Place(name, tokens)
        self._places[name] = place
        self._place_pre[name] = set()
        self._place_post[name] = set()
        return place

    def add_transition(self, name: str, label: Optional[object] = None) -> Transition:
        """Add a transition; returns the created :class:`Transition`."""
        if name in self._transitions:
            raise PetriNetError(f"duplicate transition {name!r}")
        if name in self._places:
            raise PetriNetError(f"name {name!r} already used by a place")
        transition = Transition(name, label)
        self._transitions[name] = transition
        self._trans_pre[name] = set()
        self._trans_post[name] = set()
        return transition

    def add_arc(self, source: str, target: str) -> None:
        """Add a flow arc from ``source`` to ``target``.

        Exactly one endpoint must be a place and the other a transition.
        Duplicate arcs are ignored (the flow relation is a set).
        """
        if source in self._places and target in self._transitions:
            self._place_post[source].add(target)
            self._trans_pre[target].add(source)
        elif source in self._transitions and target in self._places:
            self._trans_post[source].add(target)
            self._place_pre[target].add(source)
        else:
            raise PetriNetError(
                f"arc {source!r} -> {target!r} must connect a place and a "
                f"transition that both exist in the net")

    def remove_arc(self, source: str, target: str) -> None:
        """Remove a flow arc (no-op if the arc does not exist)."""
        if source in self._places and target in self._transitions:
            self._place_post[source].discard(target)
            self._trans_pre[target].discard(source)
        elif source in self._transitions and target in self._places:
            self._trans_post[source].discard(target)
            self._place_pre[target].discard(source)
        else:
            raise PetriNetError(
                f"arc {source!r} -> {target!r} must connect a place and a "
                f"transition that both exist in the net")

    def ensure_place(self, name: str, tokens: int = 0) -> Place:
        """Return the place ``name``, creating it if missing."""
        if name in self._places:
            return self._places[name]
        return self.add_place(name, tokens)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def places(self) -> List[str]:
        """Place names in insertion order."""
        return list(self._places)

    @property
    def transitions(self) -> List[str]:
        """Transition names in insertion order."""
        return list(self._transitions)

    @property
    def num_places(self) -> int:
        return len(self._places)

    @property
    def num_transitions(self) -> int:
        return len(self._transitions)

    def place(self, name: str) -> Place:
        """The :class:`Place` object for ``name``."""
        try:
            return self._places[name]
        except KeyError as exc:
            raise PetriNetError(f"unknown place {name!r}") from exc

    def transition(self, name: str) -> Transition:
        """The :class:`Transition` object for ``name``."""
        try:
            return self._transitions[name]
        except KeyError as exc:
            raise PetriNetError(f"unknown transition {name!r}") from exc

    def has_place(self, name: str) -> bool:
        return name in self._places

    def has_transition(self, name: str) -> bool:
        return name in self._transitions

    def preset_of_transition(self, name: str) -> Set[str]:
        """``•t``: the input places of a transition."""
        self.transition(name)
        return set(self._trans_pre[name])

    def postset_of_transition(self, name: str) -> Set[str]:
        """``t•``: the output places of a transition."""
        self.transition(name)
        return set(self._trans_post[name])

    def preset_of_place(self, name: str) -> Set[str]:
        """``•p``: the input transitions of a place."""
        self.place(name)
        return set(self._place_pre[name])

    def postset_of_place(self, name: str) -> Set[str]:
        """``p•``: the output transitions of a place."""
        self.place(name)
        return set(self._place_post[name])

    def arcs(self) -> Iterator[Tuple[str, str]]:
        """Iterate over every arc of the flow relation."""
        for place, transitions in self._place_post.items():
            for transition in sorted(transitions):
                yield (place, transition)
        for transition, places in self._trans_post.items():
            for place in sorted(places):
                yield (transition, place)

    # ------------------------------------------------------------------
    # Initial marking and firing rule
    # ------------------------------------------------------------------
    @property
    def initial_marking(self) -> Marking:
        """The initial marking ``m0`` built from the places' token counts."""
        return Marking({name: place.initial_tokens
                        for name, place in self._places.items()})

    def set_initial_tokens(self, place: str, tokens: int) -> None:
        """Change the initial token count of a place."""
        self.place(place).initial_tokens = tokens
        if tokens < 0:
            raise PetriNetError(f"place {place!r}: negative initial marking")

    def is_enabled(self, transition: str, marking: Marking) -> bool:
        """True iff every input place of ``transition`` is marked."""
        self.transition(transition)
        return all(marking[place] >= 1 for place in self._trans_pre[transition])

    def enabled_transitions(self, marking: Marking) -> List[str]:
        """All transitions enabled at ``marking`` (in insertion order)."""
        return [name for name in self._transitions
                if self.is_enabled(name, marking)]

    def fire(self, transition: str, marking: Marking) -> Marking:
        """Fire an enabled transition and return the successor marking."""
        if not self.is_enabled(transition, marking):
            raise PetriNetError(
                f"transition {transition!r} is not enabled at {marking!r}")
        after_consume = marking.remove(self._trans_pre[transition])
        return after_consume.add(self._trans_post[transition])

    def fire_sequence(self, transitions: Iterable[str],
                      marking: Optional[Marking] = None) -> Marking:
        """Fire a sequence of transitions starting from ``marking``.

        ``marking`` defaults to the initial marking.  Raises
        :class:`PetriNetError` as soon as a transition is not enabled.
        """
        current = self.initial_marking if marking is None else marking
        for transition in transitions:
            current = self.fire(transition, current)
        return current

    # ------------------------------------------------------------------
    # Copies
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "PetriNet":
        """Deep copy of the net (labels are shared, structure is copied)."""
        clone = PetriNet(self.name if name is None else name)
        for place_name, place in self._places.items():
            clone.add_place(place_name, place.initial_tokens)
        for transition_name, transition in self._transitions.items():
            clone.add_transition(transition_name, transition.label)
        for source, target in self.arcs():
            clone.add_arc(source, target)
        return clone

    def __repr__(self) -> str:
        return (f"PetriNet({self.name!r}, places={self.num_places}, "
                f"transitions={self.num_transitions})")
