"""Explicit reachability analysis.

This is the classical enumeration the paper's symbolic approach replaces.
It remains important for two reasons: it is the baseline against which the
benchmarks compare, and it is the oracle the test suite uses to validate
the symbolic engine on every net that is small enough to enumerate.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.petri.marking import Marking
from repro.petri.net import PetriNet, PetriNetError


class BoundViolation(PetriNetError):
    """Raised when exploration exceeds a requested bound or state budget."""


class ReachabilityGraph:
    """Explicit reachability graph of a Petri net.

    Vertices are :class:`~repro.petri.marking.Marking` objects; edges are
    labelled with the fired transition.
    """

    def __init__(self, net: PetriNet, initial: Marking) -> None:
        self.net = net
        self.initial = initial
        self._successors: Dict[Marking, List[Tuple[str, Marking]]] = {}

    # Construction (used by the builder) --------------------------------
    def _add_marking(self, marking: Marking) -> None:
        self._successors.setdefault(marking, [])

    def _add_edge(self, source: Marking, transition: str, target: Marking) -> None:
        self._successors.setdefault(source, []).append((transition, target))
        self._successors.setdefault(target, [])

    # Queries ------------------------------------------------------------
    @property
    def markings(self) -> List[Marking]:
        """All reachable markings (insertion order: BFS order)."""
        return list(self._successors)

    @property
    def num_markings(self) -> int:
        return len(self._successors)

    @property
    def num_edges(self) -> int:
        return sum(len(edges) for edges in self._successors.values())

    def successors(self, marking: Marking) -> List[Tuple[str, Marking]]:
        """Outgoing edges of a marking as ``(transition, successor)`` pairs."""
        try:
            return list(self._successors[marking])
        except KeyError as exc:
            raise PetriNetError(f"marking not in the graph: {marking!r}") from exc

    def edges(self) -> Iterator[Tuple[Marking, str, Marking]]:
        """Iterate over all edges ``(source, transition, target)``."""
        for source, outgoing in self._successors.items():
            for transition, target in outgoing:
                yield source, transition, target

    def contains(self, marking: Marking) -> bool:
        return marking in self._successors

    def deadlocks(self) -> List[Marking]:
        """Markings with no enabled transition."""
        return [m for m, edges in self._successors.items() if not edges]

    def max_tokens(self) -> int:
        """The largest token count observed on any place in any marking."""
        return max((m.max_tokens() for m in self._successors), default=0)

    def is_safe(self) -> bool:
        """True iff every reachable marking is safe (1-bounded)."""
        return all(m.is_safe() for m in self._successors)

    def fired_transitions(self) -> Set[str]:
        """Transitions that fire at least once in the graph."""
        return {transition for _, transition, _ in self.edges()}

    def dead_transitions(self) -> List[str]:
        """Transitions of the net that never fire from the initial marking."""
        fired = self.fired_transitions()
        return [t for t in self.net.transitions if t not in fired]

    def __repr__(self) -> str:
        return (f"ReachabilityGraph(markings={self.num_markings}, "
                f"edges={self.num_edges})")


def build_reachability_graph(net: PetriNet,
                             initial: Optional[Marking] = None,
                             max_markings: Optional[int] = None,
                             bound: Optional[int] = None) -> ReachabilityGraph:
    """Breadth-first construction of the reachability graph.

    Parameters
    ----------
    net:
        The Petri net to explore.
    initial:
        Starting marking (defaults to ``net.initial_marking``).
    max_markings:
        Abort with :class:`BoundViolation` when more markings than this are
        discovered -- protection against unbounded nets and state explosion.
    bound:
        Abort with :class:`BoundViolation` as soon as a marking exceeds this
        token bound per place (e.g. ``bound=1`` aborts on unsafe markings).

    Returns
    -------
    ReachabilityGraph
    """
    start = net.initial_marking if initial is None else initial
    graph = ReachabilityGraph(net, start)
    graph._add_marking(start)
    queue = deque([start])
    visited: Set[Marking] = {start}
    while queue:
        current = queue.popleft()
        if bound is not None and current.max_tokens() > bound:
            raise BoundViolation(
                f"marking exceeds the {bound}-bound: {current!r}")
        for transition in net.enabled_transitions(current):
            successor = net.fire(transition, current)
            graph._add_edge(current, transition, successor)
            if successor not in visited:
                visited.add(successor)
                if max_markings is not None and len(visited) > max_markings:
                    raise BoundViolation(
                        f"more than {max_markings} reachable markings")
                queue.append(successor)
    return graph
