"""Petri net substrate: nets, markings, explicit reachability and analysis.

The paper's specifications are Signal Transition Graphs, i.e. interpreted
Petri nets.  This package provides the uninterpreted layer:

* :class:`~repro.petri.net.PetriNet`, :class:`~repro.petri.net.Place`,
  :class:`~repro.petri.net.Transition` -- the net structure ``(P, T, F, m0)``,
* :class:`~repro.petri.marking.Marking` -- immutable token assignments,
* :mod:`repro.petri.reachability` -- explicit reachability graphs,
* :mod:`repro.petri.analysis` -- boundedness, safeness, deadlocks and
  explicit transition persistency,
* :mod:`repro.petri.structure` -- structural classes (marked graph,
  state machine, free choice) and conflict places,
* :mod:`repro.petri.builders` -- convenience constructors.
"""

from repro.petri.net import PetriNet, Place, Transition, PetriNetError
from repro.petri.marking import Marking
from repro.petri.reachability import ReachabilityGraph, build_reachability_graph

__all__ = [
    "PetriNet",
    "Place",
    "Transition",
    "PetriNetError",
    "Marking",
    "ReachabilityGraph",
    "build_reachability_graph",
]
