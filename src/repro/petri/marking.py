"""Immutable markings (token assignments) of a Petri net."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple


class Marking(Mapping[str, int]):
    """An immutable mapping from place names to token counts.

    Places not present in the mapping hold zero tokens.  Markings are
    hashable so they can be used as graph vertices and dictionary keys.

    >>> m = Marking({"p1": 1, "p2": 0})
    >>> m["p1"], m["p2"], m["p3"]
    (1, 0, 0)
    """

    __slots__ = ("_tokens", "_hash")

    def __init__(self, tokens: Mapping[str, int] | Iterable[Tuple[str, int]] = ()):
        items = dict(tokens)
        for place, count in items.items():
            if count < 0:
                raise ValueError(f"negative token count for place {place!r}")
        # Zero entries are dropped so equal markings have equal storage.
        self._tokens: Dict[str, int] = {
            place: count for place, count in items.items() if count > 0}
        self._hash = hash(frozenset(self._tokens.items()))

    # Mapping interface -------------------------------------------------
    def __getitem__(self, place: str) -> int:
        return self._tokens.get(place, 0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, place: object) -> bool:
        return place in self._tokens

    # Identity ----------------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Marking):
            return self._tokens == other._tokens
        if isinstance(other, Mapping):
            return self == Marking(other)
        return NotImplemented

    # Queries -----------------------------------------------------------
    @property
    def marked_places(self) -> frozenset:
        """The set of places holding at least one token."""
        return frozenset(self._tokens)

    def total_tokens(self) -> int:
        """Total number of tokens in the marking."""
        return sum(self._tokens.values())

    def is_safe(self) -> bool:
        """True iff no place holds more than one token."""
        return all(count <= 1 for count in self._tokens.values())

    def max_tokens(self) -> int:
        """The largest token count of any place (0 for the empty marking)."""
        return max(self._tokens.values(), default=0)

    def covers(self, other: "Marking") -> bool:
        """True iff this marking has at least as many tokens everywhere."""
        return all(self[place] >= count for place, count in other.items())

    # Updates (produce new markings) ------------------------------------
    def add(self, places: Iterable[str], amount: int = 1) -> "Marking":
        """Return a new marking with ``amount`` extra tokens on ``places``."""
        tokens = dict(self._tokens)
        for place in places:
            tokens[place] = tokens.get(place, 0) + amount
        return Marking(tokens)

    def remove(self, places: Iterable[str], amount: int = 1) -> "Marking":
        """Return a new marking with ``amount`` fewer tokens on ``places``."""
        tokens = dict(self._tokens)
        for place in places:
            current = tokens.get(place, 0) - amount
            if current < 0:
                raise ValueError(
                    f"cannot remove {amount} token(s) from place {place!r}")
            tokens[place] = current
        return Marking(tokens)

    def restricted_to(self, places: Iterable[str]) -> "Marking":
        """Projection of the marking onto a subset of places."""
        keep = set(places)
        return Marking({p: c for p, c in self._tokens.items() if p in keep})

    def as_vector(self, places: Iterable[str]) -> Tuple[int, ...]:
        """Token counts as a tuple following the given place order."""
        return tuple(self[place] for place in places)

    def __repr__(self) -> str:
        inside = ", ".join(f"{place}:{count}"
                           for place, count in sorted(self._tokens.items()))
        return f"Marking({{{inside}}})"
