"""Place and transition invariants of Petri nets.

A *P-invariant* is an integer weighting of the places that is preserved by
every transition firing (``y^T C = 0`` for the incidence matrix ``C``); a
*T-invariant* is a firing-count vector whose execution reproduces the
marking (``C x = 0``).  Invariants are classical structural analysis tools
for STGs:

* a positive P-invariant covering every place proves boundedness without
  any reachability analysis (each invariant bounds its places by the
  invariant value of the initial marking);
* the mutual-exclusion place of the paper's Figure 1 element is exposed by
  the P-invariant ``p_me + sum(grant-holding places) = 1``;
* T-invariants describe the cyclic behaviour (every signal must appear a
  balanced number of times in a T-invariant of a consistent STG).

The computation uses exact integer Gaussian elimination over the rationals
(fractions), so no external numerical dependency is required and the
results are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from repro.petri.marking import Marking
from repro.petri.net import PetriNet


@dataclass
class Invariant:
    """An integer invariant vector (over places or transitions)."""

    weights: Dict[str, int]

    @property
    def support(self) -> List[str]:
        """Names with a non-zero weight."""
        return sorted(name for name, weight in self.weights.items() if weight)

    def is_positive(self) -> bool:
        """True when every non-zero weight is positive."""
        return all(weight >= 0 for weight in self.weights.values()) \
            and any(weight > 0 for weight in self.weights.values())

    def value(self, marking: Marking) -> int:
        """Weighted token sum of a marking (P-invariants only)."""
        return sum(weight * marking[name]
                   for name, weight in self.weights.items())

    def __str__(self) -> str:
        terms = []
        for name in self.support:
            weight = self.weights[name]
            terms.append(name if weight == 1 else f"{weight}*{name}")
        return " + ".join(terms) if terms else "0"


def incidence_matrix(net: PetriNet) -> Tuple[List[str], List[str], List[List[int]]]:
    """The incidence matrix ``C[p][t] = post(p,t) - pre(p,t)``.

    Returns ``(places, transitions, matrix)`` with the matrix indexed
    ``matrix[place_index][transition_index]``.
    """
    places = net.places
    transitions = net.transitions
    matrix = [[0] * len(transitions) for _ in places]
    place_index = {p: i for i, p in enumerate(places)}
    for column, transition in enumerate(transitions):
        # Pre/post-sets are hash-ordered sets; sorted keeps the update
        # order (and any future non-commutative use) seed-independent.
        for place in sorted(net.preset_of_transition(transition)):
            matrix[place_index[place]][column] -= 1
        for place in sorted(net.postset_of_transition(transition)):
            matrix[place_index[place]][column] += 1
    return places, transitions, matrix


def _null_space_integer(matrix: List[List[Fraction]]) -> List[List[Fraction]]:
    """Basis of the (right) null space of ``matrix`` by Gaussian elimination."""
    if not matrix:
        return []
    rows = [list(row) for row in matrix]
    num_rows = len(rows)
    num_cols = len(rows[0])
    pivot_of_column: Dict[int, int] = {}
    pivot_row = 0
    for column in range(num_cols):
        pivot = None
        for row in range(pivot_row, num_rows):
            if rows[row][column] != 0:
                pivot = row
                break
        if pivot is None:
            continue
        rows[pivot_row], rows[pivot] = rows[pivot], rows[pivot_row]
        factor = rows[pivot_row][column]
        rows[pivot_row] = [value / factor for value in rows[pivot_row]]
        for row in range(num_rows):
            if row != pivot_row and rows[row][column] != 0:
                scale = rows[row][column]
                rows[row] = [value - scale * pivot_value
                             for value, pivot_value in zip(rows[row],
                                                           rows[pivot_row])]
        pivot_of_column[column] = pivot_row
        pivot_row += 1
        if pivot_row == num_rows:
            break
    free_columns = [c for c in range(num_cols) if c not in pivot_of_column]
    basis = []
    for free in free_columns:
        vector = [Fraction(0)] * num_cols
        vector[free] = Fraction(1)
        for column, row in pivot_of_column.items():
            vector[column] = -rows[row][free]
        basis.append(vector)
    return basis


def _scale_to_integers(vector: Sequence[Fraction]) -> List[int]:
    """Scale a rational vector to the smallest integer multiple."""
    denominators = [value.denominator for value in vector if value != 0]
    if not denominators:
        return [0] * len(vector)
    multiplier = 1
    for denominator in denominators:
        multiplier = multiplier * denominator // _gcd(multiplier, denominator)
    integers = [int(value * multiplier) for value in vector]
    common = 0
    for value in integers:
        common = _gcd(common, abs(value))
    if common > 1:
        integers = [value // common for value in integers]
    # Normalise the sign so the first non-zero entry is positive.
    for value in integers:
        if value != 0:
            if value < 0:
                integers = [-v for v in integers]
            break
    return integers


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def place_invariants(net: PetriNet) -> List[Invariant]:
    """A basis of P-invariants (``y^T C = 0``)."""
    places, _transitions, matrix = incidence_matrix(net)
    # Solve y^T C = 0  <=>  C^T y = 0.
    transposed = [[Fraction(matrix[p][t]) for p in range(len(places))]
                  for t in range(len(matrix[0]))] if matrix else []
    basis = _null_space_integer(transposed)
    invariants = []
    for vector in basis:
        weights = _scale_to_integers(vector)
        invariants.append(Invariant(dict(zip(places, weights))))
    return invariants


def transition_invariants(net: PetriNet) -> List[Invariant]:
    """A basis of T-invariants (``C x = 0``)."""
    places, transitions, matrix = incidence_matrix(net)
    rational = [[Fraction(value) for value in row] for row in matrix]
    basis = _null_space_integer(rational)
    invariants = []
    for vector in basis:
        weights = _scale_to_integers(vector)
        invariants.append(Invariant(dict(zip(transitions, weights))))
    return invariants


def positive_place_invariants(net: PetriNet,
                              max_rows: int = 20_000) -> List[Invariant]:
    """Minimal-support positive P-invariants (P-semiflows, Farkas algorithm).

    The classical Farkas construction: start from ``[C | I]``, eliminate
    the transition columns one by one by taking every positive combination
    of a row with a positive entry and a row with a negative entry, and
    keep only rows with minimal support.  The number of semiflows can be
    exponential in principle; ``max_rows`` caps the intermediate table (a
    :class:`ValueError` is raised when exceeded, which does not happen for
    the nets of this project).
    """
    places, transitions, matrix = incidence_matrix(net)
    if not places:
        return []
    # Rows: (C-part over transitions, identity part over places).
    rows: List[Tuple[List[int], List[int]]] = []
    for index, place in enumerate(places):
        identity = [0] * len(places)
        identity[index] = 1
        rows.append(([matrix[index][t] for t in range(len(transitions))],
                     identity))
    for column in range(len(transitions)):
        positive = [row for row in rows if row[0][column] > 0]
        negative = [row for row in rows if row[0][column] < 0]
        unchanged = [row for row in rows if row[0][column] == 0]
        combined: List[Tuple[List[int], List[int]]] = list(unchanged)
        for c_pos, y_pos in positive:
            for c_neg, y_neg in negative:
                alpha = abs(c_neg[column])
                beta = c_pos[column]
                new_c = [alpha * a + beta * b for a, b in zip(c_pos, c_neg)]
                new_y = [alpha * a + beta * b for a, b in zip(y_pos, y_neg)]
                common = 0
                for value in new_c + new_y:
                    common = _gcd(common, abs(value))
                if common > 1:
                    new_c = [value // common for value in new_c]
                    new_y = [value // common for value in new_y]
                combined.append((new_c, new_y))
        if len(combined) > max_rows:
            raise ValueError("semiflow computation exceeded the row budget")
        rows = _minimal_support_rows(combined, len(places))
    invariants = []
    seen = set()
    for _c_part, y_part in rows:
        if not any(y_part):
            continue
        key = tuple(y_part)
        if key in seen:
            continue
        seen.add(key)
        invariants.append(Invariant(dict(zip(places, y_part))))
    return invariants


def _minimal_support_rows(rows: List[Tuple[List[int], List[int]]],
                          num_places: int) -> List[Tuple[List[int], List[int]]]:
    """Drop rows whose place-support strictly contains another row's support."""
    supports = [frozenset(i for i in range(num_places) if row[1][i])
                for row in rows]
    keep = []
    for index, row in enumerate(rows):
        support = supports[index]
        dominated = False
        for other_index, other_support in enumerate(supports):
            if other_index == index or not other_support:
                continue
            if other_support < support:
                dominated = True
                break
        if not dominated:
            keep.append(row)
    return keep


def is_covered_by_positive_place_invariants(net: PetriNet) -> bool:
    """True when the positive P-semiflows cover every place.

    A sufficient structural condition for boundedness: every place then
    belongs to some conservative component.  (The check is conservative: a
    net can be bounded without being covered.)
    """
    covered = set()
    for invariant in positive_place_invariants(net):
        if invariant.is_positive():
            covered.update(invariant.support)
    return covered == set(net.places) and bool(net.places)


def structural_bound_from_invariants(net: PetriNet, place: str) -> int | None:
    """An upper bound on the tokens of ``place`` derived from P-semiflows.

    Returns ``None`` when no positive invariant with the place in its
    support exists.  For a safe net the returned bound is typically 1.
    """
    net.place(place)
    initial = net.initial_marking
    best = None
    for invariant in positive_place_invariants(net):
        if not invariant.is_positive():
            continue
        weight = invariant.weights.get(place, 0)
        if weight <= 0:
            continue
        bound = invariant.value(initial) // weight
        if best is None or bound < best:
            best = bound
    return best
