"""Behavioural analysis of Petri nets by explicit enumeration.

These checks mirror the definitions of Sections 2 and 3 of the paper at the
uninterpreted Petri-net level: boundedness, safeness, deadlock freedom and
transition persistency (Definition 3.3(1): direct conflicts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import (
    BoundViolation,
    ReachabilityGraph,
    build_reachability_graph,
)


@dataclass
class BoundednessResult:
    """Outcome of a boundedness check.

    Attributes
    ----------
    bounded:
        True when the exploration completed without exceeding the bound /
        state budget.
    bound:
        The smallest ``k`` such that the net is k-bounded (only meaningful
        when ``bounded`` is True).
    safe:
        Convenience flag: ``bound <= 1``.
    num_markings:
        Number of reachable markings visited.
    """

    bounded: bool
    bound: int = 0
    safe: bool = False
    num_markings: int = 0


def check_boundedness(net: PetriNet, max_markings: int = 1_000_000,
                      graph: Optional[ReachabilityGraph] = None
                      ) -> BoundednessResult:
    """Check boundedness by explicit exploration.

    Exploration is cut off after ``max_markings`` markings; hitting the cut
    is reported as *not bounded* (for the nets of this project the cap is
    far above any bounded instance, and truly unbounded nets would not
    terminate otherwise).
    """
    if graph is None:
        try:
            graph = build_reachability_graph(net, max_markings=max_markings)
        except BoundViolation:
            return BoundednessResult(bounded=False)
    bound = graph.max_tokens()
    return BoundednessResult(bounded=True, bound=bound, safe=bound <= 1,
                             num_markings=graph.num_markings)


def is_safe(net: PetriNet, max_markings: int = 1_000_000) -> bool:
    """True iff the net is 1-bounded (every reachable marking is safe)."""
    result = check_boundedness(net, max_markings=max_markings)
    return result.bounded and result.safe


def find_deadlocks(net: PetriNet,
                   graph: Optional[ReachabilityGraph] = None) -> List[Marking]:
    """Reachable markings that enable no transition."""
    if graph is None:
        graph = build_reachability_graph(net)
    return graph.deadlocks()


@dataclass
class PersistencyViolation:
    """One direct conflict observed in the reachability graph.

    ``disabled`` was enabled at ``marking`` and is no longer enabled after
    firing ``fired``.
    """

    marking: Marking
    fired: str
    disabled: str

    def __str__(self) -> str:
        return f"{self.disabled} disabled by {self.fired}"


@dataclass
class TransitionPersistencyResult:
    """Outcome of the explicit transition-persistency check."""

    persistent: bool
    violations: List[PersistencyViolation] = field(default_factory=list)

    def conflicting_pairs(self) -> List[Tuple[str, str]]:
        """Distinct ``(fired, disabled)`` transition pairs."""
        return sorted({(v.fired, v.disabled) for v in self.violations})


def check_transition_persistency(net: PetriNet,
                                 graph: Optional[ReachabilityGraph] = None,
                                 first_violation_only: bool = False
                                 ) -> TransitionPersistencyResult:
    """Explicit check of Definition 3.3(1).

    A transition ``ti`` is non-persistent if it is enabled at a reachable
    marking ``m`` and becomes disabled after firing another transition
    ``tj`` that is also enabled at ``m``.
    """
    if graph is None:
        graph = build_reachability_graph(net)
    violations: List[PersistencyViolation] = []
    for marking in graph.markings:
        enabled = net.enabled_transitions(marking)
        if len(enabled) < 2:
            continue
        for fired in enabled:
            successor = net.fire(fired, marking)
            for other in enabled:
                if other == fired:
                    continue
                if not net.is_enabled(other, successor):
                    violations.append(
                        PersistencyViolation(marking, fired, other))
                    if first_violation_only:
                        return TransitionPersistencyResult(False, violations)
    return TransitionPersistencyResult(not violations, violations)


def live_transitions(net: PetriNet,
                     graph: Optional[ReachabilityGraph] = None) -> List[str]:
    """Transitions that fire at least once from the initial marking (L1-live)."""
    if graph is None:
        graph = build_reachability_graph(net)
    fired = graph.fired_transitions()
    return [t for t in net.transitions if t in fired]


def is_quasi_live(net: PetriNet,
                  graph: Optional[ReachabilityGraph] = None) -> bool:
    """True iff every transition fires at least once (no dead transitions)."""
    if graph is None:
        graph = build_reachability_graph(net)
    return not graph.dead_transitions()
