"""The asyncio HTTP daemon: sockets, routing, workers, lifecycle.

``ServeApp`` is a zero-extra-dependency HTTP/1.1 server hand-rolled on
``asyncio.start_server``: requests are small JSON bodies, responses are
either a single JSON object or a chunked ``application/x-ndjson`` event
stream (:mod:`repro.serve.protocol`).  The execution model is a bounded
``asyncio.Queue`` of :class:`~repro.serve.jobs.Job` objects drained by
``--jobs`` worker coroutines, each of which runs its job through
:meth:`~repro.serve.state.WarmState.run_task` -- the same
:func:`~repro.runner.worker.execute_payload_async` primitive the
``asyncio`` sweep backend is built on -- on a shared thread pool.

Routes::

    POST /check     verify an entry or raw .g text (stream or single)
    GET  /metrics   daemon metrics snapshot (JSON)
    GET  /healthz   liveness + schema version
    POST /shutdown  graceful drain-and-stop

Graceful shutdown is load-bearing, not cosmetic: the stop sequence
closes the listener, lets every queued job run to completion (handlers
keep streaming), then retires the workers and the executor -- so the
JSONL RunStore never ends up with the torn trailing line an aborted
write leaves behind (the shutdown tests reload the store and assert
``skipped_lines == 0``).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import signal
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Sequence, Tuple

from repro.serve import protocol
from repro.serve.jobs import Job
from repro.serve.state import WarmState

#: HTTP status lines for the replies the daemon actually sends.
_STATUS_LINES = {
    200: "200 OK",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
}

#: Largest request body accepted (a corpus ``.g`` text is a few KiB;
#: anything near this bound is not a verification request).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Seconds the drain sequence waits for in-flight handlers.
DRAIN_TIMEOUT_S = 60.0

#: ``Retry-After`` interval advertised on load-shedding 503s (queue
#: full, draining).  Deliberately short: a full queue on a warm daemon
#: drains at verification speed, so "come back in a second" is honest,
#: and clients with a :class:`~repro.fabric.policy.RetryPolicy` apply
#: their own exponential backoff on top anyway.
RETRY_AFTER_SECONDS = 1


class ServeApp:
    """One daemon instance: configuration, warm state and lifecycle."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 jobs: int = 2, queue_size: int = 64,
                 state_dir: Optional[str] = None,
                 trace_dir: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.jobs = max(1, jobs)
        self.queue_size = max(1, queue_size)
        if state_dir is None:
            state_dir = tempfile.mkdtemp(prefix="repro-serve-")
        self.state = WarmState(state_dir)
        self.metrics = self.state.metrics
        self.trace_dir = trace_dir
        self._queue: "asyncio.Queue[Optional[Job]]" = \
            asyncio.Queue(maxsize=self.queue_size)
        self._job_ids = itertools.count(1)
        self._draining = False
        self._stop = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._workers = []
        self._handlers = set()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started_monotonic = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the worker pool."""
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-serve")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._workers = [asyncio.create_task(self._worker())
                         for _ in range(self.jobs)]
        self._started_monotonic = time.monotonic()

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown is requested, then drain and stop."""
        await self._stop.wait()
        await self._drain()

    def request_shutdown(self) -> None:
        """Begin a graceful stop (idempotent; safe from signal handlers)."""
        self._draining = True
        self._stop.set()

    async def _drain(self) -> None:
        """The ordered stop: no new work, finish queued work, retire."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._queue.join()  # every accepted job ran to completion
        if self._handlers:       # let handlers flush their streams
            await asyncio.wait(set(self._handlers),
                               timeout=DRAIN_TIMEOUT_S)
        for _ in self._workers:
            await self._queue.put(None)
        await asyncio.gather(*self._workers, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    def run(self) -> int:
        """Blocking CLI entry point: serve until SIGINT/SIGTERM."""
        return asyncio.run(self._run_cli())

    async def _run_cli(self) -> int:
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        print(f"repro-serve: listening on http://{self.host}:{self.port} "
              f"(jobs={self.jobs}, queue={self.queue_size}, "
              f"state={self.state.state_dir})", flush=True)
        await self.serve_until_shutdown()
        print("repro-serve: drained and stopped", flush=True)
        return 0

    # ------------------------------------------------------------------
    # Test/embedding support: run the daemon on a background thread
    # ------------------------------------------------------------------
    def run_in_thread(self) -> "ServeApp":
        """Start the daemon on a daemon thread; returns once it listens."""
        ready = threading.Event()

        def runner() -> None:
            asyncio.run(self._thread_main(ready))

        self._thread = threading.Thread(target=runner, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("serve daemon failed to start")
        return self

    async def _thread_main(self, ready: threading.Event) -> None:
        await self.start()
        ready.set()
        await self.serve_until_shutdown()

    def stop(self, timeout: float = DRAIN_TIMEOUT_S) -> None:
        """Gracefully stop a :meth:`run_in_thread` daemon and join it."""
        if self._thread is None:
            return
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self.request_shutdown)
            except RuntimeError:
                pass  # loop already finished: nothing left to stop
        self._thread.join(timeout=timeout)
        self._thread = None

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                if job is None:
                    return
                await self._process(job)
            finally:
                self._queue.task_done()

    async def _process(self, job: Job) -> None:
        from repro import obs

        job.picked_up()
        job.events.put_nowait(
            protocol.running_event(job.id, job.task.name))
        try:
            # Activating the job's tracer here is what threads the
            # worker's entry/stage spans back to this request: the
            # execution primitive copies the context onto its executor
            # thread, and obs.tracing() without a trace_dir leaves the
            # outer activation in place.
            with obs.activated(job.tracer):
                result = await self.state.run_task(
                    job.task, executor=self._executor)
        except Exception as error:  # pragma: no cover - defensive
            job.finished("error")
            job.events.put_nowait(protocol.error_event(
                f"{type(error).__name__}: {error}", job_id=job.id))
            return
        job.finished(result.status)
        self.metrics.histogram("serve.request.seconds").observe(
            job.request_s)
        self.metrics.histogram("serve.queue_wait.seconds").observe(
            job.queue_wait_s)
        if not result.cached:
            self.metrics.histogram("serve.entry.seconds").observe(
                result.duration)
        job.events.put_nowait(protocol.result_event(job.id, result))

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            await self._serve_one(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        parsed = await self._read_request(reader, writer)
        if parsed is None:
            return
        method, path, body = parsed
        if method == "POST" and path == "/check":
            await self._handle_check(writer, body)
        elif method == "GET" and path == "/metrics":
            self._write_json(writer, 200, self.metrics_snapshot())
        elif method == "GET" and path == "/healthz":
            self._write_json(writer, 200, {
                "status": "draining" if self._draining else "ok",
                "schema": protocol.SERVE_SCHEMA_VERSION,
                "queue_depth": self._queue.qsize()})
        elif method == "POST" and path == "/shutdown":
            self._write_json(writer, 200, {"status": "draining"})
            await writer.drain()
            self.request_shutdown()
        else:
            self._write_json(writer, 404, protocol.error_event(
                f"no route for {method} {path}", status=404))
        await writer.drain()

    async def _read_request(self, reader, writer) \
            -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 3:
            self._write_json(writer, 400, protocol.error_event(
                "malformed request line", status=400))
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if not 0 <= length <= MAX_BODY_BYTES:
            self._write_json(writer, 400, protocol.error_event(
                "invalid or oversized Content-Length", status=400))
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target.partition("?")[0], body

    async def _handle_check(self, writer: asyncio.StreamWriter,
                            body: bytes) -> None:
        try:
            data = json.loads(body.decode("utf-8")) if body else None
            request = protocol.parse_check_request(data)
            task = self.state.make_task(request)
        except protocol.ProtocolError as error:
            self._write_json(writer, error.status, protocol.error_event(
                str(error), status=error.status))
            return
        except (ValueError, UnicodeDecodeError) as error:
            self._write_json(writer, 400, protocol.error_event(
                f"invalid request body: {error}", status=400))
            return
        if self._draining:
            self._write_json(writer, 503, protocol.error_event(
                "daemon is draining", status=503, retryable=True),
                extra_headers=(f"Retry-After: {RETRY_AFTER_SECONDS}",))
            return
        job = Job(next(self._job_ids), task,
                  asyncio.get_running_loop(),
                  extra_sinks=self._trace_sinks(task))
        self.metrics.counter("serve.requests").add(1)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            job.finished("error")
            self.metrics.counter("serve.rejected").add(1)
            self._write_json(writer, 503, protocol.error_event(
                f"job queue full ({self.queue_size})", status=503,
                retryable=True),
                extra_headers=(f"Retry-After: {RETRY_AFTER_SECONDS}",))
            return
        job.enqueued()
        self.metrics.gauge("serve.queue.depth").set(self._queue.qsize())
        queued = protocol.queued_event(job.id, task.name, task.fingerprint,
                                       self._queue.qsize(),
                                       base=task.config.base_fingerprint)
        if request.stream:
            await self._stream_events(writer, job, queued)
        else:
            await self._collect_result(writer, job)

    def _trace_sinks(self, task):
        if not self.trace_dir:
            return ()
        from repro.obs import JSONLSink

        return (JSONLSink.for_entry(self.trace_dir, task.name,
                                    task.fingerprint),)

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             job: Job, queued: Dict[str, object]) -> None:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        self._write_chunk(writer, protocol.encode_event(queued))
        await writer.drain()
        while True:
            event = await job.events.get()
            self._write_chunk(writer, protocol.encode_event(event))
            await writer.drain()
            if event.get("type") in protocol.TERMINAL_EVENTS:
                break
        writer.write(b"0\r\n\r\n")

    async def _collect_result(self, writer: asyncio.StreamWriter,
                              job: Job) -> None:
        while True:
            event = await job.events.get()
            if event.get("type") in protocol.TERMINAL_EVENTS:
                break
        status = 200 if event["type"] == "result" else \
            int(event.get("status") or 500)
        self._write_json(writer, status, event)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, object]:
        self.state.observe_stores()
        self.metrics.gauge("serve.queue.depth").set(self._queue.qsize())
        self.metrics.gauge("serve.uptime.seconds").set(
            round(time.monotonic() - self._started_monotonic, 3))
        return {"schema": protocol.SERVE_SCHEMA_VERSION,
                "metrics": self.metrics.snapshot()}

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, payload: bytes) -> None:
        writer.write(f"{len(payload):x}\r\n".encode("ascii"))
        writer.write(payload)
        writer.write(b"\r\n")

    @staticmethod
    def _write_json(writer: asyncio.StreamWriter, status: int,
                    payload: Dict[str, object],
                    extra_headers: Sequence[str] = ()) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        headers = "".join(f"{header}\r\n" for header in extra_headers)
        writer.write((f"HTTP/1.1 {_STATUS_LINES[status]}\r\n"
                      f"Content-Type: application/json\r\n"
                      f"Content-Length: {len(body)}\r\n"
                      f"{headers}"
                      f"Connection: close\r\n\r\n").encode("ascii"))
        writer.write(body)


def serve_main(argv) -> int:
    """Entry point of ``stg-check serve`` / ``python -m repro serve``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="stg-check serve",
        description="Run the always-warm verification daemon.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: 0 = pick a free port)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker coroutines / executor threads")
    parser.add_argument("--queue-size", type=int, default=64,
                        help="bounded job-queue capacity (full = 503)")
    parser.add_argument("--state-dir", default=None,
                        help="directory of the warm stores (default: a "
                             "fresh temporary directory)")
    parser.add_argument("--trace", metavar="DIR", default=None,
                        help="also write per-job repro.obs JSONL traces "
                             "into DIR")
    arguments = parser.parse_args(argv)
    if arguments.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {arguments.jobs}")
    if arguments.queue_size < 1:
        parser.error(f"--queue-size must be >= 1, "
                     f"got {arguments.queue_size}")
    state_dir = arguments.state_dir
    if state_dir is not None:
        os.makedirs(state_dir, exist_ok=True)
    app = ServeApp(host=arguments.host, port=arguments.port,
                   jobs=arguments.jobs, queue_size=arguments.queue_size,
                   state_dir=state_dir, trace_dir=arguments.trace)
    return app.run()
