"""The daemon's process-wide warm state.

What makes ``repro.serve`` *always-warm* is that nothing request-scoped
owns a cache: one :class:`WarmState` object lives for the daemon's whole
life and owns

* the :class:`~repro.runner.store.RunStore` of finished verdicts
  (repeat requests for the same task content are served without running
  anything),
* the shared :class:`~repro.cache.BDDStore` directory (a repeat request
  that *does* recompute -- say, a different check subset over the same
  specification -- still skips the reachability traversal; the store's
  hit counters prove it.  Schema-2 ``base`` requests stretch the same
  store to *edited* specifications: :meth:`WarmState.resolve_base`
  turns the reference into a fingerprint and the engine's delta
  warm-start seeds the traversal from the base entry),
* the interned corpus materialisations and raw ``.g`` texts (repeat
  requests re-use the parsed entry data instead of re-expanding it),
* the per-fingerprint single-flight locks (N concurrent requests for
  the same content cost one computation), and
* the daemon-wide :class:`~repro.obs.metrics.MetricsRegistry` that
  ``GET /metrics`` snapshots.

Task construction mirrors :class:`~repro.runner.plan.SweepPlan`
expansion exactly -- same name, canonical text, arbitration-place
specialisation and normalised expected metadata -- so a daemon verdict
is byte-identical (stable view) to the ``batch-check`` verdict for the
same entry.  Client configs pass through
:meth:`~repro.api.config.EngineConfig.without_execution_knobs` before
the daemon stamps its own BDD-cache directory on: callers choose *what*
to verify, never where the daemon caches or how long it may run.

Verification itself happens in :func:`repro.runner.worker.
execute_payload_async` -- the serve layer never touches engine
internals (analyzer rule RA203 pins that).
"""

from __future__ import annotations

import asyncio
import os
import re
from typing import Dict, Optional, Tuple

from repro.api.config import EngineConfig
from repro.cache import BDDStore, reachable_fingerprint
from repro.obs import MetricsRegistry
from repro.runner.plan import SweepTask, normalise_expected
from repro.runner.results import EntryResult
from repro.runner.store import RunStore
from repro.runner.worker import execute_payload_async
from repro.serve.protocol import CheckRequest, ProtocolError, anonymous_name

_FINGERPRINT = re.compile(r"[0-9a-f]{64}")

#: Subdirectories of the daemon state directory.
RUN_STORE_DIR = "run-store"
BDD_STORE_DIR = "bdd-store"

#: Interned material of one verification subject: cache name, canonical
#: ``.g`` text, arbitration places and normalised expected verdicts.
_Material = Tuple[str, str, Tuple[str, ...], Dict[str, object]]


class WarmState:
    """Everything the daemon keeps warm between requests."""

    def __init__(self, state_dir: str,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.state_dir = os.path.abspath(state_dir)
        self.run_store = RunStore(os.path.join(self.state_dir,
                                               RUN_STORE_DIR))
        self.bdd_dir = os.path.join(self.state_dir, BDD_STORE_DIR)
        self.bdd_store = BDDStore.shared(self.bdd_dir)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._corpus_materials: Dict[str, _Material] = {}
        self._g_texts: Dict[str, str] = {}
        self._flights: Dict[str, asyncio.Lock] = {}
        #: Task name -> raw ``.g`` text of every task this daemon has
        #: built, so a later request can say ``base=<that name>``.
        self._task_sources: Dict[str, str] = {}
        #: (name, raw text) -> canonical text, as the worker would
        #: serialise it (parse under the task name, write back).
        self._canonical_texts: Dict[Tuple[str, str], str] = {}
        self._prime_metrics()

    def _prime_metrics(self) -> None:
        """Materialise the documented metrics so ``/metrics`` serves the
        full vocabulary from the first scrape -- a counter that has not
        fired yet reads 0 rather than being absent."""
        self.metrics.counter("serve.requests")
        self.metrics.counter("serve.rejected")
        self.metrics.counter("serve.runstore.hits")
        self.metrics.counter("serve.runstore.misses")
        self.metrics.counter("serve.delta.requests")
        self.metrics.histogram("serve.request.seconds")
        self.metrics.histogram("serve.queue_wait.seconds")
        self.metrics.histogram("serve.entry.seconds")
        self.metrics.gauge("serve.queue.depth").set(0)
        self.observe_stores()

    # ------------------------------------------------------------------
    # Task construction (the batch-check parity half of the contract)
    # ------------------------------------------------------------------
    def make_task(self, request: CheckRequest) -> SweepTask:
        """Build the :class:`SweepTask` a request describes.

        Corpus requests expand exactly like
        :meth:`~repro.runner.plan.SweepPlan.tasks` does -- including the
        arbitration-place specialisation from registry metadata -- so
        the fingerprint (and therefore the RunStore key and the stable
        verdict) matches a ``batch-check`` run of the same entry.
        """
        if request.entry is not None:
            name, g_text, arbitration, expected = \
                self._corpus_material(request.entry)
            if request.name is not None:
                name = request.name
        else:
            g_text = self._intern_g_text(request.g_text)
            name = request.name or anonymous_name(g_text)
            arbitration = None
            expected = {}
        try:
            config = EngineConfig.from_dict(dict(request.config or {}))
        except Exception as error:
            raise ProtocolError(f"invalid engine config: {error}") from None
        config = config.without_execution_knobs().with_overrides(
            bdd_cache_dir=self.bdd_dir)
        if arbitration is not None:
            config = config.with_overrides(
                arbitration_places=tuple(arbitration))
        if request.base is not None:
            self.metrics.counter("serve.delta.requests").add(1)
            config = config.with_overrides(
                base_fingerprint=self.resolve_base(request.base, config))
        self._task_sources[name] = g_text
        return SweepTask(name=name, g_text=g_text, config=config,
                         expected=expected, delay=request.delay,
                         checks=request.checks,
                         provenance={"backend": "serve"})

    def resolve_base(self, base: str, config: EngineConfig) -> str:
        """Turn a request's ``base`` reference into a BDD-store fingerprint.

        Accepts a raw 64-hex reachability fingerprint (as echoed in the
        ``base`` field of delta ``queued`` events -- distinct from the
        event's ``fingerprint``, which keys the RunStore), the task
        name of an earlier request on this daemon, or a corpus entry
        name; anything else is a 404
        :class:`ProtocolError`.  Names are canonicalised exactly the way
        the worker stores entries -- parse the task's text under its
        name, write it back -- so the fingerprint matches what the base
        run deposited in the shared store.
        """
        if _FINGERPRINT.fullmatch(base):
            return base
        g_text = self._task_sources.get(base)
        name = base
        if g_text is None:
            try:
                name, g_text, _, _ = self._corpus_material(base)
            except ProtocolError:
                raise ProtocolError(
                    f"unknown base {base!r}: not a reachability "
                    f"fingerprint, a previously checked task name, or a "
                    f"corpus entry", status=404) from None
        return reachable_fingerprint(self._canonical_text(name, g_text),
                                     config)

    def _canonical_text(self, name: str, g_text: str) -> str:
        """The worker-side canonical serialisation of a task's text."""
        key = (name, g_text)
        canonical = self._canonical_texts.get(key)
        if canonical is None:
            from repro.stg.parser import parse_g
            from repro.stg.writer import to_g_string

            canonical = to_g_string(parse_g(g_text, name=name))
            self._canonical_texts[key] = canonical
        return canonical

    def _corpus_material(self, entry_name: str) -> _Material:
        """The interned materialisation of a registered corpus entry.

        Computed once per entry name for the daemon's lifetime:
        ``g_text`` materialisation can mean running a family builder,
        which repeat requests must not pay again.
        """
        material = self._corpus_materials.get(entry_name)
        if material is None:
            from repro import corpus

            try:
                entry = corpus.entry(entry_name)
            except Exception as error:
                raise ProtocolError(str(error), status=404) from None
            material = (entry.name, entry.g_text,
                        tuple(entry.arbitration_places),
                        normalise_expected(entry.expected))
            self._corpus_materials[entry_name] = material
        return material

    def _intern_g_text(self, g_text: str) -> str:
        """One canonical string object per distinct ``.g`` source."""
        return self._g_texts.setdefault(g_text, g_text)

    # ------------------------------------------------------------------
    # Execution (single-flight, store-backed)
    # ------------------------------------------------------------------
    def flight_lock(self, fingerprint: str) -> asyncio.Lock:
        """The single-flight lock of one task fingerprint."""
        lock = self._flights.get(fingerprint)
        if lock is None:
            lock = self._flights[fingerprint] = asyncio.Lock()
        return lock

    async def run_task(self, task: SweepTask,
                       executor: Optional[object] = None) -> EntryResult:
        """Serve a task from the warm stores, computing at most once.

        The double-checked single-flight dance: a RunStore hit is free;
        on a miss the fingerprint's lock serialises concurrent
        duplicates, and whoever wins re-checks the store before paying
        for :func:`~repro.runner.worker.execute_payload_async`.  The
        losers then hit the record the winner persisted -- N concurrent
        identical requests run one traversal (the concurrency tests
        assert exactly that through these counters).
        """
        hit = self.run_store.lookup(task.name, task.fingerprint)
        if hit is not None:
            self.metrics.counter("serve.runstore.hits").add(1)
            return hit
        self.metrics.counter("serve.runstore.misses").add(1)
        async with self.flight_lock(task.fingerprint):
            hit = self.run_store.lookup(task.name, task.fingerprint)
            if hit is not None:
                self.metrics.counter("serve.runstore.hits").add(1)
                return hit
            payload = await execute_payload_async(task.to_payload(),
                                                  executor=executor)
            result = EntryResult.from_dict(payload)
            self.run_store.put(result)
            return result

    # ------------------------------------------------------------------
    # Introspection (the /metrics half)
    # ------------------------------------------------------------------
    def observe_stores(self) -> None:
        """Refresh the store-health gauges ahead of a metrics snapshot."""
        self.metrics.gauge("serve.bdd.hits").set(self.bdd_store.hits)
        self.metrics.gauge("serve.bdd.misses").set(self.bdd_store.misses)
        self.metrics.gauge("serve.bdd.warm_starts").set(
            self.bdd_store.warm_starts)
        self.metrics.gauge("serve.bdd.invalidations").set(
            self.bdd_store.invalidations)
        self.metrics.gauge("serve.bdd.delta_hits").set(
            self.bdd_store.delta_hits)
        self.metrics.gauge("serve.bdd.delta_seeds").set(
            self.bdd_store.delta_seeds)
        self.metrics.gauge("serve.bdd.delta_prewarms").set(
            self.bdd_store.delta_prewarms)
        self.metrics.gauge("serve.bdd.delta_colds").set(
            self.bdd_store.delta_colds)
        self.metrics.gauge("serve.runstore.records").set(
            len(self.run_store))
        self.metrics.gauge("serve.intern.entries").set(
            len(self._corpus_materials) + len(self._g_texts))
