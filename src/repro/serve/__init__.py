"""``repro.serve``: the always-warm asyncio verification daemon.

Batch sweeps (:mod:`repro.runner`) pay the full cost of process
startup, corpus expansion and cold caches on every invocation.  This
package keeps all of that *warm* in one long-lived process: an asyncio
HTTP/JSON daemon (``stg-check serve`` / ``python -m repro serve``) that
accepts ``.g`` text or corpus-entry requests, queues them on a bounded
job queue, runs them on a worker pool built on the exact execution
primitive of the ``asyncio`` sweep backend
(:func:`repro.runner.worker.execute_payload_async`), and streams
per-job progress events as JSON lines.

The contracts, in one sentence each:

* **Parity** -- a daemon verdict's ``stable`` view is byte-identical to
  the ``batch-check`` stable JSON for the same task content.
* **Warmth** -- repeat requests are served from the shared
  :class:`~repro.runner.store.RunStore` / :class:`~repro.cache.BDDStore`
  without re-running anything (counters prove it), and N concurrent
  identical requests cost one computation (single-flight).
* **Facade purity** -- serve code verifies only through
  :func:`repro.api.run` (via the worker primitive) and never feeds
  anything into fingerprints or stable views (analyzer rule RA203).
* **Observability** -- every request is a :mod:`repro.obs` span tree
  (``request -> queue_wait -> entry -> stages``) and ``GET /metrics``
  snapshots the daemon-wide registry.
"""

from repro.serve.app import ServeApp, serve_main
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.jobs import Job, StreamSink
from repro.serve.protocol import (
    SERVE_SCHEMA_VERSION,
    TERMINAL_EVENTS,
    CheckRequest,
    ProtocolError,
    parse_check_request,
)
from repro.serve.state import WarmState

__all__ = [
    "CheckRequest",
    "Job",
    "ProtocolError",
    "SERVE_SCHEMA_VERSION",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "StreamSink",
    "TERMINAL_EVENTS",
    "WarmState",
    "parse_check_request",
    "serve_main",
]
