"""A stdlib blocking client for the verification daemon.

:class:`ServeClient` speaks the :mod:`repro.serve.protocol` schema over
``http.client`` -- no extra dependencies, usable from tests, the load
harness (``tools/load_test.py``) and scripts alike::

    from repro.serve import ServeClient

    client = ServeClient(port=8642)
    result = client.check(entry="vme_read")          # terminal event
    result["stable"]                                  # batch-check parity
    for event in client.check_stream(entry="vme_read"):
        ...                                           # live progress

``http.client`` decodes chunked transfer-encoding transparently and the
response object supports line iteration, which is all the JSONL stream
needs.  Every call opens one connection (the daemon answers
``Connection: close``), so a client object is cheap and stateless.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Dict, Iterator, Optional, Sequence

from repro.fabric.policy import RetryPolicy
from repro.serve.protocol import TERMINAL_EVENTS


class ServeClientError(RuntimeError):
    """An HTTP-level or protocol-level failure reported by the daemon."""

    def __init__(self, message: str, status: int = 0,
                 payload: Optional[Dict[str, object]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServeClient:
    """Blocking HTTP client of one ``repro.serve`` daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 120.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Opt-in bounded retry of load-shedding refusals.  When set, a
        #: 503 whose error event carries ``retryable: true`` (queue
        #: full, draining) is resubmitted up to ``retry.max_attempts``
        #: times with the policy's deterministic exponential backoff --
        #: the same :class:`~repro.fabric.policy.RetryPolicy` the lease
        #: coordinator uses, so one spec string tunes both layers.
        #: Genuine failures (4xx, 500, terminal ``error`` events) are
        #: never retried.
        self.retry = retry
        self._server_schema: Optional[int] = None

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def check(self, entry: Optional[str] = None,
              g_text: Optional[str] = None, name: Optional[str] = None,
              config: Optional[Dict[str, object]] = None,
              checks: Optional[Sequence[str]] = None,
              delay: float = 0.0,
              base: Optional[str] = None) -> Dict[str, object]:
        """Run one check and return the terminal ``result`` event.

        Uses the non-streaming protocol (one JSON response).  A terminal
        ``error`` event -- and any HTTP error -- raises
        :class:`ServeClientError`.  ``base`` (schema 2) requests a delta
        warm-start from an earlier task name, corpus entry or
        reachability fingerprint; against a schema-1 daemon it raises
        before anything is sent (see :meth:`server_schema`).
        """
        if base is not None:
            self._require_schema(2, "base")
        body = self._check_body(entry, g_text, name, config, checks,
                                delay, stream=False, base=base)
        response = self._post_check(body)
        payload = self._read_json(response)
        if response.status != 200 or payload.get("type") != "result":
            raise ServeClientError(
                str(payload.get("error", f"HTTP {response.status}")),
                status=response.status, payload=payload)
        return payload

    def check_stream(self, entry: Optional[str] = None,
                     g_text: Optional[str] = None,
                     name: Optional[str] = None,
                     config: Optional[Dict[str, object]] = None,
                     checks: Optional[Sequence[str]] = None,
                     delay: float = 0.0,
                     base: Optional[str] = None
                     ) -> Iterator[Dict[str, object]]:
        """Yield the event stream of one check, ending on the terminal
        event (which is yielded too, never raised: streaming callers see
        the protocol verbatim).  ``base`` as on :meth:`check`."""
        if base is not None:
            self._require_schema(2, "base")
        body = self._check_body(entry, g_text, name, config, checks,
                                delay, stream=True, base=base)
        response = self._post_check(body)
        if response.status != 200:
            payload = self._read_json(response)
            raise ServeClientError(
                str(payload.get("error", f"HTTP {response.status}")),
                status=response.status, payload=payload)
        try:
            for line in response:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                yield event
                if event.get("type") in TERMINAL_EVENTS:
                    return
        finally:
            response.close()

    @staticmethod
    def _check_body(entry, g_text, name, config, checks, delay,
                    stream, base=None) -> Dict[str, object]:
        body: Dict[str, object] = {"stream": stream}
        if entry is not None:
            body["entry"] = entry
        if g_text is not None:
            body["g_text"] = g_text
        if name is not None:
            body["name"] = name
        if config is not None:
            body["config"] = dict(config)
        if checks is not None:
            body["checks"] = list(checks)
        if delay:
            body["delay"] = delay
        if base is not None:
            body["base"] = base
        return body

    # ------------------------------------------------------------------
    # Schema negotiation
    # ------------------------------------------------------------------
    def server_schema(self) -> int:
        """The daemon's protocol schema version (cached per client).

        One ``GET /healthz`` on first use; a new-client-vs-old-server
        feature mismatch then fails fast on this side of the wire with a
        message naming both versions, instead of an opaque 400 from a
        daemon that never heard of the field.
        """
        if self._server_schema is None:
            self._server_schema = int(self.health().get("schema", 1))
        return self._server_schema

    def _require_schema(self, minimum: int, feature: str) -> None:
        schema = self.server_schema()
        if schema < minimum:
            raise ServeClientError(
                f"{feature!r} needs protocol schema >= {minimum}, but "
                f"the daemon at {self.host}:{self.port} serves schema "
                f"{schema}")

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, object]:
        """The daemon's metrics snapshot (``GET /metrics``)."""
        return self._simple("GET", "/metrics")

    def health(self) -> Dict[str, object]:
        """Liveness and schema info (``GET /healthz``)."""
        return self._simple("GET", "/healthz")

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to drain and stop (``POST /shutdown``)."""
        return self._simple("POST", "/shutdown")

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _post_check(self, body: Dict[str, object]):
        """POST the check body, retrying retryable 503s when opted in.

        Without a :attr:`retry` policy this is one plain request -- the
        caller sees the 503 exactly as before.  With one, a refusal
        whose body says ``retryable: true`` sleeps the policy's
        deterministic backoff (jitter-keyed on the entry name, so a
        thundering herd of identical clients still de-synchronises) and
        resubmits; the attempt budget exhausting raises the last
        refusal as a :class:`ServeClientError`.
        """
        key = str(body.get("entry") or body.get("name") or "")
        attempt = 1
        while True:
            response = self._request("POST", "/check", body)
            if response.status != 503 or self.retry is None:
                return response
            payload = self._read_json(response)
            if (payload.get("retryable") is not True
                    or attempt >= self.retry.max_attempts):
                raise ServeClientError(
                    str(payload.get("error", "HTTP 503")),
                    status=response.status, payload=payload)
            attempt += 1
            time.sleep(self.retry.delay_for(attempt, key))

    def _simple(self, method: str, path: str) -> Dict[str, object]:
        response = self._request(method, path)
        payload = self._read_json(response)
        if response.status != 200:
            raise ServeClientError(
                str(payload.get("error", f"HTTP {response.status}")),
                status=response.status, payload=payload)
        return payload

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None):
        connection = HTTPConnection(self.host, self.port,
                                    timeout=self.timeout)
        encoded = (json.dumps(body).encode("utf-8")
                   if body is not None else None)
        headers = {"Content-Type": "application/json"} if encoded else {}
        try:
            connection.request(method, path, body=encoded, headers=headers)
            return connection.getresponse()
        except OSError as error:
            connection.close()
            raise ServeClientError(
                f"cannot reach daemon at {self.host}:{self.port}: "
                f"{error}") from None

    @staticmethod
    def _read_json(response) -> Dict[str, object]:
        try:
            with response:
                return json.loads(response.read().decode("utf-8"))
        except ValueError as error:
            raise ServeClientError(
                f"daemon sent unparseable JSON: {error}",
                status=response.status) from None
