"""Jobs: what travels from a request handler to a worker coroutine.

A :class:`Job` packages one accepted ``POST /check`` into everything a
daemon worker needs: the :class:`~repro.runner.plan.SweepTask` to run,
the per-job event queue the handler streams from, and a request-scoped
:class:`~repro.obs.trace.Tracer` whose span tree is
``request -> queue_wait`` on the handler side and (once a worker picks
the job up and activates the tracer around the execution primitive)
``request -> entry -> parse/traversal/check...`` on the worker side.

The bridge between the two worlds is :class:`StreamSink`: a tracer sink
that forwards every closed span as a protocol ``stage`` event onto the
job's asyncio queue.  Spans close on the *executor thread* while the
queue lives on the *event loop*, so the sink crosses over with
``loop.call_soon_threadsafe`` -- the only thread-safe way to wake a
pending ``queue.get()`` from outside the loop.
"""

from __future__ import annotations

import asyncio
from typing import Mapping, Optional

from repro import obs
from repro.runner.plan import SweepTask
from repro.serve import protocol

#: Spans deeper than this are not streamed to clients.  Depth 0 is the
#: ``request`` span (summarised by the terminal event, not forwarded),
#: depth 1 is ``queue_wait``/``entry``, depth 2 the pipeline stages
#: (``parse``, ``traversal``, one ``check`` span per check).  Deeper
#: kernel spans stay in the trace file (``--trace``), not on the wire.
STREAM_DEPTH_LIMIT = 2


class StreamSink:
    """Tracer sink forwarding closed spans to a job's event queue."""

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 job: "Job") -> None:
        self._loop = loop
        self._job = job

    def emit(self, record: Mapping[str, object]) -> None:
        if record.get("type") != "span" or record.get("name") == "request":
            return
        if int(record.get("depth") or 0) > STREAM_DEPTH_LIMIT:
            return
        event = protocol.stage_event(self._job.id, record)
        self._loop.call_soon_threadsafe(self._job.events.put_nowait, event)


class Job:
    """One accepted check request on its way through the daemon."""

    def __init__(self, job_id: int, task: SweepTask,
                 loop: asyncio.AbstractEventLoop,
                 extra_sinks=()) -> None:
        self.id = job_id
        self.task = task
        #: Events the handler streams to the client; workers (and the
        #: tracer sink) produce, exactly one handler consumes.
        self.events: "asyncio.Queue[dict]" = asyncio.Queue()
        self.tracer = obs.Tracer(
            sinks=[StreamSink(loop, self), *extra_sinks],
            meta={"entry": task.name, "fingerprint": task.fingerprint,
                  "provenance": {"backend": "serve"}})
        self._request_span = self.tracer.span("request", entry=task.name)
        self._request_span.__enter__()
        self._queue_span: Optional[obs.Span] = None

    # ------------------------------------------------------------------
    # Span lifecycle (handler enqueues, worker picks up, worker finishes)
    # ------------------------------------------------------------------
    def enqueued(self) -> None:
        """Open the ``queue_wait`` span (the handler just enqueued us)."""
        self._queue_span = self.tracer.span("queue_wait")
        self._queue_span.__enter__()

    def picked_up(self) -> None:
        """Close ``queue_wait`` (a worker owns the job now)."""
        if self._queue_span is not None:
            self._queue_span.__exit__(None, None, None)

    def finished(self, status: str) -> None:
        """Close the ``request`` span and the tracer."""
        self._request_span.annotate(status=status)
        self._request_span.__exit__(None, None, None)
        self.tracer.finish()

    @property
    def queue_wait_s(self) -> float:
        return (self._queue_span.duration_s
                if self._queue_span is not None else 0.0)

    @property
    def request_s(self) -> float:
        return self._request_span.duration_s
