"""The wire schema of the verification daemon.

One place defines what travels over a ``repro.serve`` connection: the
shape of a ``POST /check`` request body, the event records a streaming
response emits (one JSON object per line), and the validation errors a
malformed request raises.  The daemon (:mod:`repro.serve.app`) and the
client (:mod:`repro.serve.client`) both import from here, so the two
sides cannot drift.

A check request selects *what to verify* -- a registered corpus entry
(``entry``) or raw ``.g`` text (``g_text``) -- plus the semantic knobs
of the run: an :class:`~repro.api.config.EngineConfig` dict (execution
knobs are stripped server-side; the daemon owns its cache directories)
and an optional check subset.  The response is a stream of events::

    {"type": "queued",  "job": 7, "name": ..., "fingerprint": ..., ...}
    {"type": "running", "job": 7, "name": ...}
    {"type": "stage",   "job": 7, "stage": "traversal", "duration_s": ...}
    {"type": "stage",   "job": 7, "stage": "check", "attrs": {...}, ...}
    {"type": "result",  "job": 7, "status": "ok", "cached": false,
     "entry": {...EntryResult.to_dict()...},
     "stable": {...EntryResult.stable_dict()...}}

``result`` and ``error`` are terminal: exactly one of them ends every
stream.  The ``stable`` view inside ``result`` is byte-identical to what
``batch-check`` emits for the same task content -- the daemon is a
serving face of the sweep fabric, not a second verifier.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.runner.results import EntryResult

#: Bump when the request/event schema changes incompatibly; served in
#: every ``queued`` event and by ``GET /healthz`` so clients can reject
#: a future they do not understand.
#: (2: the optional ``base`` request field -- delta warm-starts for
#:     edited re-checks -- and strict validation of the keys *inside*
#:     the ``config`` dict, which schema 1 silently ignored.)
SERVE_SCHEMA_VERSION = 2

#: Event types that end a job's stream.
TERMINAL_EVENTS = ("result", "error")

#: Top-level keys a ``POST /check`` body may carry.
REQUEST_KEYS = ("entry", "g_text", "name", "config", "checks", "delay",
                "stream", "base")


class ProtocolError(ValueError):
    """A malformed or unserviceable request (maps to an HTTP 4xx)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class CheckRequest:
    """A validated ``POST /check`` body.

    Exactly one of ``entry`` (a corpus name) and ``g_text`` (raw ``.g``
    source) is set.  ``config`` is the raw client dict -- the warm state
    normalises it through :class:`~repro.api.config.EngineConfig` and
    strips the execution knobs.  ``delay`` rides
    :attr:`~repro.runner.plan.SweepTask.delay` (a testing hook, not
    fingerprint material); ``stream`` selects chunked JSONL streaming
    (the default) versus a single JSON response.

    ``base`` (schema 2) requests a delta warm-start: a corpus entry
    name, the task name of an earlier request on this daemon, or a raw
    reachability fingerprint.  The warm state resolves it against the
    shared BDD store (:meth:`repro.serve.state.WarmState.resolve_base`).
    """

    entry: Optional[str] = None
    g_text: Optional[str] = None
    name: Optional[str] = None
    config: Optional[Mapping[str, object]] = None
    checks: Optional[Tuple[str, ...]] = None
    delay: float = 0.0
    stream: bool = True
    base: Optional[str] = None


def parse_check_request(data: object) -> CheckRequest:
    """Validate a decoded request body into a :class:`CheckRequest`.

    Unknown keys are rejected (a typo'd ``"check"`` must not silently
    run every check), as are type mismatches; engine/config semantics
    are validated later by :class:`~repro.api.config.EngineConfig`.
    """
    if not isinstance(data, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got "
            f"{type(data).__name__}")
    unknown = sorted(set(data) - set(REQUEST_KEYS))
    if unknown:
        raise ProtocolError(
            f"unknown request key(s) {', '.join(map(repr, unknown))}; "
            f"expected: {', '.join(REQUEST_KEYS)}")
    entry = _optional_str(data, "entry")
    g_text = _optional_str(data, "g_text")
    if (entry is None) == (g_text is None):
        raise ProtocolError(
            "exactly one of 'entry' (a corpus name) and 'g_text' "
            "(raw .g source) is required")
    config = data.get("config")
    if config is not None:
        if not isinstance(config, dict):
            raise ProtocolError("'config' must be a JSON object (an "
                                "EngineConfig dict)")
        _validate_config_keys(config)
    checks = data.get("checks")
    if checks is not None:
        if (not isinstance(checks, (list, tuple))
                or not all(isinstance(check, str) for check in checks)):
            raise ProtocolError("'checks' must be a list of check names")
        checks = tuple(checks)
    delay = data.get("delay", 0.0)
    if not isinstance(delay, (int, float)) or isinstance(delay, bool) \
            or delay < 0:
        raise ProtocolError("'delay' must be a non-negative number")
    stream = data.get("stream", True)
    if not isinstance(stream, bool):
        raise ProtocolError("'stream' must be a boolean")
    return CheckRequest(entry=entry, g_text=g_text,
                        name=_optional_str(data, "name"), config=config,
                        checks=checks, delay=float(delay), stream=stream,
                        base=_optional_str(data, "base"))


def _validate_config_keys(config: Mapping[str, object]) -> None:
    """Reject unknown keys inside the ``config`` dict.

    :meth:`EngineConfig.from_dict` deliberately ignores unknown keys
    (old serialised configs must keep loading), but on the wire that
    tolerance turns a typo'd ``"orderin"`` into a silently different
    run -- so the protocol is strict where the persistence layer is
    lenient.
    """
    from dataclasses import fields

    from repro.api.config import EngineConfig

    known = tuple(spec.name for spec in fields(EngineConfig))
    unknown = sorted(set(config) - set(known))
    if unknown:
        raise ProtocolError(
            f"unknown config key(s) {', '.join(map(repr, unknown))}; "
            f"expected EngineConfig fields: {', '.join(known)}")


def _optional_str(data: Mapping[str, object], key: str) -> Optional[str]:
    value = data.get(key)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{key!r} must be a non-empty string")
    return value


def anonymous_name(g_text: str) -> str:
    """The cache name of an unnamed raw-``g_text`` request.

    Content-derived, so two clients posting the same text share one
    RunStore key (and therefore one computation).
    """
    digest = hashlib.sha256(g_text.encode("utf-8")).hexdigest()
    return f"g-{digest[:12]}"


# ----------------------------------------------------------------------
# Event records (one JSON line each on a streaming response)
# ----------------------------------------------------------------------
def queued_event(job_id: int, name: str, fingerprint: str,
                 queue_depth: int,
                 base: Optional[str] = None) -> Dict[str, object]:
    event: Dict[str, object] = {
        "type": "queued", "schema": SERVE_SCHEMA_VERSION,
        "job": job_id, "name": name, "fingerprint": fingerprint,
        "queue_depth": queue_depth}
    if base is not None:
        # The resolved base *fingerprint* -- what a client should quote
        # back as "base" to re-use the same entry directly.
        event["base"] = base
    return event


def running_event(job_id: int, name: str) -> Dict[str, object]:
    return {"type": "running", "job": job_id, "name": name}


def stage_event(job_id: int,
                span_record: Mapping[str, object]) -> Dict[str, object]:
    """A progress event built from a closed :mod:`repro.obs` span record.

    The daemon forwards the worker's span stream (``queue_wait``,
    ``entry``, ``parse``, ``traversal``, per-check spans, ...) as it
    closes, which is what makes the response *live* progress rather
    than a post-hoc report.
    """
    event: Dict[str, object] = {
        "type": "stage", "job": job_id,
        "stage": span_record["name"],
        "duration_s": span_record["duration_s"],
    }
    attrs = span_record.get("attrs")
    if attrs:
        event["attrs"] = dict(attrs)
    return event


def result_event(job_id: int, result: EntryResult) -> Dict[str, object]:
    """The terminal success event: the full result plus its stable view.

    ``stable`` is :meth:`~repro.runner.results.EntryResult.stable_dict`
    -- byte-identical to the ``batch-check`` stable JSON for the same
    task content, which the parity tests serialise and compare.
    """
    return {"type": "result", "job": job_id, "name": result.name,
            "status": result.status, "cached": result.cached,
            "duration_s": result.duration,
            "entry": result.to_dict(), "stable": result.stable_dict()}


def error_event(message: str, job_id: Optional[int] = None,
                status: int = 500,
                retryable: Optional[bool] = None) -> Dict[str, object]:
    """The terminal failure event (also the body of plain HTTP errors).

    ``retryable=True`` marks load-shedding refusals (queue full,
    draining): the request was never attempted, so resubmitting it
    after the ``Retry-After`` interval is safe and encouraged --
    :class:`~repro.serve.client.ServeClient` honours the flag with its
    opt-in bounded retry.  The field is present only when set, so
    schema-2 consumers see unchanged events for genuine failures.
    """
    event: Dict[str, object] = {"type": "error", "error": message,
                                "status": status}
    if job_id is not None:
        event["job"] = job_id
    if retryable is not None:
        event["retryable"] = retryable
    return event


def encode_event(event: Mapping[str, object]) -> bytes:
    """One event as one JSONL wire line (sorted keys: stable for tests)."""
    return (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
