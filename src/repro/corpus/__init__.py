"""The benchmark corpus: named STG specifications as a first-class subsystem.

The corpus turns the specifications the repository is evaluated on --
integration-test controllers, the paper's Table-1-style circuits and the
negative examples of Section 3 -- into registered, metadata-carrying
entries instead of loose files::

    from repro import corpus

    corpus.names()                      # all registered benchmarks
    stg = corpus.load("sbuf_send_ctl")  # parsed via repro.stg.parser
    corpus.write_g("vme_read", "/tmp/vme_read.g")
    corpus.entry("mutex_element").expected["csc"]   # -> True

Every entry records its expected verdicts (consistency, persistency,
CSC/USC, deadlock freedom, state count, classification), which the
``batch-check`` CLI mode and the cross-engine tests validate against both
verification engines.
"""

from repro.corpus.loader import (
    CorpusError,
    ensure_g_file,
    entry,
    g_text,
    load,
    names,
    structurally_equal,
    write_all,
    write_g,
)
from repro.corpus.registry import (
    FAMILIES,
    REGISTRY,
    REPORT_FIELDS,
    CorpusEntry,
    ScalableFamily,
    family,
    mismatches_against,
)

__all__ = [
    "FAMILIES",
    "REGISTRY",
    "REPORT_FIELDS",
    "CorpusEntry",
    "ScalableFamily",
    "family",
    "mismatches_against",
    "CorpusError",
    "ensure_g_file",
    "entry",
    "g_text",
    "load",
    "names",
    "structurally_equal",
    "write_all",
    "write_g",
]
