"""Loader API of the benchmark corpus.

Thin functions over :data:`repro.corpus.registry.REGISTRY`:

* :func:`names` / :func:`entry` -- enumerate and look up entries,
* :func:`load` -- parse an entry's canonical text into an
  :class:`~repro.stg.stg.STG` via :func:`repro.stg.parser.parse_g` (the
  corpus exercises the same code path as an external ``.g`` file),
* :func:`write_g` / :func:`write_all` / :func:`ensure_g_file` --
  materialise entries as ``.g`` files on demand,
* :func:`structurally_equal` -- STG equivalence used by the roundtrip
  tests (parse -> write -> parse must be the identity).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List

from repro.corpus.registry import REGISTRY, CorpusEntry
from repro.stg.parser import parse_g
from repro.stg.signals import STGError
from repro.stg.stg import STG


class CorpusError(STGError, KeyError):
    """An unknown corpus entry was requested."""

    # KeyError.__str__ renders the repr of the message (quotes included);
    # restore normal exception formatting for user-facing output.
    __str__ = BaseException.__str__


def names() -> List[str]:
    """All registered benchmark names, in registration order."""
    return list(REGISTRY)


def entry(name: str) -> CorpusEntry:
    """Look up one entry; raises :class:`CorpusError` naming the options."""
    try:
        return REGISTRY[name]
    except KeyError:
        available = ", ".join(names())
        raise CorpusError(
            f"unknown corpus entry {name!r}; available: {available}") from None


def g_text(name: str) -> str:
    """Canonical ``.g`` text of an entry."""
    return entry(name).g_text


def load(name: str) -> STG:
    """Parse an entry into an STG (through :func:`repro.stg.parser.parse_g`)."""
    return parse_g(g_text(name), name=name)


def write_g(name: str, path: str) -> str:
    """Materialise one entry as a ``.g`` file; returns the path written."""
    text = g_text(name)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


def write_all(directory: str,
              selection: Iterable[str] | None = None) -> List[str]:
    """Materialise every entry (or a selection) under ``directory``."""
    paths = []
    for name in (list(selection) if selection is not None else names()):
        paths.append(write_g(name, os.path.join(directory, f"{name}.g")))
    return paths


def ensure_g_file(name: str, directory: str) -> str:
    """Path of ``<directory>/<name>.g``, materialising it when missing.

    Existing files are left untouched (they are checked-in fixtures; a
    dedicated test asserts they stay in sync with the registry).
    """
    path = os.path.join(directory, f"{name}.g")
    if not os.path.exists(path):
        write_g(name, path)
    return path


# ----------------------------------------------------------------------
# Structural equivalence (roundtrip testing)
# ----------------------------------------------------------------------
def _arc_signature(stg: STG) -> Dict[str, object]:
    """Hashable summary of the net structure with stable place identities.

    Place names are kept as-is: both sides of a roundtrip comparison have
    gone through the parser, which names implicit places canonically
    (``<t1,t2>``), so name-level comparison is exact.
    """
    return {
        "signals": {s: stg.kind_of(s) for s in stg.signals},
        "initial_values": stg.initial_values,
        "transitions": frozenset(stg.transitions),
        "places": frozenset(stg.places),
        "arcs": frozenset(
            (place,
             frozenset(stg.net.preset_of_place(place)),
             frozenset(stg.net.postset_of_place(place)))
            for place in stg.places),
        "marking": {place: stg.initial_marking()[place]
                    for place in stg.places
                    if stg.initial_marking()[place]},
    }


def structurally_equal(first: STG, second: STG) -> bool:
    """True when two STGs have identical interface, structure and marking."""
    return _arc_signature(first) == _arc_signature(second)
