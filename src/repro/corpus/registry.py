"""The benchmark registry: named STG specifications with metadata.

Every entry of :data:`REGISTRY` pairs a canonical ``.g`` text (the ASTG
interchange format of :mod:`repro.stg.parser` / :mod:`repro.stg.writer`)
with the metadata the verification pipeline is expected to reproduce:
interface sizes and the per-property verdicts (consistency, output
persistency, CSC/USC, deadlock freedom, reachable-state count and the
final implementability classification of Definition 2.6).

The population mirrors the evaluation of the paper:

* the **controller fixtures** used by the end-to-end integration tests
  (``sbuf_send_ctl``, ``choice_controller``, ``broken_double_rise``),
* the **Table-1-style circuits**: the SBUF send/read controllers, the VME
  bus controller (plain and CSC-resolved), the mutual-exclusion element,
  a master-read interface and a Muller pipeline instance,
* the **negative examples** of Section 3 (inconsistent double rise,
  output disabled by an input, reducible and irreducible CSC conflicts).

Hand-written entries keep their ``.g`` text verbatim; entries drawn from
the scalable families of :mod:`repro.stg.generators` serialise the
generator output once and cache it, so the text is deterministic and
byte-stable across processes.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.report import ImplementabilityClass
from repro.stg import generators

#: Map from an ``expected`` metadata key to the matching
#: :class:`repro.report.ImplementabilityReport` attribute.
REPORT_FIELDS: Dict[str, str] = {
    "consistent": "consistent",
    "persistent": "output_persistent",
    "csc": "csc",
    "usc": "usc",
    "deadlock_free": "deadlock_free",
    "states": "num_states",
    "classification": "classification",
}


def mismatches_against(expected: Mapping[str, object],
                       report) -> List[str]:
    """Expected-vs-observed differences for a finished report.

    Shared by :meth:`CorpusEntry.mismatches` and the sweep-runner workers,
    whose expected mappings have been round-tripped through JSON (so a
    ``classification`` value may be either an
    :class:`~repro.report.ImplementabilityClass` or its string form --
    both compare via ``str``).  Expected keys whose report field is
    ``None`` (not computed by the engine that produced the report, e.g.
    deadlock freedom on the explicit engine) are skipped rather than
    counted as mismatches; so is the ``partial`` classification of a
    check-subset run -- the class is *undecided* there, which is not
    evidence against the recorded one.
    """
    from repro.report import ImplementabilityClass

    problems: List[str] = []
    for key, wanted in expected.items():
        observed = getattr(report, REPORT_FIELDS[key])
        if observed is None:
            continue
        if key == "classification":
            if str(observed) == str(ImplementabilityClass.PARTIAL):
                continue
            if str(observed) != str(wanted):
                problems.append(
                    f"{key}: expected {wanted}, observed {observed}")
        elif observed != wanted:
            problems.append(
                f"{key}: expected {wanted}, observed {observed}")
    return problems


@dataclass
class CorpusEntry:
    """One named benchmark: canonical ``.g`` text plus expected metadata.

    ``expected`` only pins the verdicts that are meaningful for the entry:
    e.g. for an inconsistent specification the two engines legitimately
    disagree on the state count (the symbolic traversal prunes states with
    no consistent binary code), so only ``consistent`` and
    ``classification`` are recorded.
    """

    name: str
    description: str
    source: str  # "fixture" | "table1" | "negative" | "random"
    num_inputs: int
    num_outputs: int
    expected: Mapping[str, object]
    num_internals: int = 0
    arbitration_places: Tuple[str, ...] = ()
    text: Optional[str] = None
    builder: Optional[Callable[[], object]] = None
    #: Provenance of entries drawn from a scalable family: the family
    #: name and the scale the builder was instantiated at (for the
    #: random families the scale is the generator seed).  ``None`` for
    #: hand-written, fixed-size entries.
    family: Optional[str] = None
    scale: Optional[int] = None
    _cached_text: Optional[str] = field(default=None, repr=False)

    @property
    def g_text(self) -> str:
        """The canonical ``.g`` source of the entry."""
        if self._cached_text is None:
            if self.text is not None:
                self._cached_text = textwrap.dedent(self.text).lstrip()
            else:
                from repro.stg.writer import to_g_string

                self._cached_text = to_g_string(self.builder())
        return self._cached_text

    @property
    def num_signals(self) -> int:
        return self.num_inputs + self.num_outputs + self.num_internals

    def mismatches(self, report) -> List[str]:
        """Expected-vs-observed differences (see :func:`mismatches_against`)."""
        return mismatches_against(self.expected, report)

    def listing_dict(self) -> Dict[str, object]:
        """Machine-readable record for ``batch-check --list --json``.

        Everything external tooling used to scrape from the text table:
        name, source, family/scale provenance, interface sizes,
        arbitration places and the expected verdicts (classifications as
        their string form).
        """
        return {
            "name": self.name,
            "source": self.source,
            "description": self.description,
            "family": self.family,
            "scale": self.scale,
            "num_inputs": self.num_inputs,
            "num_outputs": self.num_outputs,
            "num_internals": self.num_internals,
            "num_signals": self.num_signals,
            "arbitration_places": list(self.arbitration_places),
            "expected": {
                key: (str(value) if key == "classification" else value)
                for key, value in self.expected.items()},
        }


def _no_arbitration(stg) -> List[str]:
    return []


@dataclass(frozen=True)
class ScalableFamily:
    """One scalable benchmark family of the Table 1 sweep.

    The fixed-size corpus entries cover corpus-friendly instances; the
    benchmark harness scales the same families up.  ``arbitration``
    extracts the arbitration places an instance needs (only the mutex
    family has any), and ``expected`` pins the verdicts every instance of
    the family must produce regardless of scale.
    """

    name: str
    builder: Callable[[int], object]
    expected: Mapping[str, object]
    arbitration: Callable[[object], List[str]] = _no_arbitration

    def instantiate(self, scale: int):
        """Build one instance; returns ``(stg, arbitration_places)``."""
        stg = self.builder(scale)
        return stg, list(self.arbitration(stg))


FAMILIES: Dict[str, ScalableFamily] = {
    fam.name: fam
    for fam in (
        ScalableFamily(
            name="muller_pipeline",
            builder=generators.muller_pipeline,
            expected={"consistent": True, "persistent": True, "csc": True}),
        ScalableFamily(
            name="master_read",
            builder=generators.master_read,
            expected={"consistent": True, "persistent": True, "csc": True}),
        ScalableFamily(
            name="parallel_handshakes",
            builder=generators.parallel_handshakes,
            expected={"consistent": True, "persistent": True, "csc": True}),
        ScalableFamily(
            name="mutex",
            builder=generators.mutex_element,
            expected={"consistent": True, "persistent": True, "csc": True},
            arbitration=generators.mutex_arbitration_places),
        # The random families only pin their structural invariants: CSC
        # legitimately varies per seed (that is their point -- a scale
        # sweep exercises every implementability class).
        ScalableFamily(
            name="random_ring",
            builder=generators.random_ring_family,
            expected={"consistent": True, "persistent": True,
                      "deadlock_free": True}),
        ScalableFamily(
            name="random_parallel",
            builder=generators.random_parallel_family,
            expected={"consistent": True, "persistent": True,
                      "deadlock_free": True}),
    )
}


def family(name: str) -> ScalableFamily:
    """Look up a scalable family; raises ``KeyError`` naming the options."""
    try:
        return FAMILIES[name]
    except KeyError:
        available = ", ".join(FAMILIES)
        raise KeyError(
            f"unknown benchmark family {name!r}; available: {available}"
            ) from None


REGISTRY: Dict[str, CorpusEntry] = {}


def register(entry: CorpusEntry) -> CorpusEntry:
    if entry.name in REGISTRY:
        raise ValueError(f"duplicate corpus entry {entry.name!r}")
    if (entry.text is None) == (entry.builder is None):
        raise ValueError(
            f"corpus entry {entry.name!r} needs exactly one of text/builder")
    REGISTRY[entry.name] = entry
    return entry


_GATE = ImplementabilityClass.GATE
_IO = ImplementabilityClass.IO
_SI = ImplementabilityClass.SI
_NOT = ImplementabilityClass.NOT_IMPLEMENTABLE


# ----------------------------------------------------------------------
# Integration-test controller fixtures (hand-written canonical text)
# ----------------------------------------------------------------------
register(CorpusEntry(
    name="sbuf_send_ctl",
    description="SBUF send controller: latches outgoing data on request, "
                "acknowledges once the device signals completion; a clean "
                "gate-implementable 8-state cycle.",
    source="fixture",
    num_inputs=2, num_outputs=2,
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 8,
              "classification": _GATE},
    text="""
        .model sbuf_send_ctl
        .inputs req done
        .outputs ack latch
        .graph
        req+ latch+
        latch+ done+
        done+ ack+
        ack+ req-
        req- latch-
        latch- done-
        done- ack-
        ack- req+
        .marking { <ack-,req+> }
        .initial_values ack=0 done=0 latch=0 req=0
        .end
    """))

register(CorpusEntry(
    name="sbuf_read_ctl",
    description="SBUF read controller: output-enable handshake with the "
                "device overlapping the bus acknowledge; consistent and "
                "persistent but carries a CSC conflict (like the VME "
                "controller), so it is I/O- but not gate-implementable.",
    source="fixture",
    num_inputs=2, num_outputs=2,
    expected={"consistent": True, "persistent": True, "csc": False,
              "usc": False, "deadlock_free": True, "states": 12,
              "classification": _IO},
    text="""
        .model sbuf_read_ctl
        .inputs req done
        .outputs ack oe
        .graph
        req+ oe+
        oe+ done+
        done+ ack+ oe-
        ack+ req-
        oe- done-
        req- ack-
        done- ack-
        ack- req+
        .marking { <ack-,req+> }
        .initial_values ack=0 done=0 oe=0 req=0
        .end
    """))

register(CorpusEntry(
    name="choice_controller",
    description="Environment chooses between two requests; both branches "
                "share the binary code 001 (USC fails) yet enable the same "
                "grant behaviour, so CSC holds -- the classical USC/CSC "
                "separation example.",
    source="fixture",
    num_inputs=2, num_outputs=1,
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": False, "deadlock_free": True, "states": 7,
              "classification": _GATE},
    text="""
        .model choice_controller
        .inputs r1 r2
        .outputs g
        .graph
        p0 r1+ r2+
        r1+ g+
        g+ r1-
        r1- g-
        g- p0
        r2+ g+/2
        g+/2 r2-
        r2- g-/2
        g-/2 p0
        .marking { p0 }
        .initial_values g=0 r1=0 r2=0
        .end
    """))

register(CorpusEntry(
    name="broken_double_rise",
    description="Deliberately broken specification: signal b rises twice "
                "with no falling transition in between, so no consistent "
                "state assignment exists (Section 3.1).",
    source="negative",
    num_inputs=1, num_outputs=1,
    expected={"consistent": False, "classification": _NOT},
    text="""
        .model broken_double_rise
        .inputs a
        .outputs b
        .graph
        b+ a+
        a+ b+/2
        b+/2 b-
        b- a-
        a- b+
        .marking { <a-,b+> }
        .initial_values a=0 b=0
        .end
    """))


# ----------------------------------------------------------------------
# Table-1-style circuits (serialised from repro.stg.generators)
# ----------------------------------------------------------------------
register(CorpusEntry(
    name="handshake",
    description="Single 4-phase handshake: the smallest useful STG.",
    source="table1",
    num_inputs=1, num_outputs=1,
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 4,
              "classification": _GATE},
    builder=generators.handshake))

register(CorpusEntry(
    name="mutex_element",
    description="Two-user mutual-exclusion element of Figure 1; the "
                "output conflict on p_me is declared as arbitration.",
    source="table1",
    num_inputs=2, num_outputs=2,
    arbitration_places=("p_me",),
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 12,
              "classification": _GATE},
    family="mutex", scale=2,
    builder=generators.mutex_element))

register(CorpusEntry(
    name="vme_read",
    description="VME bus controller, read cycle: consistent and persistent "
                "with the well-known reducible CSC conflict.",
    source="table1",
    num_inputs=2, num_outputs=3,
    expected={"consistent": True, "persistent": True, "csc": False,
              "usc": False, "deadlock_free": True, "states": 14,
              "classification": _IO},
    builder=generators.vme_read_cycle))

register(CorpusEntry(
    name="vme_read_resolved",
    description="VME read cycle with the CSC conflict resolved by an "
                "inserted internal signal csc0.",
    source="table1",
    num_inputs=2, num_outputs=3, num_internals=1,
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 18,
              "classification": _GATE},
    builder=generators.vme_read_cycle_resolved))

register(CorpusEntry(
    name="master_read_2",
    description="Master read interface fetching from 2 concurrent slaves "
                "(fork/join marked graph, master-read family).",
    source="table1",
    num_inputs=3, num_outputs=3,
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 20,
              "classification": _GATE},
    family="master_read", scale=2,
    builder=lambda: generators.master_read(2)))

register(CorpusEntry(
    name="muller_pipeline_3",
    description="Muller C-element pipeline with 3 stages (the paper's "
                "scalable pipeline family at a corpus-friendly size).",
    source="table1",
    num_inputs=1, num_outputs=3,
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 16,
              "classification": _GATE},
    family="muller_pipeline", scale=3,
    builder=lambda: generators.muller_pipeline(3)))

register(CorpusEntry(
    name="parallel_handshakes_2",
    description="Two independent 4-phase handshakes: maximal concurrency, "
                "4**n reachable states.",
    source="table1",
    num_inputs=2, num_outputs=2,
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 16,
              "classification": _GATE},
    family="parallel_handshakes", scale=2,
    builder=lambda: generators.parallel_handshakes(2)))

register(CorpusEntry(
    name="muller_pipeline_4",
    description="Muller C-element pipeline with 4 stages: the next depth "
                "step of the paper's scalable pipeline family.",
    source="table1",
    num_inputs=1, num_outputs=4,
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 32,
              "classification": _GATE},
    family="muller_pipeline", scale=4,
    builder=lambda: generators.muller_pipeline(4)))

register(CorpusEntry(
    name="master_read_3",
    description="Master read interface fetching from 3 concurrent slaves: "
                "wider fork/join than master_read_2.",
    source="table1",
    num_inputs=4, num_outputs=4,
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 56,
              "classification": _GATE},
    family="master_read", scale=3,
    builder=lambda: generators.master_read(3)))

register(CorpusEntry(
    name="parallel_handshakes_3",
    description="Three independent 4-phase handshakes: 64 reachable states "
                "of pure concurrency.",
    source="table1",
    num_inputs=3, num_outputs=3,
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 64,
              "classification": _GATE},
    family="parallel_handshakes", scale=3,
    builder=lambda: generators.parallel_handshakes(3)))

register(CorpusEntry(
    name="mutex3",
    description="Three-user mutual-exclusion element: the Figure 1 "
                "arbiter generalised to a third competing client.",
    source="table1",
    num_inputs=3, num_outputs=3,
    arbitration_places=("p_me",),
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 32,
              "classification": _GATE},
    family="mutex", scale=3,
    builder=lambda: generators.mutex_element(3)))

register(CorpusEntry(
    name="pipeline_env_2",
    description="Two-stage Muller pipeline closed by an explicit "
                "environment acknowledge loop (the synthesis example).",
    source="table1",
    num_inputs=2, num_outputs=2,
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 16,
              "classification": _GATE},
    builder=lambda: generators.pipeline_with_environment(2)))


# ----------------------------------------------------------------------
# Negative examples of Section 3
# ----------------------------------------------------------------------
register(CorpusEntry(
    name="inconsistent",
    description="Consistency violation of Section 3.1: the trace "
                "b+ a+ b+/2 is feasible.",
    source="negative",
    num_inputs=1, num_outputs=1,
    expected={"consistent": False, "classification": _NOT},
    builder=generators.inconsistent_example))

register(CorpusEntry(
    name="output_disabled_by_input",
    description="Persistency violation: an input transition disables a "
                "pending output (Definition 3.2, case 1).",
    source="negative",
    num_inputs=1, num_outputs=1,
    expected={"consistent": True, "persistent": False,
              "deadlock_free": True, "states": 3,
              "classification": _NOT},
    builder=generators.output_disabled_by_input))

register(CorpusEntry(
    name="csc_violation",
    description="Reducible CSC violation: two states share the code "
                "a=1,b=0,c=0 but enable different outputs.",
    source="negative",
    num_inputs=1, num_outputs=2,
    expected={"consistent": True, "persistent": True, "csc": False,
              "usc": False, "deadlock_free": True, "states": 8,
              "classification": _IO},
    builder=generators.csc_violation_example))

register(CorpusEntry(
    name="csc_resolved",
    description="The reducible CSC violation repaired with an internal "
                "phase signal x.",
    source="negative",
    num_inputs=1, num_outputs=2, num_internals=1,
    expected={"consistent": True, "persistent": True, "csc": True,
              "usc": True, "deadlock_free": True, "states": 10,
              "classification": _GATE},
    builder=generators.csc_resolved_example))

register(CorpusEntry(
    name="irreducible_csc",
    description="Irreducible CSC violation: mutually complementary input "
                "sequences (Definition 3.5(3)); SI- but not "
                "I/O-implementable.",
    source="negative",
    num_inputs=2, num_outputs=1,
    expected={"consistent": True, "persistent": True, "csc": False,
              "usc": False, "deadlock_free": True, "states": 9,
              "classification": _SI},
    builder=generators.irreducible_csc_example))


# ----------------------------------------------------------------------
# Random benchmark families (seeded instances of repro.stg.generators)
# ----------------------------------------------------------------------
# Each instance is fully determined by its (size, seed) parameters, so the
# canonical .g text is reproducible byte for byte.  Only the structural
# invariants of the construction are pinned (consistency, persistency,
# deadlock freedom and the analytic state count); the coding verdicts
# (CSC/USC) vary per seed by design.  The interface split is drawn by the
# generator, so it is read off one throwaway instance at registration time
# (the instances are tiny -- this costs microseconds per entry).
def _register_random_entries() -> None:
    def _interface(stg):
        return {"num_inputs": len(stg.inputs),
                "num_outputs": len(stg.outputs),
                "num_internals": len(stg.internals)}

    for seed in range(1, 13):
        signals = 3 + seed % 6
        stg = generators.random_ring(signals, seed)
        register(CorpusEntry(
            name=stg.name,
            description=f"Random sequential transition ring over {signals} "
                        f"signals (seed {seed}): structural verdicts are "
                        "guaranteed by construction, coding verdicts vary.",
            source="random",
            expected={"consistent": True, "persistent": True,
                      "deadlock_free": True, "states": 2 * signals},
            family="random_ring", scale=seed,
            builder=(lambda signals=signals, seed=seed:
                     generators.random_ring(signals, seed)),
            **_interface(stg)))

    for seed in range(1, 7):
        rings = 2 + seed % 3
        stg = generators.random_parallel(rings, seed)
        register(CorpusEntry(
            name=stg.name,
            description=f"{rings} independent random rings running "
                        f"concurrently (seed {seed}): randomised "
                        "concurrency stress with an analytic state count.",
            source="random",
            expected={"consistent": True, "persistent": True,
                      "deadlock_free": True,
                      "states": generators.random_parallel_state_count(
                          rings, seed)},
            family="random_parallel", scale=seed,
            builder=(lambda rings=rings, seed=seed:
                     generators.random_parallel(rings, seed)),
            **_interface(stg)))


_register_random_entries()
