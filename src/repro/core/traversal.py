"""Symbolic reachability traversal (Figure 5) and frozen-signal variants.

Two chaining strategies are provided:

``"chained"`` (the paper's Figure 5)
    The ``From`` set is updated inside the loop over transitions, so states
    produced by one transition can immediately be used when firing the
    next one within the same outer iteration.  This usually reduces the
    number of outer iterations substantially.

``"frontier"``
    Classical breadth-first image computation: the image of the whole
    frontier over every transition is computed before the frontier is
    replaced.  Used as an ablation baseline
    (``benchmarks/test_traversal_strategy.py``).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional, Tuple

from repro import obs
from repro.bdd import Function
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.stats import TraversalStats
from repro.utils.timing import check_deadline

STRATEGIES = ("chained", "frontier")


def symbolic_traversal(encoding: SymbolicEncoding,
                       image: Optional[SymbolicImage] = None,
                       initial: Optional[Function] = None,
                       transitions: Optional[Iterable[str]] = None,
                       strategy: str = "chained",
                       observer: Optional[Callable[[Function], None]] = None,
                       seed: Optional[Function] = None,
                       seed_transitions: Optional[Iterable[str]] = None,
                       seed_closed: bool = False,
                       deadline: Optional[float] = None
                       ) -> Tuple[Function, TraversalStats]:
    """Compute the reachable full states of an STG symbolically.

    Parameters
    ----------
    encoding:
        Variable encoding of the STG.
    image:
        Optionally a pre-built :class:`~repro.core.image.SymbolicImage`
        (reused by the checker to share characteristic-function caches).
    initial:
        Characteristic function of the starting set (defaults to the STG's
        initial full state).
    transitions:
        Restrict firing to this transition subset (used by the frozen
        traversals of the CSC-reducibility check).
    strategy:
        ``"chained"`` (Figure 5) or ``"frontier"``.
    observer:
        Optional callback invoked with every new ``Reached`` set (used by
        the consistency check to inspect states as they appear).
    seed:
        Characteristic function of *known-reachable* states to start the
        fixpoint from instead of the initial state alone (the delta
        warm-start of :mod:`repro.delta.warmstart`).  The caller
        guarantees every seed state is genuinely reachable, so the
        fixpoint -- and with it every verdict -- is exactly the cold
        one; only the iteration path (and its statistics) changes.
    seed_transitions:
        With ``seed_closed=True``, the only transitions that still need
        firing: the seed is already closed under all others (strictly
        monotone "closed" edits, where the additions touch no
        pre-existing place or signal).
    seed_closed:
        Restrict the sweep to ``seed_transitions`` (see above).
    deadline:
        Optional absolute :func:`time.monotonic` instant checked
        cooperatively once per fixpoint iteration;
        :class:`~repro.utils.timing.DeadlineExceeded` is raised past
        it.  This is the in-process timeout mechanism of the backends
        that cannot preempt an entry (``serial``/``thread``/
        ``asyncio``); the ``process`` backend additionally enforces
        budgets preemptively.

    Returns
    -------
    (reached, stats):
        The characteristic function of the reachable set and the traversal
        statistics.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown traversal strategy {strategy!r}")
    image = image or SymbolicImage(encoding)
    transition_list: List[str] = list(
        transitions if transitions is not None else encoding.stg.transitions)
    reached = initial if initial is not None else encoding.initial_state()
    if seed is not None:
        reached = reached | seed
        if seed_closed:
            keep = set(seed_transitions or ())
            transition_list = [t for t in transition_list if t in keep]
    stats = TraversalStats(num_variables=len(encoding.all_variables))
    manager = encoding.manager
    base_lookups = manager.cache_lookups
    base_hits = manager.cache_hits
    # One fetch outside the loop: the per-iteration events (frontier
    # size, live nodes -- the dynamic-reordering trigger signal) only
    # cost anything when a tracer is active.
    tracer = obs.active()
    with obs.span("traversal", manager=manager, strategy=strategy,
                  seeded=seed is not None) as span:
        start = time.perf_counter()
        stats.observe_reached(reached.size())
        if observer is not None:
            observer(reached)

        from_set = reached
        while True:
            check_deadline(deadline, "symbolic traversal")
            stats.iterations += 1
            if strategy == "chained":
                new = _chained_step(image, transition_list, reached,
                                    from_set, stats)
            else:
                new = _frontier_step(image, transition_list, from_set, stats)
                new = new - reached
            stats.observe_live_nodes(manager.num_nodes)
            if tracer is not None:
                tracer.event("iteration", iteration=stats.iterations,
                             frontier_nodes=new.size(),
                             reached_nodes=stats.final_nodes,
                             live_nodes=manager.num_nodes)
            if new.is_false():
                break
            reached = reached | new
            stats.observe_reached(reached.size())
            if observer is not None:
                observer(new)
            from_set = new
        stats.num_states = encoding.count_states(reached)
        stats.final_nodes = reached.size()
        stats.wall_time_s = time.perf_counter() - start
        stats.cache_lookups = manager.cache_lookups - base_lookups
        stats.cache_hits = manager.cache_hits - base_hits
        span.annotate(iterations=stats.iterations,
                      images=stats.images_computed,
                      peak_nodes=stats.peak_nodes,
                      peak_live_nodes=stats.peak_live_nodes,
                      states=stats.num_states)
    return reached, stats


def _chained_step(image: SymbolicImage, transitions: List[str],
                  reached: Function, from_set: Function,
                  stats: TraversalStats) -> Function:
    """One outer iteration of Figure 5 (From is chained across transitions)."""
    accumulated_new = image.encoding.manager.false
    current_from = from_set
    for transition in transitions:
        to_set = image.fire(current_from, transition)
        stats.images_computed += 1
        fresh = to_set - (reached | accumulated_new)
        if fresh.is_false():
            continue
        accumulated_new = accumulated_new | fresh
        current_from = current_from | fresh
    return accumulated_new


def _frontier_step(image: SymbolicImage, transitions: List[str],
                   frontier: Function, stats: TraversalStats) -> Function:
    """Plain breadth-first step: image of the frontier over all transitions."""
    result = image.encoding.manager.false
    for transition in transitions:
        result = result | image.fire(frontier, transition)
        stats.images_computed += 1
    return result


def frozen_forward_closure(image: SymbolicImage, start: Function,
                           transitions: Iterable[str],
                           restrict_to: Optional[Function] = None) -> Function:
    """Forward closure of ``start`` firing only ``transitions``.

    ``restrict_to`` (typically the reachable set) bounds the closure so
    that backward-then-forward explorations stay inside reachable states.
    """
    reached = start
    frontier = start
    transition_list = list(transitions)
    while True:
        new = image.encoding.manager.false
        for transition in transition_list:
            new = new | image.fire(frontier, transition)
        if restrict_to is not None:
            new = new & restrict_to
        new = new - reached
        if new.is_false():
            return reached
        reached = reached | new
        frontier = new


def frozen_backward_closure(image: SymbolicImage, start: Function,
                            transitions: Iterable[str],
                            restrict_to: Optional[Function] = None) -> Function:
    """Backward closure of ``start`` un-firing only ``transitions``."""
    reached = start
    frontier = start
    transition_list = list(transitions)
    while True:
        new = image.encoding.manager.false
        for transition in transition_list:
            new = new | image.fire_backward(frontier, transition)
        if restrict_to is not None:
            new = new & restrict_to
        new = new - reached
        if new.is_false():
            return reached
        reached = reached | new
        frontier = new
