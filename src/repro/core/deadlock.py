"""Symbolic deadlock and home-state analysis.

A speed-independent controller specification is normally expected to run
forever (every state has some enabled transition); a deadlock usually
indicates a modelling error.  The check is a one-liner on top of the
characteristic functions: a reachable state is a deadlock iff it enables
no transition at all.

``reversibility`` (every reachable state can return to the initial state)
is also provided because it is a cheap, useful sanity check for cyclic
specifications: it reuses the backward closure of the reducibility
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bdd import Function
from repro.core.charfun import CharacteristicFunctions
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import frozen_backward_closure


@dataclass
class DeadlockResult:
    """Outcome of the symbolic deadlock check."""

    deadlock_free: bool
    num_deadlocks: int = 0
    witness: Optional[dict] = None

    def __str__(self) -> str:
        if self.deadlock_free:
            return "deadlock-free"
        return f"{self.num_deadlocks} deadlock state(s)"


def deadlock_states(encoding: SymbolicEncoding, reached: Function,
                    charfun: Optional[CharacteristicFunctions] = None
                    ) -> Function:
    """Characteristic function of the reachable states with nothing enabled."""
    charfun = charfun or CharacteristicFunctions(encoding)
    some_enabled = encoding.manager.false
    for transition in encoding.stg.transitions:
        some_enabled = some_enabled | charfun.enabled(transition)
    return reached - some_enabled


def check_deadlock_freedom(encoding: SymbolicEncoding, reached: Function,
                           charfun: Optional[CharacteristicFunctions] = None
                           ) -> DeadlockResult:
    """Report whether the specification can stop, with a witness state."""
    dead = deadlock_states(encoding, reached, charfun)
    if dead.is_false():
        return DeadlockResult(True)
    count = encoding.count_states(dead)
    model = dead.pick_one(encoding.all_variables)
    witness = encoding.decode_state(model) if model else None
    return DeadlockResult(False, count, witness)


@dataclass
class ReversibilityResult:
    """Outcome of the reversibility (home state) check."""

    reversible: bool
    num_unreturnable: int = 0

    def __str__(self) -> str:
        if self.reversible:
            return "reversible (the initial state is a home state)"
        return (f"not reversible: {self.num_unreturnable} state(s) cannot "
                f"reach the initial state again")


def check_reversibility(encoding: SymbolicEncoding, reached: Function,
                        image: Optional[SymbolicImage] = None
                        ) -> ReversibilityResult:
    """Can every reachable state reach the initial state again?

    Computes the backward closure of the initial state over all transitions
    (restricted to the reachable set) and compares it with the reachable
    set itself.
    """
    image = image or SymbolicImage(encoding)
    can_return = frozen_backward_closure(
        image, encoding.initial_state(), encoding.stg.transitions,
        restrict_to=reached)
    stranded = reached - can_return
    if stranded.is_false():
        return ReversibilityResult(True)
    return ReversibilityResult(False, encoding.count_states(stranded))
