"""Witness (counter-example) trace extraction.

The property checks of :mod:`repro.core` report *states* violating a
property; for debugging a specification one usually wants a *firing
sequence* leading from the initial state to such a state.  This module
extracts a shortest one symbolically: forward breadth-first layers are
computed until the target set is hit, then a concrete path is recovered by
stepping backwards one layer at a time with the inverse transition
function.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bdd import Function
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage


class WitnessError(Exception):
    """Raised when no witness exists (the target set is unreachable)."""


def find_firing_sequence(encoding: SymbolicEncoding, target: Function,
                         image: Optional[SymbolicImage] = None,
                         initial: Optional[Function] = None,
                         max_depth: int = 100_000) -> List[str]:
    """A shortest firing sequence from the initial state into ``target``.

    Returns the list of fired transition names (empty when the initial
    state itself is in the target set).  Raises :class:`WitnessError` when
    the target cannot be reached within ``max_depth`` steps (for reachable
    targets the bound is never the limiting factor).
    """
    image = image or SymbolicImage(encoding)
    start = initial if initial is not None else encoding.initial_state()
    if not (start & target).is_false():
        return []
    # Forward layers: layer[i] holds the states first reached in i steps.
    layers: List[Function] = [start]
    visited = start
    depth = 0
    while depth < max_depth:
        depth += 1
        frontier = image.image(layers[-1]) - visited
        if frontier.is_false():
            raise WitnessError("the target set is not reachable")
        layers.append(frontier)
        visited = visited | frontier
        if not (frontier & target).is_false():
            break
    else:
        raise WitnessError(f"no witness within {max_depth} steps")

    # Pick one concrete target state in the last layer and walk backwards.
    sequence: List[str] = []
    current = _pick_state(encoding, layers[-1] & target)
    for level in range(len(layers) - 1, 0, -1):
        transition, predecessor = _step_back(encoding, image, current,
                                             layers[level - 1])
        sequence.append(transition)
        current = predecessor
    sequence.reverse()
    return sequence


def _pick_state(encoding: SymbolicEncoding, states: Function) -> Function:
    """Minterm of one state of a non-empty set."""
    model = states.pick_one(encoding.all_variables)
    if model is None:
        raise WitnessError("internal error: empty state set")
    literals = {name: bool(value) for name, value in model.items()}
    return encoding.manager.cube(literals)


def _step_back(encoding: SymbolicEncoding, image: SymbolicImage,
               state: Function, previous_layer: Function
               ) -> Tuple[str, Function]:
    """Find a transition and a predecessor in ``previous_layer`` for a state."""
    for transition in encoding.stg.transitions:
        predecessors = image.fire_backward(state, transition) & previous_layer
        if not predecessors.is_false():
            return transition, _pick_state(encoding, predecessors)
    raise WitnessError("internal error: no predecessor found while "
                       "backtracking a forward layer")


def explain_state(encoding: SymbolicEncoding, state_function: Function) -> dict:
    """Decode one state of a characteristic function for display."""
    model = state_function.pick_one(encoding.all_variables)
    if model is None:
        raise WitnessError("cannot explain an empty state set")
    return encoding.decode_state(model)
