"""Symbolic safeness (1-boundedness) checking (Section 5.1, after [9]).

The encoding uses one boolean variable per place, so only safe markings
are representable; unsafe behaviour manifests as a reachable marking that
enables a transition whose firing would add a token to a place that is
already marked (and is not simultaneously consumed).  Detecting such an
*overflow firing* is therefore a sound and complete safeness check for
nets explored under safe semantics: the traversal reaches every marking up
to the first overflow, and the overflow itself is caught here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bdd import Function
from repro.core.charfun import CharacteristicFunctions
from repro.core.encoding import SymbolicEncoding


@dataclass
class SafenessResult:
    """Outcome of the symbolic safeness check."""

    safe: bool
    overflows: List[Tuple[str, str]] = field(default_factory=list)
    witness: Optional[dict] = None

    def __str__(self) -> str:
        if self.safe:
            return "safe (1-bounded)"
        pairs = ", ".join(f"{t} overflows {p}" for t, p in self.overflows[:5])
        return f"not safe: {pairs}"


def check_safeness(encoding: SymbolicEncoding, reached: Function,
                   charfun: Optional[CharacteristicFunctions] = None
                   ) -> SafenessResult:
    """Detect overflow firings from the reachable set."""
    charfun = charfun or CharacteristicFunctions(encoding)
    net = encoding.stg.net
    overflows: List[Tuple[str, str]] = []
    witness = None
    for transition in net.transitions:
        preset = net.preset_of_transition(transition)
        postset = net.postset_of_transition(transition)
        overflow_places = postset - preset
        if not overflow_places:
            continue
        enabled_states = reached & charfun.enabled(transition)
        if enabled_states.is_false():
            continue
        for place in sorted(overflow_places):
            bad = enabled_states & encoding.place(place)
            if not bad.is_false():
                overflows.append((transition, place))
                if witness is None:
                    model = bad.pick_one(encoding.all_variables)
                    if model is not None:
                        witness = encoding.decode_state(model)
    return SafenessResult(not overflows, overflows, witness)
