"""The symbolic implementability checker facade (deprecation shim).

Historically this class was the public entry point for the paper's
pipeline (T+C traversal, NI-p persistency, CSC/reducibility).  The public
surface is now :mod:`repro.api`::

    from repro.api import EngineConfig, verify

    report = verify(stg, EngineConfig(ordering="force"))

``ImplementabilityChecker`` is kept as a thin shim over
:func:`repro.api.run` so existing callers keep working: the constructor
signature is unchanged and :attr:`pipeline` still exposes the shared
:class:`~repro.core.pipeline.VerificationPipeline` of the most recent
:meth:`check` call for consumers that need the intermediates afterwards
(synthesis, liveness extras, witnesses).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.pipeline import VerificationPipeline
from repro.report import ImplementabilityReport
from repro.stg.stg import STG


class ImplementabilityChecker:
    """Check STG implementability by symbolic BDD traversal.

    Parameters
    ----------
    stg:
        The specification; every signal needs an initial value (see
        :func:`repro.sg.builder.infer_initial_values` when they are not
        part of the specification, or pass ``initial_values=``).
    arbitration_places:
        Places whose conflicts between non-input signals model arbitration
        and are tolerated by the persistency check (Definition 3.2
        footnote).  Validated against the STG's actual places.
    ordering:
        Variable-ordering strategy of
        :class:`~repro.core.encoding.SymbolicEncoding`.
    traversal_strategy:
        ``"chained"`` (Figure 5) or ``"frontier"``.
    initial_values:
        Optional completion/override of the initial signal values
        (honoured identically by both engines).
    commutativity_fallback_states:
        When fake conflicts are present, commutativity can no longer be
        derived from fake-freedom (Section 5.4); if the reachable state
        count is at most this bound the checker falls back to the explicit
        commutativity check, otherwise the verdict is left undecided.
    include_liveness:
        Additionally check deadlock freedom and reversibility (extra
        verdicts and a "live" timing phase; the implementability
        classification itself is not affected).
    """

    def __init__(self, stg: STG,
                 arbitration_places: Optional[Iterable[str]] = None,
                 ordering: str = "force",
                 traversal_strategy: str = "chained",
                 initial_values: Optional[Dict[str, bool]] = None,
                 commutativity_fallback_states: int = 10_000,
                 include_liveness: bool = False) -> None:
        self.stg = stg
        self.arbitration_places = list(arbitration_places or ())
        self.ordering = ordering
        self.traversal_strategy = traversal_strategy
        self.initial_values = initial_values
        self.commutativity_fallback_states = commutativity_fallback_states
        self.include_liveness = include_liveness
        #: The shared chain of the most recent :meth:`check` call;
        #: reusable afterwards (synthesis, liveness) without re-traversal.
        self.pipeline: Optional[VerificationPipeline] = None

    def check(self) -> ImplementabilityReport:
        """Run the configured checks via :func:`repro.api.run`.

        The configuration attributes are read at call time (they can be
        adjusted between calls); each call dispatches a fresh engine run
        whose pipeline is kept on :attr:`pipeline` for further reuse.
        """
        from repro import api

        config = api.EngineConfig(
            engine="symbolic",
            ordering=self.ordering,
            traversal_strategy=self.traversal_strategy,
            initial_values=self.initial_values,
            arbitration_places=tuple(self.arbitration_places),
            commutativity_fallback_states=self.commutativity_fallback_states)
        outcome = api.run(
            self.stg, config,
            checks=api.ALL if self.include_liveness else None)
        self.pipeline = outcome.pipeline
        return outcome.report
