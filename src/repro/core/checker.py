"""The symbolic implementability checker facade.

Runs the full pipeline of the paper on one STG:

1. **T+C** -- symbolic traversal of the reachable full states (Figure 5)
   together with the consistency and safeness checks of Section 5.1;
2. **NI-p** -- non-input (signal) persistency (Figure 6b), transition
   persistency and the fake-conflict analysis of Section 5.4;
3. **CSC** -- Complete State Coding via excitation/quiescent regions,
   determinism, and CSC-reducibility via the frozen-input traversal of
   Section 5.3.

The phases and the BDD statistics mirror the columns of Table 1, so the
benchmark harness simply prints the report fields.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.consistency import check_consistency
from repro.core.csc import check_csc
from repro.core.encoding import SymbolicEncoding
from repro.core.fake_conflicts import classify_conflicts
from repro.core.image import SymbolicImage
from repro.core.persistency import (
    check_signal_persistency,
    check_transition_persistency,
)
from repro.core.reducibility import (
    check_complementary_input_sequences,
    check_determinism,
)
from repro.core.safeness import check_safeness
from repro.core.traversal import symbolic_traversal
from repro.report import ImplementabilityReport
from repro.stg.stg import STG
from repro.utils.timing import PhaseTimer


class ImplementabilityChecker:
    """Check STG implementability by symbolic BDD traversal.

    Parameters
    ----------
    stg:
        The specification; every signal needs an initial value (see
        :func:`repro.sg.builder.infer_initial_values` when they are not
        part of the specification).
    arbitration_places:
        Places whose conflicts between non-input signals model arbitration
        and are tolerated by the persistency check (Definition 3.2
        footnote).
    ordering:
        Variable-ordering strategy of
        :class:`~repro.core.encoding.SymbolicEncoding`.
    traversal_strategy:
        ``"chained"`` (Figure 5) or ``"frontier"``.
    commutativity_fallback_states:
        When fake conflicts are present, commutativity can no longer be
        derived from fake-freedom (Section 5.4); if the reachable state
        count is at most this bound the checker falls back to the explicit
        commutativity check, otherwise the verdict is left undecided.
    include_liveness:
        Additionally check deadlock freedom and reversibility (extra
        verdicts and a "live" timing phase; the implementability
        classification itself is not affected).
    """

    def __init__(self, stg: STG,
                 arbitration_places: Optional[Iterable[str]] = None,
                 ordering: str = "force",
                 traversal_strategy: str = "chained",
                 initial_values: Optional[Dict[str, bool]] = None,
                 commutativity_fallback_states: int = 10_000,
                 include_liveness: bool = False) -> None:
        self.stg = stg
        self.arbitration_places = list(arbitration_places or ())
        self.ordering = ordering
        self.traversal_strategy = traversal_strategy
        self.initial_values = initial_values
        self.commutativity_fallback_states = commutativity_fallback_states
        self.include_liveness = include_liveness

    # ------------------------------------------------------------------
    def check(self) -> ImplementabilityReport:
        """Run the three phases and fill an :class:`ImplementabilityReport`."""
        stg = self.stg
        if self.initial_values:
            stg = stg.copy()
            stg.set_initial_values(self.initial_values)
        stats = stg.statistics()
        report = ImplementabilityReport(
            stg_name=stg.name, method="symbolic",
            num_places=stats["places"],
            num_transitions=stats["transitions"],
            num_signals=stats["signals"])
        timer = PhaseTimer()

        encoding = SymbolicEncoding(stg, ordering=self.ordering)
        image = SymbolicImage(encoding)

        # Phase 1: traversal + consistency (+ safeness).
        with timer.phase("T+C"):
            reached, traversal_stats = symbolic_traversal(
                encoding, image=image, strategy=self.traversal_strategy)
            consistency = check_consistency(encoding, reached, image.charfun)
            safeness = check_safeness(encoding, reached, image.charfun)
        report.num_states = traversal_stats.num_states
        report.bdd_peak_nodes = traversal_stats.peak_nodes
        report.bdd_final_nodes = traversal_stats.final_nodes
        report.bdd_variables = traversal_stats.num_variables
        report.bounded = True  # safe-semantics traversal always terminates
        report.safe = safeness.safe
        report.consistent = consistency.consistent
        report.add_verdict("bounded (safe semantics)", True)
        report.add_verdict("safeness", safeness.safe,
                           [str(safeness)] if not safeness.safe else [])
        report.add_verdict("consistent state assignment",
                           consistency.consistent,
                           [f"signal {s}" for s in consistency.violating_signals])

        # Phase 2: persistency and fake conflicts.
        with timer.phase("NI-p"):
            signal_persistency = check_signal_persistency(
                encoding, reached, image,
                arbitration_places=self.arbitration_places)
            transition_persistency = check_transition_persistency(
                encoding, reached, image)
            conflicts = classify_conflicts(encoding, reached, image)
        report.output_persistent = signal_persistency.persistent
        report.fake_free = conflicts.fake_free(stg)
        report.add_verdict("signal persistency", signal_persistency.persistent,
                           [str(v) for v in signal_persistency.violations[:5]])
        report.add_verdict("transition persistency",
                           transition_persistency.persistent,
                           [str(v) for v in transition_persistency.violations[:5]])
        report.add_verdict(
            "fake-conflict freedom", bool(report.fake_free),
            [f"symmetric fake conflict ({c.first}, {c.second})"
             for c in conflicts.symmetric_fake[:3]]
            + [f"asymmetric fake conflict ({c.first}, {c.second})"
               for c in conflicts.asymmetric_fake[:3]])

        # Phase 3: CSC, determinism, CSC-reducibility.
        with timer.phase("CSC"):
            csc = check_csc(encoding, reached, image.charfun)
            determinism = check_determinism(encoding, reached, image.charfun)
            complementary = check_complementary_input_sequences(
                encoding, reached, image)
            commutative = self._commutativity_verdict(
                report.fake_free, traversal_stats.num_states)
        report.csc = csc.csc
        report.usc = csc.usc
        report.deterministic = determinism.deterministic
        report.complementary_free = complementary.free
        report.commutative = commutative
        report.add_verdict("complete state coding (CSC)", csc.csc,
                           [f"signal {s}" for s in csc.violating_signals])
        report.add_verdict("unique state coding (USC)", csc.usc)
        report.add_verdict("determinism", determinism.deterministic,
                           [f"{a} / {b}" for a, b in determinism.violating_pairs])
        report.add_verdict(
            "CSC-reducibility", bool(report.csc_reducible),
            [f"mutually complementary input sequences for "
             f"{', '.join(complementary.offending_signals)}"]
            if complementary.offending_signals else [])

        # Optional phase 4: liveness extras.
        if self.include_liveness:
            from repro.core.deadlock import (
                check_deadlock_freedom,
                check_reversibility,
            )

            with timer.phase("live"):
                deadlocks = check_deadlock_freedom(encoding, reached,
                                                   image.charfun)
                reversibility = check_reversibility(encoding, reached, image)
            report.add_verdict("deadlock freedom", deadlocks.deadlock_free,
                               [str(deadlocks)] if not deadlocks.deadlock_free
                               else [])
            report.add_verdict("reversibility", reversibility.reversible,
                               [str(reversibility)]
                               if not reversibility.reversible else [])

        report.timings = timer.as_dict()
        return report

    # ------------------------------------------------------------------
    def _commutativity_verdict(self, fake_free: bool,
                               num_states: int) -> Optional[bool]:
        """Commutativity via fake-freedom, with an explicit fallback.

        Section 5.4: a fake-free STG is commutative, so no further work is
        needed in the common case.  With fake conflicts present the
        property is genuinely per-state; the explicit check is run when the
        state count is small enough, otherwise the verdict stays undecided.
        """
        if fake_free:
            return True
        if num_states > self.commutativity_fallback_states:
            return None
        from repro.sg.builder import build_state_graph
        from repro.sg.reducibility import check_commutativity

        stg = self.stg
        result = build_state_graph(stg, self.initial_values,
                                   max_states=self.commutativity_fallback_states)
        return check_commutativity(result.graph, stg).commutative
