"""The symbolic implementability checker facade.

Runs the full pipeline of the paper on one STG:

1. **T+C** -- symbolic traversal of the reachable full states (Figure 5)
   together with the consistency and safeness checks of Section 5.1;
2. **NI-p** -- non-input (signal) persistency (Figure 6b), transition
   persistency and the fake-conflict analysis of Section 5.4;
3. **CSC** -- Complete State Coding via excitation/quiescent regions,
   determinism, and CSC-reducibility via the frozen-input traversal of
   Section 5.3.

The heavy lifting lives in
:class:`~repro.core.pipeline.VerificationPipeline`, which owns the shared
encoding / image / reachable-BDD chain; this class is the stable facade
that configures a pipeline and returns the report.  Consumers that need
the intermediates afterwards (synthesis, liveness extras, witnesses) can
keep using :attr:`pipeline` without re-running the traversal.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.pipeline import VerificationPipeline
from repro.report import ImplementabilityReport
from repro.stg.stg import STG


class ImplementabilityChecker:
    """Check STG implementability by symbolic BDD traversal.

    Parameters
    ----------
    stg:
        The specification; every signal needs an initial value (see
        :func:`repro.sg.builder.infer_initial_values` when they are not
        part of the specification).
    arbitration_places:
        Places whose conflicts between non-input signals model arbitration
        and are tolerated by the persistency check (Definition 3.2
        footnote).
    ordering:
        Variable-ordering strategy of
        :class:`~repro.core.encoding.SymbolicEncoding`.
    traversal_strategy:
        ``"chained"`` (Figure 5) or ``"frontier"``.
    commutativity_fallback_states:
        When fake conflicts are present, commutativity can no longer be
        derived from fake-freedom (Section 5.4); if the reachable state
        count is at most this bound the checker falls back to the explicit
        commutativity check, otherwise the verdict is left undecided.
    include_liveness:
        Additionally check deadlock freedom and reversibility (extra
        verdicts and a "live" timing phase; the implementability
        classification itself is not affected).
    """

    def __init__(self, stg: STG,
                 arbitration_places: Optional[Iterable[str]] = None,
                 ordering: str = "force",
                 traversal_strategy: str = "chained",
                 initial_values: Optional[Dict[str, bool]] = None,
                 commutativity_fallback_states: int = 10_000,
                 include_liveness: bool = False) -> None:
        self.stg = stg
        self.arbitration_places = list(arbitration_places or ())
        self.ordering = ordering
        self.traversal_strategy = traversal_strategy
        self.initial_values = initial_values
        self.commutativity_fallback_states = commutativity_fallback_states
        self.include_liveness = include_liveness
        #: The shared chain of the most recent :meth:`check` call;
        #: reusable afterwards (synthesis, liveness) without re-traversal.
        self.pipeline: Optional[VerificationPipeline] = None

    def check(self) -> ImplementabilityReport:
        """Run the three phases and fill an :class:`ImplementabilityReport`.

        The configuration attributes are read at call time (they can be
        adjusted between calls); each call builds a fresh
        :class:`~repro.core.pipeline.VerificationPipeline`, kept on
        :attr:`pipeline` for further reuse.
        """
        self.pipeline = VerificationPipeline(
            self.stg,
            arbitration_places=self.arbitration_places,
            ordering=self.ordering,
            traversal_strategy=self.traversal_strategy,
            initial_values=self.initial_values,
            commutativity_fallback_states=self.commutativity_fallback_states)
        return self.pipeline.run(include_liveness=self.include_liveness)
