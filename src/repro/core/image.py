"""Symbolic transition functions (Section 4).

``delta_N`` transforms a set of markings by firing one transition:

    delta_N(M, t) = ((M_{E(t)} . NPM(t))_{NSM(t)}) . ASM(t)

``delta_D`` extends it to STG full states by updating the variable of the
fired signal (cofactor with respect to the old value, conjunction with the
new value).  The inverse functions used by the backward traversal of the
CSC-reducibility check are also provided; they handle self-loop places
(``p`` in both the preset and the postset) explicitly.

All functions operate on characteristic functions over the variables of a
:class:`~repro.core.encoding.SymbolicEncoding` and never enumerate states.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bdd import Function
from repro.core.charfun import CharacteristicFunctions
from repro.core.encoding import SymbolicEncoding


class SymbolicImage:
    """Forward and backward symbolic firing for one encoded STG."""

    def __init__(self, encoding: SymbolicEncoding,
                 charfun: Optional[CharacteristicFunctions] = None) -> None:
        self.encoding = encoding
        self.charfun = charfun or CharacteristicFunctions(encoding)

    # ------------------------------------------------------------------
    # Petri-net level
    # ------------------------------------------------------------------
    def fire_net(self, states: Function, transition: str) -> Function:
        """``delta_N(states, t)``: the paper's cofactor/product pipeline."""
        charfun = self.charfun
        result = states.cofactor(charfun.enabled_literals(transition))
        result = result & charfun.no_predecessor_marked(transition)
        result = result.cofactor(charfun.no_successor_literals(transition))
        result = result & charfun.all_successors_marked(transition)
        return result

    def fire_net_backward(self, states: Function, transition: str) -> Function:
        """Inverse of :meth:`fire_net`: predecessors of ``states`` under ``t``.

        Self-loop places (in both the preset and the postset of ``t``) stay
        marked across the firing, so they are selected at 1 on the target
        side and restored to 1 on the source side.
        """
        net = self.encoding.stg.net
        preset = net.preset_of_transition(transition)
        postset = net.postset_of_transition(transition)
        both = preset & postset
        pre_only = preset - both
        post_only = postset - both
        place = self.encoding.place_variable
        select = {place(p): True for p in post_only}
        select.update({place(p): True for p in both})
        select.update({place(p): False for p in pre_only})
        restore = {place(p): True for p in pre_only}
        restore.update({place(p): False for p in post_only})
        restore.update({place(p): True for p in both})
        result = states.cofactor(select)
        return result & self.encoding.manager.cube(restore)

    # ------------------------------------------------------------------
    # STG level (marking + signal code)
    # ------------------------------------------------------------------
    def fire(self, states: Function, transition: str) -> Function:
        """``delta_D(states, t)``: fire ``t`` and update its signal variable.

        Following the paper, the cofactor with respect to the *old* signal
        value drops source states that would violate consistency (those are
        reported separately by :mod:`repro.core.consistency`).
        """
        label = self.encoding.stg.label_of(transition)
        variable = self.encoding.signal_variable(label.signal)
        after_net = self.fire_net(states, transition)
        old_value = not label.target_value
        selected = after_net.cofactor({variable: old_value})
        new_literal = (self.encoding.manager.var(variable)
                       if label.target_value
                       else self.encoding.manager.nvar(variable))
        return selected & new_literal

    def fire_backward(self, states: Function, transition: str) -> Function:
        """Inverse of :meth:`fire`: predecessors under ``t`` with signal undo."""
        label = self.encoding.stg.label_of(transition)
        variable = self.encoding.signal_variable(label.signal)
        selected = states.cofactor({variable: label.target_value})
        old_literal = (self.encoding.manager.nvar(variable)
                       if label.target_value
                       else self.encoding.manager.var(variable))
        before_signal = selected & old_literal
        return self.fire_net_backward(before_signal, transition)

    # ------------------------------------------------------------------
    # Images over transition sets
    # ------------------------------------------------------------------
    def image(self, states: Function,
              transitions: Optional[Iterable[str]] = None) -> Function:
        """Union of ``delta_D(states, t)`` over ``transitions`` (default all)."""
        if transitions is None:
            transitions = self.encoding.stg.transitions
        result = self.encoding.manager.false
        for transition in transitions:
            result = result | self.fire(states, transition)
        return result

    def preimage(self, states: Function,
                 transitions: Optional[Iterable[str]] = None) -> Function:
        """Union of backward firings over ``transitions`` (default all)."""
        if transitions is None:
            transitions = self.encoding.stg.transitions
        result = self.encoding.manager.false
        for transition in transitions:
            result = result | self.fire_backward(states, transition)
        return result

    def input_transitions(self) -> list:
        """Transitions labelled with *input* signals (for frozen traversals)."""
        stg = self.encoding.stg
        return [t for t in stg.transitions if stg.is_input(stg.signal_of(t))]
