"""Symbolic transition functions (Section 4).

``delta_N`` transforms a set of markings by firing one transition:

    delta_N(M, t) = ((M_{E(t)} . NPM(t))_{NSM(t)}) . ASM(t)

``delta_D`` extends it to STG full states by updating the variable of the
fired signal (cofactor with respect to the old value, conjunction with the
new value).  The inverse functions used by the backward traversal of the
CSC-reducibility check are also provided; they handle self-loop places
(``p`` in both the preset and the postset) explicitly.

All functions operate on characteristic functions over the variables of a
:class:`~repro.core.encoding.SymbolicEncoding` and never enumerate states.

The traversal fires every transition on every outer iteration, so each
transition's ingredients -- the literal cubes to cofactor by, the
characteristic-function products to conjoin, the signal literal of the
label -- are precomputed **once** into a :class:`_FirePlan` instead of
being re-derived from the net on every firing.  The plans also fuse
commuting steps: the ``NSM(t)`` cofactor absorbs the old-signal-value
cofactor and ``ASM(t)`` absorbs the new signal literal (both pairs
commute because they constrain disjoint variables), so ``delta_D`` costs
two cofactor passes and two conjunctions instead of four and three.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.bdd import Function
from repro.core.charfun import CharacteristicFunctions
from repro.core.encoding import SymbolicEncoding


class _FirePlan:
    """Precomputed ingredients for firing one transition symbolically."""

    __slots__ = (
        "enabled_literals",      # E(t) cube as {place var: True}
        "npm",                   # NPM(t) as a Function
        "nsm_literals",          # NSM(t) cube as {place var: False}
        "asm",                   # ASM(t) as a Function
        "nsm_old_literals",      # NSM(t) + {signal: old value} (fused)
        "asm_new",               # ASM(t) & new signal literal (fused)
        "net_back_select",       # post-side place selection (net level)
        "net_back_restore",      # pre-side place restore cube (net level)
        "back_select_literals",  # net_back_select + {signal: target}
        "back_restore",          # net_back_restore & old signal literal
    )


class SymbolicImage:
    """Forward and backward symbolic firing for one encoded STG."""

    def __init__(self, encoding: SymbolicEncoding,
                 charfun: Optional[CharacteristicFunctions] = None) -> None:
        self.encoding = encoding
        self.charfun = charfun or CharacteristicFunctions(encoding)
        self._plans: Dict[str, _FirePlan] = {}

    def _plan(self, transition: str) -> _FirePlan:
        """The cached :class:`_FirePlan` of ``transition`` (built once)."""
        plan = self._plans.get(transition)
        if plan is None:
            plan = self._build_plan(transition)
            self._plans[transition] = plan
        return plan

    def _build_plan(self, transition: str) -> _FirePlan:
        encoding = self.encoding
        charfun = self.charfun
        manager = encoding.manager
        net = encoding.stg.net
        place = encoding.place_variable

        plan = _FirePlan()
        plan.enabled_literals = charfun.enabled_literals(transition)
        plan.npm = charfun.no_predecessor_marked(transition)
        plan.nsm_literals = charfun.no_successor_literals(transition)
        plan.asm = charfun.all_successors_marked(transition)

        label = encoding.stg.label_of(transition)
        variable = encoding.signal_variable(label.signal)
        old_value = not label.target_value
        plan.nsm_old_literals = dict(plan.nsm_literals)
        plan.nsm_old_literals[variable] = old_value
        plan.asm_new = plan.asm & (
            manager.var(variable) if label.target_value
            else manager.nvar(variable))

        # Backward firing: self-loop places (in both the preset and the
        # postset) stay marked across the firing, so they are selected
        # at 1 on the target side and restored to 1 on the source side.
        preset = net.preset_of_transition(transition)
        postset = net.postset_of_transition(transition)
        both = preset & postset
        pre_only = preset - both
        post_only = postset - both
        select = {place(p): True for p in post_only}
        select.update({place(p): True for p in both})
        select.update({place(p): False for p in pre_only})
        restore = {place(p): True for p in pre_only}
        restore.update({place(p): False for p in post_only})
        restore.update({place(p): True for p in both})
        plan.net_back_select = select
        plan.net_back_restore = manager.cube(restore)
        # The signal selection/restore commute with the place-side steps
        # (disjoint variables), so both fold into single passes.
        plan.back_select_literals = dict(select)
        plan.back_select_literals[variable] = label.target_value
        plan.back_restore = plan.net_back_restore & (
            manager.nvar(variable) if label.target_value
            else manager.var(variable))
        return plan

    # ------------------------------------------------------------------
    # Petri-net level
    # ------------------------------------------------------------------
    def fire_net(self, states: Function, transition: str) -> Function:
        """``delta_N(states, t)``: the paper's cofactor/product pipeline."""
        plan = self._plan(transition)
        result = states.cofactor(plan.enabled_literals)
        result = result & plan.npm
        result = result.cofactor(plan.nsm_literals)
        result = result & plan.asm
        return result

    def fire_net_backward(self, states: Function, transition: str) -> Function:
        """Inverse of :meth:`fire_net`: predecessors of ``states`` under ``t``.

        Self-loop handling lives in the plan construction (one place for
        both the net-level and the signal-fused backward steps).
        """
        plan = self._plan(transition)
        return states.cofactor(plan.net_back_select) & plan.net_back_restore

    # ------------------------------------------------------------------
    # STG level (marking + signal code)
    # ------------------------------------------------------------------
    def fire(self, states: Function, transition: str) -> Function:
        """``delta_D(states, t)``: fire ``t`` and update its signal variable.

        Following the paper, the cofactor with respect to the *old* signal
        value drops source states that would violate consistency (those are
        reported separately by :mod:`repro.core.consistency`).
        """
        plan = self._plan(transition)
        result = states.cofactor(plan.enabled_literals)
        result = result & plan.npm
        result = result.cofactor(plan.nsm_old_literals)
        return result & plan.asm_new

    def fire_backward(self, states: Function, transition: str) -> Function:
        """Inverse of :meth:`fire`: predecessors under ``t`` with signal undo."""
        plan = self._plan(transition)
        result = states.cofactor(plan.back_select_literals)
        return result & plan.back_restore

    # ------------------------------------------------------------------
    # Images over transition sets
    # ------------------------------------------------------------------
    def image(self, states: Function,
              transitions: Optional[Iterable[str]] = None) -> Function:
        """Union of ``delta_D(states, t)`` over ``transitions`` (default all)."""
        if transitions is None:
            transitions = self.encoding.stg.transitions
        result = self.encoding.manager.false
        for transition in transitions:
            result = result | self.fire(states, transition)
        return result

    def preimage(self, states: Function,
                 transitions: Optional[Iterable[str]] = None) -> Function:
        """Union of backward firings over ``transitions`` (default all)."""
        if transitions is None:
            transitions = self.encoding.stg.transitions
        result = self.encoding.manager.false
        for transition in transitions:
            result = result | self.fire_backward(states, transition)
        return result

    def input_transitions(self) -> list:
        """Transitions labelled with *input* signals (for frozen traversals)."""
        stg = self.encoding.stg
        return [t for t in stg.transitions if stg.is_input(stg.signal_of(t))]
