"""Symbolic Complete State Coding check (Section 5.3).

For each non-input signal ``a`` the excitation and quiescent regions are
projected onto the signal variables (the binary codes) by existentially
abstracting the place variables:

    ER(a+) = exists_P ( R . E(a+) )
    ER(a-) = exists_P ( R . E(a-) )
    QR(a+) = exists_P ( R . a  . not E(a-) )
    QR(a-) = exists_P ( R . a' . not E(a+) )

and CSC(a) holds iff ``ER(a+) n QR(a-)`` and ``ER(a-) n QR(a+)`` are both
empty.  USC (unique state coding) is additionally reported by comparing
the number of reachable full states with the number of distinct codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bdd import Function
from repro.core.charfun import CharacteristicFunctions
from repro.core.encoding import SymbolicEncoding


@dataclass
class SignalRegionsSymbolic:
    """Region characteristic functions of one signal.

    ``er_plus`` / ``er_minus`` / ``qr_plus`` / ``qr_minus`` are functions
    over the *signal* variables only (codes); the ``*_states`` variants
    keep the place variables (full states) for use by the reducibility
    check.
    """

    signal: str
    er_plus: Function
    er_minus: Function
    qr_plus: Function
    qr_minus: Function
    er_plus_states: Function
    er_minus_states: Function
    qr_plus_states: Function
    qr_minus_states: Function

    @property
    def contradictory_codes(self) -> Function:
        """``CONT(a)``: codes breaking CSC for this signal."""
        return (self.er_plus & self.qr_minus) | (self.er_minus & self.qr_plus)


@dataclass
class SymbolicCSCResult:
    """Outcome of the symbolic CSC check."""

    csc: bool
    usc: bool
    violating_signals: List[str] = field(default_factory=list)
    witnesses: Dict[str, dict] = field(default_factory=dict)

    def __str__(self) -> str:
        if self.csc:
            return "CSC satisfied"
        return "CSC violated for " + ", ".join(self.violating_signals)


def compute_regions(encoding: SymbolicEncoding, reached: Function,
                    charfun: CharacteristicFunctions,
                    signal: str) -> SignalRegionsSymbolic:
    """Excitation / quiescent regions of one signal."""
    places = encoding.place_variables
    variable = encoding.signal(signal)
    e_plus = charfun.generic_enabled(signal, "+")
    e_minus = charfun.generic_enabled(signal, "-")
    er_plus_states = reached & e_plus
    er_minus_states = reached & e_minus
    qr_plus_states = (reached & variable) - e_minus
    qr_minus_states = (reached & ~variable) - e_plus
    return SignalRegionsSymbolic(
        signal=signal,
        er_plus=er_plus_states.exist(places),
        er_minus=er_minus_states.exist(places),
        qr_plus=qr_plus_states.exist(places),
        qr_minus=qr_minus_states.exist(places),
        er_plus_states=er_plus_states,
        er_minus_states=er_minus_states,
        qr_plus_states=qr_plus_states,
        qr_minus_states=qr_minus_states,
    )


def check_csc(encoding: SymbolicEncoding, reached: Function,
              charfun: Optional[CharacteristicFunctions] = None,
              signals: Optional[List[str]] = None) -> SymbolicCSCResult:
    """CSC over all non-input signals (or an explicit signal list)."""
    charfun = charfun or CharacteristicFunctions(encoding)
    to_check = signals if signals is not None \
        else encoding.stg.noninput_signals
    violating: List[str] = []
    witnesses: Dict[str, dict] = {}
    for signal in to_check:
        regions = compute_regions(encoding, reached, charfun, signal)
        conflict = regions.contradictory_codes
        if conflict.is_false():
            continue
        violating.append(signal)
        model = conflict.pick_one(encoding.signal_variables)
        if model is not None:
            code = {s: bool(model.get(encoding.signal_variable(s), False))
                    for s in encoding.stg.signals}
            witnesses[signal] = {"code": code}
    usc = _check_usc(encoding, reached)
    return SymbolicCSCResult(not violating, usc, violating, witnesses)


def _check_usc(encoding: SymbolicEncoding, reached: Function) -> bool:
    """USC: every reachable full state has a distinct binary code."""
    num_states = encoding.count_states(reached)
    codes = reached.exist(encoding.place_variables)
    num_codes = codes.sat_count(care_vars=encoding.signal_variables)
    return num_states == num_codes
