"""Symbolic CSC-reducibility ingredients (Section 5.3).

Two of the three conditions of Definition 3.5 are checked directly on the
symbolic representation:

* **determinism** -- two distinct transitions with the same generic label
  (``a+`` and ``a+/2``) enabled in the same reachable state violate
  determinism when their firing produces different successor states; for a
  safe net the successors differ exactly when the structural effects of
  the two transitions differ, which turns the check into a per-pair
  emptiness test, refining the paper's ``E(ti) n E(tj)`` formulation;

* **mutually complementary input sequences** -- the frozen-signal
  backward+forward traversal described at the end of Section 5.3.

The third condition, commutativity, is covered through fake-conflict
freedom (Section 5.4): a fake-free STG is commutative.  The checker
(:mod:`repro.core.checker`) therefore derives the commutativity verdict
from the fake-conflict analysis and only falls back to the explicit check
when fake conflicts are present.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bdd import Function
from repro.core.charfun import CharacteristicFunctions
from repro.core.csc import compute_regions
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import frozen_backward_closure, frozen_forward_closure


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
@dataclass
class SymbolicDeterminismResult:
    """Outcome of the symbolic determinism check."""

    deterministic: bool
    violating_pairs: List[Tuple[str, str]] = field(default_factory=list)


def _structural_effect(encoding: SymbolicEncoding, transition: str
                       ) -> Tuple[frozenset, frozenset]:
    """Places consumed and produced by a transition (net effect)."""
    net = encoding.stg.net
    preset = net.preset_of_transition(transition)
    postset = net.postset_of_transition(transition)
    return frozenset(preset - postset), frozenset(postset - preset)


def check_determinism(encoding: SymbolicEncoding, reached: Function,
                      charfun: Optional[CharacteristicFunctions] = None
                      ) -> SymbolicDeterminismResult:
    """Definition 3.5(1) on the reachable set.

    For every pair of distinct transitions carrying the same generic label,
    the set ``R . E(ti) . E(tj)`` is computed (the paper's formulation);
    the pair is only reported as a violation when the two transitions also
    have different structural effects, because equal effects produce the
    same successor state and determinism is preserved.
    """
    charfun = charfun or CharacteristicFunctions(encoding)
    stg = encoding.stg
    by_generic: Dict[str, List[str]] = {}
    for transition in stg.transitions:
        by_generic.setdefault(stg.label_of(transition).generic, []).append(transition)
    violations: List[Tuple[str, str]] = []
    for generic, transitions in by_generic.items():
        if len(transitions) < 2:
            continue
        for i, first in enumerate(transitions):
            for second in transitions[i + 1:]:
                both = reached & charfun.enabled(first) & charfun.enabled(second)
                if both.is_false():
                    continue
                if _structural_effect(encoding, first) == \
                        _structural_effect(encoding, second):
                    continue
                violations.append((first, second))
    return SymbolicDeterminismResult(not violations, violations)


# ----------------------------------------------------------------------
# Mutually complementary input sequences
# ----------------------------------------------------------------------
@dataclass
class SymbolicComplementaryResult:
    """Outcome of the frozen-traversal check for complementary sequences."""

    free: bool
    offending_signals: List[str] = field(default_factory=list)


def check_complementary_input_sequences(encoding: SymbolicEncoding,
                                        reached: Function,
                                        image: Optional[SymbolicImage] = None
                                        ) -> SymbolicComplementaryResult:
    """Section 5.3: frozen-input backward+forward traversal per signal.

    For each non-input signal ``a`` with CSC contradictions, start from the
    quiescent-side contradictory states, close backward then forward firing
    only input transitions (non-inputs are "frozen"), and test whether an
    excitation-side contradictory state is reached.
    """
    image = image or SymbolicImage(encoding)
    charfun = image.charfun
    inputs = image.input_transitions()
    offending: List[str] = []
    for signal in encoding.stg.noninput_signals:
        regions = compute_regions(encoding, reached, charfun, signal)
        contradictory = regions.contradictory_codes
        if contradictory.is_false():
            continue
        quiescent_conflict = (regions.qr_plus_states
                              | regions.qr_minus_states) & contradictory
        if quiescent_conflict.is_false():
            continue
        backward = frozen_backward_closure(image, quiescent_conflict, inputs,
                                           restrict_to=reached)
        reached_frozen = frozen_forward_closure(image, backward, inputs,
                                                restrict_to=reached)
        excitation_conflict = (regions.er_plus_states
                               | regions.er_minus_states) & contradictory
        if not (reached_frozen & excitation_conflict).is_false():
            offending.append(signal)
    return SymbolicComplementaryResult(not offending, offending)
