"""Boolean encoding of STG full states.

Section 4 of the paper represents a marking of a safe Petri net by one
boolean variable per place and the full state of an STG by the vector
``y = (m, s)`` -- marking variables plus one variable per signal.  This
module owns the :class:`~repro.bdd.manager.BDDManager`, the variable
naming convention and the static variable order.

Variable ordering strategies
----------------------------

``"force"`` (default)
    FORCE hypergraph heuristic over co-occurrence groups (the places and
    signal around every transition), which keeps tightly-coupled places
    next to each other -- the "appropriate heuristics" Section 6 alludes
    to.
``"structural"``
    Depth-first interleaving: each place variable is followed by the
    signal of the transition it feeds, approximating the token flow.
``"declaration"``
    Places then signals, both in declaration order (a deliberately naive
    baseline for the ordering ablation benchmark).
``"signals_first"``
    All signal variables before all place variables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.bdd import BDDManager, Function
from repro.bdd.ordering import force_ordering
from repro.petri.marking import Marking
from repro.stg.stg import STG

PLACE_PREFIX = "p:"
SIGNAL_PREFIX = "s:"

ORDERING_STRATEGIES = ("force", "structural", "declaration", "signals_first")


class SymbolicEncoding:
    """Variables and helper constructors for one STG.

    Parameters
    ----------
    stg:
        The specification to encode.
    ordering:
        One of :data:`ORDERING_STRATEGIES`.
    manager:
        Optionally, an existing manager to reuse (its variables must not
        clash with the encoding's names).
    """

    def __init__(self, stg: STG, ordering: str = "force",
                 manager: Optional[BDDManager] = None) -> None:
        if ordering not in ORDERING_STRATEGIES:
            raise ValueError(f"unknown ordering strategy {ordering!r}; "
                             f"choose from {ORDERING_STRATEGIES}")
        from repro import obs

        self.stg = stg
        self.ordering_strategy = ordering
        with obs.span("ordering", strategy=ordering) as span:
            order = self._compute_order(ordering)
            span.annotate(variables=len(order))
        self.manager = manager if manager is not None else BDDManager()
        for name in order:
            if name not in self.manager.variables:
                self.manager.add_var(name)

    # ------------------------------------------------------------------
    # Variable names
    # ------------------------------------------------------------------
    @staticmethod
    def place_variable(place: str) -> str:
        """BDD variable name encoding a place."""
        return f"{PLACE_PREFIX}{place}"

    @staticmethod
    def signal_variable(signal: str) -> str:
        """BDD variable name encoding a signal value."""
        return f"{SIGNAL_PREFIX}{signal}"

    @property
    def place_variables(self) -> List[str]:
        """All place variable names (declaration order of the net)."""
        return [self.place_variable(p) for p in self.stg.net.places]

    @property
    def signal_variables(self) -> List[str]:
        """All signal variable names (declaration order of the STG)."""
        return [self.signal_variable(s) for s in self.stg.signals]

    @property
    def all_variables(self) -> List[str]:
        """Place and signal variables, in the manager's order."""
        mine = set(self.place_variables) | set(self.signal_variables)
        return [name for name in self.manager.variables if name in mine]

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------
    def place(self, place: str) -> Function:
        """Projection function of a place variable."""
        self.stg.net.place(place)
        return self.manager.var(self.place_variable(place))

    def signal(self, signal: str) -> Function:
        """Projection function of a signal variable."""
        self.stg.kind_of(signal)
        return self.manager.var(self.signal_variable(signal))

    # ------------------------------------------------------------------
    # Constructors for sets of states
    # ------------------------------------------------------------------
    def marking_minterm(self, marking: Marking) -> Function:
        """Characteristic function of a single safe marking (places only)."""
        literals = {self.place_variable(p): marking[p] > 0
                    for p in self.stg.net.places}
        return self.manager.cube(literals)

    def code_minterm(self, values: Dict[str, bool]) -> Function:
        """Characteristic function of one binary code (signals only)."""
        literals = {self.signal_variable(s): bool(values[s])
                    for s in self.stg.signals}
        return self.manager.cube(literals)

    def state_minterm(self, marking: Marking, values: Dict[str, bool]) -> Function:
        """Characteristic function of one full state ``(marking, code)``."""
        return self.marking_minterm(marking) & self.code_minterm(values)

    def initial_state(self) -> Function:
        """Characteristic function of the STG's initial full state."""
        return self.state_minterm(self.stg.initial_marking(),
                                  self.stg.initial_state_vector())

    def markings_to_function(self, markings: Iterable[Marking]) -> Function:
        """Disjunction of marking minterms (the paper's ``X_M``)."""
        result = self.manager.false
        for marking in markings:
            result = result | self.marking_minterm(marking)
        return result

    # ------------------------------------------------------------------
    # Decoding (for counter-examples and tests)
    # ------------------------------------------------------------------
    def decode_state(self, assignment: Dict[str, bool]) -> Dict[str, object]:
        """Turn a satisfying assignment into ``{"marking":..., "code":...}``."""
        marking = Marking({
            place: 1 for place in self.stg.net.places
            if assignment.get(self.place_variable(place), False)})
        code = {signal: bool(assignment.get(self.signal_variable(signal), False))
                for signal in self.stg.signals}
        return {"marking": marking, "code": code}

    def count_states(self, states: Function) -> int:
        """Number of full states in a characteristic function."""
        return states.sat_count(care_vars=self.all_variables)

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def _compute_order(self, strategy: str) -> List[str]:
        stg = self.stg
        places = [self.place_variable(p) for p in stg.net.places]
        signals = [self.signal_variable(s) for s in stg.signals]
        if strategy == "declaration":
            return places + signals
        if strategy == "signals_first":
            return signals + places
        if strategy == "structural":
            return self._structural_order()
        return self._force_order()

    def _co_occurrence_groups(self) -> List[List[str]]:
        """Hyperedges: the variables touched by each transition.

        Pre/post-sets are hash-ordered sets; the members are sorted so the
        FORCE accumulator sums its floats in a fixed order.  Without this
        the computed variable order -- and with it every traversal
        statistic -- varies between interpreter processes
        (PYTHONHASHSEED), which would break the cross-machine
        byte-identity contract of the sweep runner's stable results.
        """
        groups: List[List[str]] = []
        stg = self.stg
        for transition in stg.net.transitions:
            group = [self.place_variable(p)
                     for p in sorted(stg.net.preset_of_transition(transition))]
            group += [self.place_variable(p)
                      for p in sorted(stg.net.postset_of_transition(transition))]
            try:
                label = stg.label_of(transition)
            except Exception:  # unlabelled transition in a plain net
                label = None
            if label is not None:
                group.append(self.signal_variable(label.signal))
            groups.append(group)
        return groups

    def _force_order(self) -> List[str]:
        variables = ([self.place_variable(p) for p in self.stg.net.places]
                     + [self.signal_variable(s) for s in self.stg.signals])
        return force_ordering(variables, self._co_occurrence_groups())

    def _structural_order(self) -> List[str]:
        """Depth-first order over the net graph, signal next to its places."""
        stg = self.stg
        order: List[str] = []
        seen = set()

        def visit_place(place: str) -> None:
            variable = self.place_variable(place)
            if variable in seen:
                return
            seen.add(variable)
            order.append(variable)
            for transition in sorted(stg.net.postset_of_place(place)):
                try:
                    signal_variable = self.signal_variable(
                        stg.signal_of(transition))
                except Exception:
                    signal_variable = None
                if signal_variable is not None and signal_variable not in seen:
                    seen.add(signal_variable)
                    order.append(signal_variable)
                for successor in sorted(stg.net.postset_of_transition(transition)):
                    visit_place(successor)

        # Start from initially marked places, then cover the rest.
        initial = stg.initial_marking()
        for place in stg.net.places:
            if initial[place] > 0:
                visit_place(place)
        for place in stg.net.places:
            visit_place(place)
        for signal in stg.signals:
            variable = self.signal_variable(signal)
            if variable not in seen:
                seen.add(variable)
                order.append(variable)
        return order

    def __repr__(self) -> str:
        return (f"SymbolicEncoding({self.stg.name!r}, "
                f"ordering={self.ordering_strategy!r}, "
                f"variables={len(self.all_variables)})")
