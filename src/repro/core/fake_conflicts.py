"""Symbolic fake-conflict analysis (Section 5.4).

For every ordered pair of transitions sharing an input place, the set of
reachable states enabling both is computed; firing one of them and
intersecting with the complement of the other *signal's* enabling function
decides whether the direction is a real disabling or a fake one.  The
unordered pair is then classified as symmetric fake, asymmetric fake or
real, matching :mod:`repro.sg.fake_conflicts` state for state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bdd import Function
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage


@dataclass
class SymbolicConflictClassification:
    """Classification of one unordered conflict pair (symbolic version)."""

    first: str
    second: str
    first_disables_second_signal: bool
    second_disables_first_signal: bool
    observed: bool

    @property
    def is_fake_symmetric(self) -> bool:
        return (self.observed and not self.first_disables_second_signal
                and not self.second_disables_first_signal)

    @property
    def is_fake_asymmetric(self) -> bool:
        return (self.observed
                and (self.first_disables_second_signal
                     != self.second_disables_first_signal))

    @property
    def is_real(self) -> bool:
        return (self.observed and self.first_disables_second_signal
                and self.second_disables_first_signal)


@dataclass
class SymbolicFakeConflictResult:
    """Outcome of the symbolic fake-conflict analysis."""

    classifications: List[SymbolicConflictClassification] = field(
        default_factory=list)

    @property
    def symmetric_fake(self) -> List[SymbolicConflictClassification]:
        return [c for c in self.classifications if c.is_fake_symmetric]

    @property
    def asymmetric_fake(self) -> List[SymbolicConflictClassification]:
        return [c for c in self.classifications if c.is_fake_asymmetric]

    def fake_free(self, stg) -> bool:
        """Fake-freedom as defined in Section 3.5."""
        if self.symmetric_fake:
            return False
        for classification in self.asymmetric_fake:
            signals = {stg.signal_of(classification.first),
                       stg.signal_of(classification.second)}
            if any(not stg.is_input(signal) for signal in signals):
                return False
        return True


def _conflict_pairs(encoding: SymbolicEncoding) -> List[Tuple[str, str]]:
    """Unordered pairs of distinct transitions sharing an input place."""
    net = encoding.stg.net
    pairs = set()
    for place in net.places:
        successors = sorted(net.postset_of_place(place))
        for i, first in enumerate(successors):
            for second in successors[i + 1:]:
                pairs.add((first, second))
    return sorted(pairs)


def classify_conflicts(encoding: SymbolicEncoding, reached: Function,
                       image: Optional[SymbolicImage] = None
                       ) -> SymbolicFakeConflictResult:
    """Classify every structural conflict pair over the reachable set."""
    image = image or SymbolicImage(encoding)
    charfun = image.charfun
    stg = encoding.stg
    result = SymbolicFakeConflictResult()
    for first, second in _conflict_pairs(encoding):
        both = reached & charfun.enabled(first) & charfun.enabled(second)
        observed = not both.is_false()
        first_kills = False
        second_kills = False
        if observed:
            signal_first = stg.signal_of(first)
            signal_second = stg.signal_of(second)
            after_first = image.fire(both, first)
            first_kills = not (
                after_first - charfun.signal_enabled(signal_second)).is_false()
            after_second = image.fire(both, second)
            second_kills = not (
                after_second - charfun.signal_enabled(signal_first)).is_false()
        result.classifications.append(SymbolicConflictClassification(
            first, second, first_kills, second_kills, observed))
    return result
