"""Symbolic (BDD-based) STG implementability checking -- the paper's core.

The modules of this package implement Sections 4 and 5 of the paper:

* :mod:`repro.core.encoding` -- boolean variables for places and signals,
  static variable-ordering strategies (Section 4, Section 6's remark on
  ordering heuristics),
* :mod:`repro.core.charfun` -- the characteristic functions ``E(t)``,
  ``ASM(t)``, ``NPM(t)``, ``NSM(t)`` and ``E(a*)`` (Section 4),
* :mod:`repro.core.image` -- the transition functions ``delta_N`` and
  ``delta_D`` and their inverses (Section 4),
* :mod:`repro.core.traversal` -- the fixed-point symbolic traversal of
  Figure 5, plus frozen-signal traversals,
* :mod:`repro.core.safeness` -- symbolic safeness checking (Section 5.1),
* :mod:`repro.core.consistency` -- the ``Inconsistent`` characteristic
  functions (Section 5.1),
* :mod:`repro.core.persistency` -- the algorithms of Figure 6,
* :mod:`repro.core.csc` -- excitation/quiescent regions and the CSC check
  (Section 5.3),
* :mod:`repro.core.reducibility` -- determinism and the detection of
  mutually complementary input sequences by frozen-input traversal
  (Section 5.3),
* :mod:`repro.core.fake_conflicts` -- symbolic fake-conflict analysis
  (Section 5.4),
* :mod:`repro.core.pipeline` -- the
  :class:`~repro.core.pipeline.VerificationPipeline`: the shared
  encoding / image / reachable-BDD chain, computed once and reused by
  every property check (and by synthesis),
* :mod:`repro.core.checker` -- the
  :class:`~repro.core.checker.ImplementabilityChecker` facade producing an
  :class:`~repro.report.ImplementabilityReport`.
"""

from repro.core.encoding import SymbolicEncoding
from repro.core.traversal import symbolic_traversal
from repro.core.pipeline import VerificationPipeline
from repro.core.checker import ImplementabilityChecker
from repro.report import ImplementabilityClass, ImplementabilityReport

__all__ = [
    "SymbolicEncoding",
    "symbolic_traversal",
    "VerificationPipeline",
    "ImplementabilityChecker",
    "ImplementabilityClass",
    "ImplementabilityReport",
]
