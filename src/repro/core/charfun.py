"""Characteristic functions of Section 4.

For a transition ``t`` of a safe Petri net:

* ``E(t)``   -- all input places marked (``t`` enabled),
* ``ASM(t)`` -- all successor places marked,
* ``NPM(t)`` -- no predecessor place marked,
* ``NSM(t)`` -- no successor place marked,

and for a signal transition label ``a*``:

* ``E(a*)``  -- some transition labelled ``a*`` is enabled,
* ``E(a)``   -- some transition of signal ``a`` (either polarity) is enabled.

All functions are cubes (or disjunctions of cubes) over the place
variables of a :class:`~repro.core.encoding.SymbolicEncoding`.  They are
cached per encoding because the traversal and every property check reuse
them heavily.
"""

from __future__ import annotations

from typing import Dict

from repro.bdd import Function
from repro.core.encoding import SymbolicEncoding


class CharacteristicFunctions:
    """Cached characteristic functions for one encoded STG."""

    def __init__(self, encoding: SymbolicEncoding) -> None:
        self.encoding = encoding
        self._enabled: Dict[str, Function] = {}
        self._asm: Dict[str, Function] = {}
        self._npm: Dict[str, Function] = {}
        self._nsm: Dict[str, Function] = {}
        self._signal_enabled: Dict[str, Function] = {}
        self._generic_enabled: Dict[str, Function] = {}

    # ------------------------------------------------------------------
    # Per-transition cubes
    # ------------------------------------------------------------------
    def enabled(self, transition: str) -> Function:
        """``E(t)``: conjunction of the input-place variables."""
        cached = self._enabled.get(transition)
        if cached is None:
            places = self.encoding.stg.net.preset_of_transition(transition)
            cached = self.encoding.manager.cube({
                self.encoding.place_variable(p): True for p in places})
            self._enabled[transition] = cached
        return cached

    def all_successors_marked(self, transition: str) -> Function:
        """``ASM(t)``: conjunction of the output-place variables."""
        cached = self._asm.get(transition)
        if cached is None:
            places = self.encoding.stg.net.postset_of_transition(transition)
            cached = self.encoding.manager.cube({
                self.encoding.place_variable(p): True for p in places})
            self._asm[transition] = cached
        return cached

    def no_predecessor_marked(self, transition: str) -> Function:
        """``NPM(t)``: conjunction of the negated input-place variables."""
        cached = self._npm.get(transition)
        if cached is None:
            places = self.encoding.stg.net.preset_of_transition(transition)
            cached = self.encoding.manager.cube({
                self.encoding.place_variable(p): False for p in places})
            self._npm[transition] = cached
        return cached

    def no_successor_marked(self, transition: str) -> Function:
        """``NSM(t)``: conjunction of the negated output-place variables."""
        cached = self._nsm.get(transition)
        if cached is None:
            places = self.encoding.stg.net.postset_of_transition(transition)
            cached = self.encoding.manager.cube({
                self.encoding.place_variable(p): False for p in places})
            self._nsm[transition] = cached
        return cached

    # ------------------------------------------------------------------
    # Cube literal dictionaries (used by the cofactor-based image)
    # ------------------------------------------------------------------
    def enabled_literals(self, transition: str) -> Dict[str, bool]:
        """The ``E(t)`` cube as a literal dictionary (for cofactoring)."""
        places = self.encoding.stg.net.preset_of_transition(transition)
        return {self.encoding.place_variable(p): True for p in places}

    def no_successor_literals(self, transition: str) -> Dict[str, bool]:
        """The ``NSM(t)`` cube as a literal dictionary (for cofactoring)."""
        places = self.encoding.stg.net.postset_of_transition(transition)
        return {self.encoding.place_variable(p): False for p in places}

    def all_successors_literals(self, transition: str) -> Dict[str, bool]:
        """The ``ASM(t)`` cube as a literal dictionary."""
        places = self.encoding.stg.net.postset_of_transition(transition)
        return {self.encoding.place_variable(p): True for p in places}

    def no_predecessor_literals(self, transition: str) -> Dict[str, bool]:
        """The ``NPM(t)`` cube as a literal dictionary."""
        places = self.encoding.stg.net.preset_of_transition(transition)
        return {self.encoding.place_variable(p): False for p in places}

    # ------------------------------------------------------------------
    # Per-signal disjunctions
    # ------------------------------------------------------------------
    def signal_enabled(self, signal: str) -> Function:
        """``E(a)``: some transition of signal ``a`` is enabled."""
        cached = self._signal_enabled.get(signal)
        if cached is None:
            cached = self.encoding.manager.false
            for transition in self.encoding.stg.transitions_of_signal(signal):
                cached = cached | self.enabled(transition)
            self._signal_enabled[signal] = cached
        return cached

    def generic_enabled(self, signal: str, polarity: str) -> Function:
        """``E(a*)``: some transition ``a+`` (or ``a-``) is enabled."""
        key = f"{signal}{polarity}"
        cached = self._generic_enabled.get(key)
        if cached is None:
            cached = self.encoding.manager.false
            for transition in self.encoding.stg.transitions_of(signal, polarity):
                cached = cached | self.enabled(transition)
            self._generic_enabled[key] = cached
        return cached
