"""The shared symbolic verification pipeline.

Every property check of the paper needs the same expensive intermediates:
the boolean encoding of the net, the symbolic image operators and -- above
all -- the reachable-state BDD of the Figure 5 traversal.  Before this
module existed each consumer (the checker, the CLI extras, the synthesis
flow, the integration tests) rebuilt that chain from scratch, re-running
the traversal.

:class:`VerificationPipeline` computes the chain **once**, lazily, and
hands the cached intermediates to every checker:

    parse -> :class:`~repro.core.encoding.SymbolicEncoding`
          -> :class:`~repro.core.image.SymbolicImage`
          -> reachable-state BDD (one traversal)
          -> consistency / safeness / persistency / CSC / deadlock / ...

Individual property results are cached as well, so asking for the full
report after probing a single property does not repeat work.  The
:class:`~repro.core.checker.ImplementabilityChecker` facade is now a thin
wrapper around this class, and the ``batch-check`` CLI mode drives one
pipeline per benchmark-corpus entry.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro import obs
from repro.core.consistency import check_consistency
from repro.core.csc import check_csc
from repro.core.deadlock import check_deadlock_freedom, check_reversibility
from repro.core.encoding import SymbolicEncoding
from repro.core.fake_conflicts import classify_conflicts
from repro.core.image import SymbolicImage
from repro.core.persistency import (
    check_signal_persistency,
    check_transition_persistency,
)
from repro.core.reducibility import (
    check_complementary_input_sequences,
    check_determinism,
)
from repro.core.safeness import check_safeness
from repro.core.traversal import symbolic_traversal
from repro.report import ImplementabilityReport
from repro.stg.stg import STG
from repro.utils.timing import PhaseTimer


class VerificationPipeline:
    """One STG, one traversal, every property check.

    Parameters mirror :class:`~repro.core.checker.ImplementabilityChecker`
    (which delegates here); see its docstring for their meaning.

    The chain properties (:attr:`encoding`, :attr:`image`, :attr:`reached`)
    and every property method are lazy and cached: the first access pays
    the cost, later accesses are free.  Phase timings in the report of
    :meth:`run` therefore measure only work that had not been triggered
    earlier on the same pipeline.
    """

    def __init__(self, stg: STG,
                 arbitration_places: Optional[Iterable[str]] = None,
                 ordering: str = "force",
                 traversal_strategy: str = "chained",
                 initial_values: Optional[Dict[str, bool]] = None,
                 commutativity_fallback_states: int = 10_000,
                 deadline: Optional[float] = None) -> None:
        if initial_values:
            stg = stg.copy()
            stg.set_initial_values(initial_values)
        self.stg = stg
        self.arbitration_places = list(arbitration_places or ())
        self.ordering = ordering
        self.traversal_strategy = traversal_strategy
        self.commutativity_fallback_states = commutativity_fallback_states
        #: Cooperative per-entry deadline (absolute ``time.monotonic``
        #: instant): the traversal checks it once per fixpoint iteration
        #: and raises :class:`~repro.utils.timing.DeadlineExceeded` past
        #: it -- the timeout mechanism of non-preemptive backends.
        self.deadline = deadline
        #: Optional hooks of the persistent BDD cache
        #: (:func:`repro.cache.bind_pipeline`).  The provider may return a
        #: ``(reached, stats)`` pair to skip the traversal entirely; the
        #: consumer observes a freshly traversed result (to persist it).
        self.reached_provider = None
        self.reached_consumer = None
        #: Handle pinning warm-start nodes (loaded by a provider) live in
        #: the manager for the duration of the traversal.
        self.warm_handle = None
        #: Delta warm-start inputs (:mod:`repro.delta.warmstart`, set via
        #: the cache provider): a characteristic function of
        #: known-reachable states to seed the traversal from, the edit's
        #: added transitions, and whether the seed is closed under every
        #: other transition.  These influence where the fixpoint
        #: *starts*, never what is reported (analyzer rule RA204).
        self.seed_reached = None
        self.seed_transitions = None
        self.seed_closed = False
        #: Provenance of the delta classification (a JSON-able dict);
        #: the api facade copies it onto the report's ``delta`` block.
        self.delta_info = None
        self._encoding: Optional[SymbolicEncoding] = None
        self._image: Optional[SymbolicImage] = None
        self._reached = None
        self._traversal_stats = None
        self._results: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # The shared intermediate chain
    # ------------------------------------------------------------------
    @property
    def encoding(self) -> SymbolicEncoding:
        if self._encoding is None:
            with obs.span("encoding", ordering=self.ordering):
                self._encoding = SymbolicEncoding(self.stg,
                                                  ordering=self.ordering)
        return self._encoding

    @property
    def image(self) -> SymbolicImage:
        if self._image is None:
            self._image = SymbolicImage(self.encoding)
        return self._image

    @property
    def charfun(self):
        return self.image.charfun

    @property
    def reached(self):
        """The reachable-state BDD; the traversal runs at most once.

        With a bound BDD cache (:func:`repro.cache.bind_pipeline`) the
        provider is consulted first: a hit adopts the persisted reachable
        set and its traversal statistics without traversing at all, a
        miss may still warm-start the manager before the cold traversal,
        whose result the consumer then persists.
        """
        if self._reached is None:
            if self.reached_provider is not None:
                hit = self.reached_provider(self)
                if hit is not None:
                    self._reached, self._traversal_stats = hit
                    obs.event("reached-cache-hit")
                    return self._reached
            self._reached, self._traversal_stats = symbolic_traversal(
                self.encoding, image=self.image,
                strategy=self.traversal_strategy,
                seed=self.seed_reached,
                seed_transitions=self.seed_transitions,
                seed_closed=self.seed_closed,
                deadline=self.deadline)
            self.warm_handle = None  # warm nodes no longer need pinning
            self.seed_reached = None  # ditto for the delta seed
            if self.reached_consumer is not None:
                self.reached_consumer(self, self._reached,
                                      self._traversal_stats)
        return self._reached

    @property
    def traversal_stats(self):
        self.reached
        return self._traversal_stats

    @property
    def traversal_ran(self) -> bool:
        """True once some check has triggered the reachability traversal."""
        return self._reached is not None

    # ------------------------------------------------------------------
    # Property checks (each reuses the chain, each cached)
    # ------------------------------------------------------------------
    def _cached(self, key: str, compute):
        if key not in self._results:
            self._results[key] = compute()
        return self._results[key]

    def consistency(self):
        return self._cached("consistency", lambda: check_consistency(
            self.encoding, self.reached, self.charfun))

    def safeness(self):
        return self._cached("safeness", lambda: check_safeness(
            self.encoding, self.reached, self.charfun))

    def signal_persistency(self):
        return self._cached("signal_persistency",
                            lambda: check_signal_persistency(
                                self.encoding, self.reached, self.image,
                                arbitration_places=self.arbitration_places))

    def transition_persistency(self):
        return self._cached("transition_persistency",
                            lambda: check_transition_persistency(
                                self.encoding, self.reached, self.image))

    def conflicts(self):
        return self._cached("conflicts", lambda: classify_conflicts(
            self.encoding, self.reached, self.image))

    def fake_free(self) -> bool:
        return bool(self.conflicts().fake_free(self.stg))

    def csc(self):
        return self._cached("csc", lambda: check_csc(
            self.encoding, self.reached, self.charfun))

    def determinism(self):
        return self._cached("determinism", lambda: check_determinism(
            self.encoding, self.reached, self.charfun))

    def complementary_inputs(self):
        return self._cached("complementary_inputs",
                            lambda: check_complementary_input_sequences(
                                self.encoding, self.reached, self.image))

    def deadlock_freedom(self):
        return self._cached("deadlock_freedom", lambda: check_deadlock_freedom(
            self.encoding, self.reached, self.charfun))

    def reversibility(self):
        return self._cached("reversibility", lambda: check_reversibility(
            self.encoding, self.reached, self.image))

    def commutativity(self) -> Optional[bool]:
        """Commutativity via fake-freedom, with an explicit fallback.

        Section 5.4: a fake-free STG is commutative, so no further work is
        needed in the common case.  With fake conflicts present the
        property is genuinely per-state; the explicit check is run when
        the state count is small enough, otherwise the verdict stays
        undecided (``None``).
        """
        return self._cached("commutativity", self._compute_commutativity)

    def _compute_commutativity(self) -> Optional[bool]:
        if self.fake_free():
            return True
        if self.traversal_stats.num_states > self.commutativity_fallback_states:
            return None
        from repro.sg.builder import build_state_graph
        from repro.sg.reducibility import check_commutativity

        result = build_state_graph(
            self.stg, max_states=self.commutativity_fallback_states)
        return check_commutativity(result.graph, self.stg).commutative

    # ------------------------------------------------------------------
    # Check application (the symbolic side of the repro.api check registry)
    # ------------------------------------------------------------------
    def _check_consistency(self, report: ImplementabilityReport) -> None:
        self.reached  # the traversal itself belongs to this check's phase
        consistency = self.consistency()
        report.bounded = True  # safe-semantics traversal always terminates
        report.consistent = consistency.consistent
        report.add_verdict("bounded (safe semantics)", True)
        report.add_verdict("consistent state assignment",
                           consistency.consistent,
                           [f"signal {s}" for s in consistency.violating_signals])

    def _check_safeness(self, report: ImplementabilityReport) -> None:
        safeness = self.safeness()
        report.safe = safeness.safe
        report.add_verdict("safeness", safeness.safe,
                           [str(safeness)] if not safeness.safe else [])

    def _check_persistency(self, report: ImplementabilityReport) -> None:
        signal_persistency = self.signal_persistency()
        transition_persistency = self.transition_persistency()
        report.output_persistent = signal_persistency.persistent
        report.add_verdict("signal persistency", signal_persistency.persistent,
                           [str(v) for v in signal_persistency.violations[:5]])
        report.add_verdict("transition persistency",
                           transition_persistency.persistent,
                           [str(v) for v in transition_persistency.violations[:5]])

    def _check_fake_conflicts(self, report: ImplementabilityReport) -> None:
        conflicts = self.conflicts()
        report.fake_free = conflicts.fake_free(self.stg)
        report.add_verdict(
            "fake-conflict freedom", bool(report.fake_free),
            [f"symmetric fake conflict ({c.first}, {c.second})"
             for c in conflicts.symmetric_fake[:3]]
            + [f"asymmetric fake conflict ({c.first}, {c.second})"
               for c in conflicts.asymmetric_fake[:3]])

    def _check_csc(self, report: ImplementabilityReport) -> None:
        csc = self.csc()
        report.csc = csc.csc
        report.usc = csc.usc
        report.add_verdict("complete state coding (CSC)", csc.csc,
                           [f"signal {s}" for s in csc.violating_signals])
        report.add_verdict("unique state coding (USC)", csc.usc)

    def _check_reducibility(self, report: ImplementabilityReport) -> None:
        determinism = self.determinism()
        complementary = self.complementary_inputs()
        report.deterministic = determinism.deterministic
        report.complementary_free = complementary.free
        report.commutative = self.commutativity()
        report.add_verdict("determinism", determinism.deterministic,
                           [f"{a} / {b}" for a, b in determinism.violating_pairs])
        report.add_verdict(
            "CSC-reducibility", bool(report.csc_reducible),
            [f"mutually complementary input sequences for "
             f"{', '.join(complementary.offending_signals)}"]
            if complementary.offending_signals else [])

    def _check_liveness(self, report: ImplementabilityReport) -> None:
        deadlocks = self.deadlock_freedom()
        reversibility = self.reversibility()
        report.deadlock_free = deadlocks.deadlock_free
        report.reversible = reversibility.reversible
        report.add_verdict("deadlock freedom", deadlocks.deadlock_free,
                           [str(deadlocks)] if not deadlocks.deadlock_free
                           else [])
        report.add_verdict("reversibility", reversibility.reversible,
                           [str(reversibility)]
                           if not reversibility.reversible else [])

    # ------------------------------------------------------------------
    # Full report
    # ------------------------------------------------------------------
    def run(self, include_liveness: bool = False,
            checks=None) -> ImplementabilityReport:
        """Run the selected property checks and build a report.

        ``checks`` is a selection understood by
        :func:`repro.api.checks.resolve_checks` (``None`` = the default
        set); ``include_liveness=True`` is the pre-facade spelling that
        appends the liveness extras to the default set.  Checks run
        grouped by their registry phase (``T+C``, ``NI-p``, ``CSC``,
        ``live``), sharing this pipeline's lazily computed chain, so
        phase timings measure only work not triggered earlier.
        """
        from repro.api.checks import (
            CHECKS,
            apply_check,
            group_by_phase,
            resolve_checks,
        )

        selected = resolve_checks(checks, engine="symbolic")
        if include_liveness and "liveness" not in selected:
            selected.append("liveness")

        stg = self.stg
        stats = stg.statistics()
        report = ImplementabilityReport(
            stg_name=stg.name, method="symbolic",
            num_places=stats["places"],
            num_transitions=stats["transitions"],
            num_signals=stats["signals"])
        timer = PhaseTimer()

        for phase, names in group_by_phase(selected):
            with timer.phase(phase):
                for name in names:
                    manager = (self._encoding.manager
                               if self._encoding is not None else None)
                    with obs.span("check", manager=manager,
                                  check=name, phase=phase):
                        apply_check(self, CHECKS[name], report, "symbolic")

        if self.traversal_ran:
            traversal_stats = self.traversal_stats
            report.num_states = traversal_stats.num_states
            report.bdd_peak_nodes = traversal_stats.peak_nodes
            report.bdd_final_nodes = traversal_stats.final_nodes
            report.bdd_variables = traversal_stats.num_variables
        report.timings = timer.as_dict()
        return report
