"""Symbolic persistency checking (Figure 6 of the paper).

Only pairs of transitions sharing an input place can disable each other in
a safe net, so both algorithms iterate over the conflict places and their
output transitions:

* **transition persistency** (Figure 6a): ``ti`` is non-persistent when
  some reachable marking enables both ``ti`` and ``tj`` and after firing
  ``tj`` the transition ``ti`` is no longer enabled;
* **signal persistency** (Figure 6b): as above but the *signal* of ``ti``
  must stay enabled (another transition of the same signal counts).

The signal-level check is then filtered by Definition 3.2: disabling an
input by another input is environment choice (allowed); everything else is
a violation unless it happens across a declared *arbitration place*
(footnote to Definition 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple

from repro.bdd import Function
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage


@dataclass
class SymbolicPersistencyViolation:
    """One disabling discovered by the symbolic check."""

    fired: str
    disabled: str
    disabled_signal: str
    signal_level: bool
    witness: Optional[dict] = None

    def __str__(self) -> str:
        target = (f"signal {self.disabled_signal}" if self.signal_level
                  else f"transition {self.disabled}")
        return f"{target} disabled by firing {self.fired}"


@dataclass
class SymbolicPersistencyResult:
    """Outcome of a symbolic persistency check."""

    persistent: bool
    violations: List[SymbolicPersistencyViolation] = field(default_factory=list)
    arbitration_skips: int = 0

    def violating_pairs(self) -> List[Tuple[str, str]]:
        return sorted({(v.fired, v.disabled) for v in self.violations})


def _conflict_groups(encoding: SymbolicEncoding) -> List[Tuple[str, List[str]]]:
    """Conflict places and their output transitions (``|p*| > 1``)."""
    net = encoding.stg.net
    groups = []
    for place in net.places:
        successors = sorted(net.postset_of_place(place))
        if len(successors) > 1:
            groups.append((place, successors))
    return groups


def check_transition_persistency(encoding: SymbolicEncoding, reached: Function,
                                 image: Optional[SymbolicImage] = None
                                 ) -> SymbolicPersistencyResult:
    """Figure 6(a): transition-level persistency over the reachable set."""
    image = image or SymbolicImage(encoding)
    charfun = image.charfun
    violations: List[SymbolicPersistencyViolation] = []
    seen: Set[Tuple[str, str]] = set()
    for _place, transitions in _conflict_groups(encoding):
        for disabled in transitions:
            enabled = reached & charfun.enabled(disabled)
            if enabled.is_false():
                continue
            for fired in transitions:
                if fired == disabled or (fired, disabled) in seen:
                    continue
                both = enabled & charfun.enabled(fired)
                if both.is_false():
                    continue
                after = image.fire(both, fired)
                bad = after - charfun.enabled(disabled)
                if bad.is_false():
                    continue
                seen.add((fired, disabled))
                witness = bad.pick_one(encoding.all_variables)
                violations.append(SymbolicPersistencyViolation(
                    fired, disabled,
                    encoding.stg.signal_of(disabled), False,
                    encoding.decode_state(witness) if witness else None))
    return SymbolicPersistencyResult(not violations, violations)


def check_signal_persistency(encoding: SymbolicEncoding, reached: Function,
                             image: Optional[SymbolicImage] = None,
                             arbitration_places: Optional[Iterable[str]] = None
                             ) -> SymbolicPersistencyResult:
    """Figure 6(b) filtered by Definition 3.2.

    Parameters
    ----------
    arbitration_places:
        Conflicts whose shared place is in this set are tolerated.
    """
    image = image or SymbolicImage(encoding)
    charfun = image.charfun
    stg = encoding.stg
    arbitration = set(arbitration_places or ())
    violations: List[SymbolicPersistencyViolation] = []
    skips = 0
    seen: Set[Tuple[str, str]] = set()
    for place, transitions in _conflict_groups(encoding):
        for disabled in transitions:
            disabled_signal = stg.signal_of(disabled)
            enabled = reached & charfun.enabled(disabled)
            if enabled.is_false():
                continue
            for fired in transitions:
                if fired == disabled:
                    continue
                fired_signal = stg.signal_of(fired)
                if fired_signal == disabled_signal:
                    continue
                # Definition 3.2 filtering.
                disabled_is_input = stg.is_input(disabled_signal)
                fired_is_input = stg.is_input(fired_signal)
                if disabled_is_input and fired_is_input:
                    continue  # environment choice
                if (fired, disabled_signal) in seen:
                    continue
                both = enabled & charfun.enabled(fired)
                if both.is_false():
                    continue
                after = image.fire(both, fired)
                bad = after - charfun.signal_enabled(disabled_signal)
                if bad.is_false():
                    continue
                if place in arbitration:
                    skips += 1
                    continue
                seen.add((fired, disabled_signal))
                witness = bad.pick_one(encoding.all_variables)
                violations.append(SymbolicPersistencyViolation(
                    fired, disabled, disabled_signal, True,
                    encoding.decode_state(witness) if witness else None))
    return SymbolicPersistencyResult(not violations, violations, skips)
