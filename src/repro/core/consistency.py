"""Symbolic consistency check (Section 5.1).

The characteristic function of inconsistent states is

    Inconsistent(a+) = E(a+) . a      (a+ enabled while a is already 1)
    Inconsistent(a-) = E(a-) . a'     (a- enabled while a is already 0)
    Inconsistent(a)  = Inconsistent(a+) + Inconsistent(a-)
    Inconsistent(D)  = sum over all signals

and the STG is inconsistent iff the reachable set intersects it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bdd import Function
from repro.core.charfun import CharacteristicFunctions
from repro.core.encoding import SymbolicEncoding


@dataclass
class SymbolicConsistencyResult:
    """Outcome of the symbolic consistency check."""

    consistent: bool
    violating_signals: List[str] = field(default_factory=list)
    witnesses: Dict[str, dict] = field(default_factory=dict)

    def __str__(self) -> str:
        if self.consistent:
            return "consistent state assignment"
        return ("inconsistent state assignment for signals "
                + ", ".join(self.violating_signals))


def inconsistent_states(encoding: SymbolicEncoding,
                        charfun: CharacteristicFunctions,
                        signal: str) -> Function:
    """``Inconsistent(a)`` for one signal."""
    variable = encoding.signal(signal)
    rising = charfun.generic_enabled(signal, "+") & variable
    falling = charfun.generic_enabled(signal, "-") & ~variable
    return rising | falling


def check_consistency(encoding: SymbolicEncoding, reached: Function,
                      charfun: Optional[CharacteristicFunctions] = None
                      ) -> SymbolicConsistencyResult:
    """Intersect the reachable set with the inconsistency functions."""
    charfun = charfun or CharacteristicFunctions(encoding)
    violating: List[str] = []
    witnesses: Dict[str, dict] = {}
    for signal in encoding.stg.signals:
        bad = reached & inconsistent_states(encoding, charfun, signal)
        if bad.is_false():
            continue
        violating.append(signal)
        model = bad.pick_one(encoding.all_variables)
        if model is not None:
            witnesses[signal] = encoding.decode_state(model)
    return SymbolicConsistencyResult(not violating, violating, witnesses)
