"""Statistics collected during symbolic traversal (Table 1 columns)."""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Mapping


@dataclass
class TraversalStats:
    """Counters and sizes gathered by :func:`repro.core.traversal.symbolic_traversal`.

    ``peak_nodes`` / ``final_nodes`` measure the BDD of the *Reached* set,
    matching the "BDD size peak / final" columns of the paper's Table 1.
    """

    iterations: int = 0
    images_computed: int = 0
    peak_nodes: int = 0
    final_nodes: int = 0
    num_variables: int = 0
    num_states: int = 0
    #: Wall-clock seconds spent inside the traversal (a timing field:
    #: stripped from the runner's stable comparison views, like every
    #: duration).
    wall_time_s: float = 0.0
    #: Peak number of *live manager nodes* during the traversal -- the
    #: whole working set (frontiers, images, intermediates), as opposed
    #: to ``peak_nodes`` which measures only the Reached BDD.
    peak_live_nodes: int = 0
    #: Operation-cache probes/hits of the BDD manager attributable to
    #: this traversal (deltas of the manager's monotonic counters).
    cache_lookups: int = 0
    cache_hits: int = 0

    def observe_reached(self, nodes: int) -> None:
        """Record the current size of the Reached BDD."""
        if nodes > self.peak_nodes:
            self.peak_nodes = nodes
        self.final_nodes = nodes

    def observe_live_nodes(self, nodes: int) -> None:
        """Record the current live-node count of the BDD manager."""
        if nodes > self.peak_live_nodes:
            self.peak_live_nodes = nodes

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of operation-cache probes that hit (0.0 when unknown)."""
        if not self.cache_lookups:
            return 0.0
        return self.cache_hits / self.cache_lookups

    def as_dict(self) -> Dict[str, object]:
        """Short-key row used by the benchmark harness tables (the
        ``wall_s`` and ``hit_rate`` values are floats)."""
        return {
            "iterations": self.iterations,
            "images": self.images_computed,
            "bdd_peak": self.peak_nodes,
            "bdd_final": self.final_nodes,
            "variables": self.num_variables,
            "states": self.num_states,
            "wall_s": round(self.wall_time_s, 4),
            "live_peak": self.peak_live_nodes,
            "hit_rate": round(self.cache_hit_rate, 4),
        }

    # ------------------------------------------------------------------
    # JSON schema shared by the sweep runner's RunStore and --json report
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Lossless, JSON-serialisable form (field names as keys).

        ``from_dict(to_dict(stats)) == stats`` holds exactly; this is the
        schema the :mod:`repro.runner` result cache persists.  Values mix
        types: every counter is an ``int`` but ``wall_time_s`` is a
        ``float``, so the mapping is ``str -> object``.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TraversalStats":
        """Rebuild stats from :meth:`to_dict` output (unknown keys ignored)."""
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in known})
