"""Explicit (enumerative) implementability checker.

Mirrors :class:`repro.core.checker.ImplementabilityChecker` but computes
every property by enumerating the full state graph.  It is the baseline
the paper improves upon and the oracle used to validate the symbolic
engine on small specifications.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.petri.analysis import check_boundedness
from repro.report import ImplementabilityReport
from repro.sg.builder import build_state_graph
from repro.sg.consistency import check_consistency
from repro.sg.csc import check_csc
from repro.sg.fake_conflicts import classify_conflicts
from repro.sg.persistency import check_signal_persistency
from repro.sg.reducibility import check_reducibility
from repro.stg.stg import STG
from repro.utils.timing import PhaseTimer


class ExplicitChecker:
    """Check STG implementability by explicit state enumeration.

    Parameters
    ----------
    stg:
        The specification to check.
    initial_values:
        Optional completion/override of the initial signal values.
    arbitration_places:
        Places whose output/output conflicts model arbitration and are
        tolerated by the persistency check.
    max_states:
        Enumeration budget (states); exceeding it marks the result as
        unbounded exploration failure.
    """

    def __init__(self, stg: STG,
                 initial_values: Optional[Dict[str, bool]] = None,
                 arbitration_places: Optional[Iterable[str]] = None,
                 max_states: int = 1_000_000) -> None:
        self.stg = stg
        self.initial_values = initial_values
        self.arbitration_places = list(arbitration_places or ())
        self.max_states = max_states

    def check(self) -> ImplementabilityReport:
        """Run every check and produce the report."""
        stg = self.stg
        stats = stg.statistics()
        report = ImplementabilityReport(
            stg_name=stg.name, method="explicit",
            num_places=stats["places"],
            num_transitions=stats["transitions"],
            num_signals=stats["signals"])
        timer = PhaseTimer()

        # Phase 1: traversal + consistency + boundedness ("T+C").
        with timer.phase("T+C"):
            result = build_state_graph(stg, self.initial_values,
                                       max_states=self.max_states)
            graph = result.graph
            report.num_states = graph.num_states
            boundedness = check_boundedness(
                stg.net, max_markings=self.max_states)
            report.bounded = boundedness.bounded and not result.truncated
            report.safe = boundedness.safe if boundedness.bounded else False
            consistency = check_consistency(graph, stg)
            report.consistent = consistency.consistent and result.consistent
        report.add_verdict(
            "bounded", bool(report.bounded),
            [] if report.bounded else ["state budget exceeded or unbounded"])
        report.add_verdict(
            "consistent state assignment", bool(report.consistent),
            [str(v) for v in consistency.violations[:5]]
            + [str(v) for v in result.consistency_violations[:5]])

        # Phase 2: persistency ("NI-p") and fake conflicts.
        with timer.phase("NI-p"):
            persistency = check_signal_persistency(
                graph, stg, self.arbitration_places)
            report.output_persistent = persistency.persistent
            conflicts = classify_conflicts(stg)
            report.fake_free = conflicts.fake_free(stg)
        report.add_verdict("signal persistency", persistency.persistent,
                           [str(v) for v in persistency.violations[:5]])
        report.add_verdict(
            "fake-conflict freedom", bool(report.fake_free),
            [str(c) for c in conflicts.symmetric_fake[:3]]
            + [str(c) for c in conflicts.asymmetric_fake[:3]])

        # Phase 3: CSC and CSC-reducibility ("CSC").
        with timer.phase("CSC"):
            csc = check_csc(graph, stg)
            report.csc = csc.csc
            report.usc = csc.usc
            reducibility = check_reducibility(graph, stg)
            report.deterministic = reducibility.deterministic
            report.commutative = reducibility.commutative
            report.complementary_free = reducibility.complementary_free
        report.add_verdict("complete state coding (CSC)", csc.csc,
                           [str(c) for c in csc.conflicts[:5]])
        report.add_verdict("unique state coding (USC)", csc.usc)
        report.add_verdict(
            "CSC-reducibility", bool(report.csc_reducible),
            [f"mutually complementary input sequences for "
             f"{', '.join(reducibility.offending_signals)}"]
            if reducibility.offending_signals else [])

        report.timings = timer.as_dict()
        return report
