"""Explicit (enumerative) implementability checking.

Mirrors the symbolic engine (:mod:`repro.core`) but computes every
property by enumerating the full state graph.  It is the baseline the
paper improves upon and the oracle used to validate the symbolic engine
on small specifications.

:class:`ExplicitVerification` is the engine context: it owns the lazily
built state graph (built once, shared by every check) and implements the
property checks of the :mod:`repro.api.checks` registry as
``_check_<name>`` appliers.  :class:`ExplicitChecker` is the historical
facade, kept as a thin deprecation shim over :func:`repro.api.run`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.petri.analysis import check_boundedness
from repro.report import ImplementabilityReport
from repro.sg.builder import build_state_graph
from repro.sg.consistency import check_consistency
from repro.sg.csc import check_csc
from repro.sg.fake_conflicts import classify_conflicts
from repro.sg.persistency import check_signal_persistency
from repro.sg.reducibility import check_reducibility
from repro.stg.stg import STG
from repro.utils.timing import PhaseTimer


class ExplicitVerification:
    """One STG, one state-graph enumeration, every property check.

    The explicit counterpart of
    :class:`repro.core.pipeline.VerificationPipeline`: the expensive
    intermediate -- the full state graph -- is built lazily on first
    access and shared by every check, and :meth:`run` executes a selected
    subset of the registered property checks.

    Parameters
    ----------
    stg:
        The specification to check.
    initial_values:
        Optional completion/override of the initial signal values.
    arbitration_places:
        Places whose output/output conflicts model arbitration and are
        tolerated by the persistency check.
    max_states:
        Enumeration budget (states); exceeding it marks the result as
        unbounded exploration failure.
    """

    def __init__(self, stg: STG,
                 initial_values: Optional[Dict[str, bool]] = None,
                 arbitration_places: Optional[Iterable[str]] = None,
                 max_states: int = 1_000_000,
                 deadline: Optional[float] = None) -> None:
        self.stg = stg
        self.initial_values = initial_values
        self.arbitration_places = list(arbitration_places or ())
        self.max_states = max_states
        #: Cooperative per-entry deadline (absolute ``time.monotonic``
        #: instant) checked during enumeration; see
        #: :func:`repro.sg.builder.build_state_graph`.
        self.deadline = deadline
        self._build_result = None
        self._boundedness = None

    # ------------------------------------------------------------------
    # The shared intermediates
    # ------------------------------------------------------------------
    @property
    def build_result(self):
        """The state-graph construction outcome; enumerated exactly once."""
        if self._build_result is None:
            self._build_result = build_state_graph(
                self.stg, self.initial_values, max_states=self.max_states,
                deadline=self.deadline)
        return self._build_result

    @property
    def graph(self):
        return self.build_result.graph

    @property
    def boundedness(self):
        if self._boundedness is None:
            self._boundedness = check_boundedness(
                self.stg.net, max_markings=self.max_states)
        return self._boundedness

    # ------------------------------------------------------------------
    # Check application (the explicit side of the repro.api check registry)
    # ------------------------------------------------------------------
    def _check_consistency(self, report: ImplementabilityReport) -> None:
        result = self.build_result
        report.num_states = self.graph.num_states
        report.bounded = self.boundedness.bounded and not result.truncated
        consistency = check_consistency(self.graph, self.stg)
        report.consistent = consistency.consistent and result.consistent
        report.add_verdict(
            "bounded", bool(report.bounded),
            [] if report.bounded else ["state budget exceeded or unbounded"])
        report.add_verdict(
            "consistent state assignment", bool(report.consistent),
            [str(v) for v in consistency.violations[:5]]
            + [str(v) for v in result.consistency_violations[:5]])

    def _check_safeness(self, report: ImplementabilityReport) -> None:
        boundedness = self.boundedness
        report.safe = boundedness.safe if boundedness.bounded else False
        report.add_verdict("safeness", bool(report.safe),
                           [] if report.safe else ["a place holds >1 token"])

    def _check_persistency(self, report: ImplementabilityReport) -> None:
        persistency = check_signal_persistency(
            self.graph, self.stg, self.arbitration_places)
        report.output_persistent = persistency.persistent
        report.add_verdict("signal persistency", persistency.persistent,
                           [str(v) for v in persistency.violations[:5]])

    def _check_fake_conflicts(self, report: ImplementabilityReport) -> None:
        conflicts = classify_conflicts(self.stg)
        report.fake_free = conflicts.fake_free(self.stg)
        report.add_verdict(
            "fake-conflict freedom", bool(report.fake_free),
            [str(c) for c in conflicts.symmetric_fake[:3]]
            + [str(c) for c in conflicts.asymmetric_fake[:3]])

    def _check_csc(self, report: ImplementabilityReport) -> None:
        csc = check_csc(self.graph, self.stg)
        report.csc = csc.csc
        report.usc = csc.usc
        report.add_verdict("complete state coding (CSC)", csc.csc,
                           [str(c) for c in csc.conflicts[:5]])
        report.add_verdict("unique state coding (USC)", csc.usc)

    def _check_reducibility(self, report: ImplementabilityReport) -> None:
        reducibility = check_reducibility(self.graph, self.stg)
        report.deterministic = reducibility.deterministic
        report.commutative = reducibility.commutative
        report.complementary_free = reducibility.complementary_free
        report.add_verdict(
            "CSC-reducibility", bool(report.csc_reducible),
            [f"mutually complementary input sequences for "
             f"{', '.join(reducibility.offending_signals)}"]
            if reducibility.offending_signals else [])

    # ------------------------------------------------------------------
    # Full report
    # ------------------------------------------------------------------
    def run(self, checks=None) -> ImplementabilityReport:
        """Run the selected property checks and build a report.

        ``checks`` is a selection understood by
        :func:`repro.api.checks.resolve_checks` (``None`` = the default
        set).  Checks run grouped by their registry phase (``T+C``,
        ``NI-p``, ``CSC``), sharing the lazily enumerated state graph.
        """
        from repro import obs
        from repro.api.checks import (
            CHECKS,
            apply_check,
            group_by_phase,
            resolve_checks,
        )

        selected = resolve_checks(checks, engine="explicit")
        stats = self.stg.statistics()
        report = ImplementabilityReport(
            stg_name=self.stg.name, method="explicit",
            num_places=stats["places"],
            num_transitions=stats["transitions"],
            num_signals=stats["signals"])
        timer = PhaseTimer()
        for phase, names in group_by_phase(selected):
            with timer.phase(phase):
                for name in names:
                    with obs.span("check", check=name, phase=phase):
                        apply_check(self, CHECKS[name], report, "explicit")
        report.timings = timer.as_dict()
        return report


class ExplicitChecker:
    """Deprecated constructor-style facade over :func:`repro.api.run`.

    Kept so existing callers (and the cross-validation test-suite) keep
    working; new code should call :func:`repro.api.verify` with an
    :class:`~repro.api.config.EngineConfig` instead.  The parameters
    mirror :class:`ExplicitVerification`.
    """

    def __init__(self, stg: STG,
                 initial_values: Optional[Dict[str, bool]] = None,
                 arbitration_places: Optional[Iterable[str]] = None,
                 max_states: int = 1_000_000) -> None:
        self.stg = stg
        self.initial_values = initial_values
        self.arbitration_places = list(arbitration_places or ())
        self.max_states = max_states

    def check(self) -> ImplementabilityReport:
        """Run every check and produce the report (via :mod:`repro.api`)."""
        from repro import api

        config = api.EngineConfig(
            engine="explicit",
            initial_values=self.initial_values,
            arbitration_places=tuple(self.arbitration_places),
            max_states=self.max_states)
        return api.verify(self.stg, config)
