"""Explicit Complete State Coding (CSC) and Unique State Coding (USC) checks.

Definition 3.4: the state graph satisfies CSC iff states sharing a binary
code have identical sets of enabled *non-input* signals.  USC is the
stronger classical condition that every state has a unique code; it is
reported as well because the difference (USC fails, CSC holds) is a common
and instructive situation.

The region-based formulation of Section 5.3 is also provided
(:func:`csc_conflicts_by_regions`) and the two are cross-checked in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from repro.sg.regions import compute_regions
from repro.sg.state import State, StateGraph
from repro.stg.stg import STG


@dataclass
class CSCConflict:
    """Two states with equal codes but different enabled non-input sets."""

    code: str
    first: State
    second: State
    first_enabled: FrozenSet[str]
    second_enabled: FrozenSet[str]

    @property
    def conflicting_signals(self) -> FrozenSet[str]:
        """Non-input signals enabled in exactly one of the two states."""
        return self.first_enabled.symmetric_difference(self.second_enabled)

    def __str__(self) -> str:
        return (f"code {self.code}: enabled non-inputs "
                f"{sorted(self.first_enabled)} vs {sorted(self.second_enabled)}")


@dataclass
class CSCResult:
    """Outcome of the explicit CSC / USC check."""

    csc: bool
    usc: bool
    conflicts: List[CSCConflict] = field(default_factory=list)

    def conflicting_signals(self) -> List[str]:
        signals: Set[str] = set()
        for conflict in self.conflicts:
            signals.update(conflict.conflicting_signals)
        return sorted(signals)


def check_csc(graph: StateGraph, stg: STG) -> CSCResult:
    """State-pair based CSC and USC check (Definition 3.4)."""
    groups = graph.states_by_code()
    signals = stg.signals
    usc = all(len(states) == 1 for states in groups.values())
    conflicts: List[CSCConflict] = []
    for code_set, states in groups.items():
        if len(states) < 2:
            continue
        reference = states[0]
        reference_enabled = graph.enabled_noninput_signals(reference)
        for other in states[1:]:
            other_enabled = graph.enabled_noninput_signals(other)
            if other_enabled != reference_enabled:
                conflicts.append(CSCConflict(
                    reference.code_string(signals), reference, other,
                    reference_enabled, other_enabled))
    return CSCResult(not conflicts, usc, conflicts)


def csc_conflicts_by_regions(graph: StateGraph, stg: STG,
                             signal: str) -> Set[str]:
    """Region formulation of Section 5.3 for one non-input signal.

    Returns the set of binary codes in
    ``(ER(a+) n QR(a-)) U (ER(a-) n QR(a+))`` -- the *contradictory* codes
    ``CONT(a)``.  CSC holds for the signal iff the set is empty.
    """
    regions = compute_regions(graph, stg, signal)
    signals = stg.signals
    er_plus = regions.codes("er+", signals)
    er_minus = regions.codes("er-", signals)
    qr_plus = regions.codes("qr+", signals)
    qr_minus = regions.codes("qr-", signals)
    return (er_plus & qr_minus) | (er_minus & qr_plus)


def check_csc_by_regions(graph: StateGraph, stg: STG) -> Dict[str, Set[str]]:
    """Contradictory code sets for every non-input signal."""
    return {signal: csc_conflicts_by_regions(graph, stg, signal)
            for signal in stg.noninput_signals}
