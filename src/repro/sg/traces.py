"""Traces, projections and bounded trace equivalence.

Definitions 2.3-2.5 of the paper compare behaviours through their trace
sets and projections.  Full language equivalence of infinite behaviours is
undecidable to enumerate naively, so this module offers the *bounded*
variants used by the tests and the examples: the set of signal-transition
traces up to a given length, projections onto signal subsets, unbalanced
sets, and bounded trace / I-O equivalence of two specifications.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.sg.state import State, StateGraph
from repro.stg.signals import SignalTransition
from repro.stg.stg import STG

Trace = Tuple[str, ...]


def traces_up_to(graph: StateGraph, stg: STG, depth: int,
                 generic: bool = True) -> Set[Trace]:
    """All firing traces of length <= ``depth`` from the initial state.

    With ``generic=True`` the traces record generic labels (``a+``) rather
    than occurrence-indexed transition names (``a+/2``), which is what the
    behavioural definitions of the paper compare.
    """
    results: Set[Trace] = {()}
    frontier: List[Tuple[State, Trace]] = [(graph.initial, ())]
    for _ in range(depth):
        next_frontier: List[Tuple[State, Trace]] = []
        for state, trace in frontier:
            for transition, successor in graph.successors(state):
                label = stg.label_of(transition)
                symbol = label.generic if generic else transition
                extended = trace + (symbol,)
                if extended not in results:
                    results.add(extended)
                next_frontier.append((successor, extended))
        frontier = next_frontier
        if not frontier:
            break
    return results


def projected_traces_up_to(graph: StateGraph, stg: STG,
                           signals: Iterable[str], depth: int) -> Set[Trace]:
    """Projected traces whose *projected* length is at most ``depth``.

    Unlike projecting the result of :func:`traces_up_to`, transitions of
    hidden signals do not consume depth, so two specifications that differ
    only in inserted internal signals produce identical sets (up to the
    bound).  Exploration is protected against unproductive cycles by
    memoising ``(state, projected trace)`` pairs.
    """
    keep = set(signals)
    results: Set[Trace] = {()}
    seen = {(graph.initial, ())}
    frontier: List[Tuple[State, Trace]] = [(graph.initial, ())]
    while frontier:
        next_frontier: List[Tuple[State, Trace]] = []
        for state, trace in frontier:
            for transition, successor in graph.successors(state):
                label = stg.label_of(transition)
                if label.signal in keep:
                    extended = trace + (label.generic,)
                    if len(extended) > depth:
                        continue
                else:
                    extended = trace
                key = (successor, extended)
                if key in seen:
                    continue
                seen.add(key)
                results.add(extended)
                next_frontier.append((successor, extended))
        frontier = next_frontier
    return results


def project(trace: Sequence[str], signals: Iterable[str]) -> Trace:
    """Projection of a trace onto a signal subset (Definition 2.3)."""
    keep = set(signals)
    projected = []
    for symbol in trace:
        signal = SignalTransition.parse(symbol).signal
        if signal in keep:
            projected.append(symbol)
    return tuple(projected)


def project_traces(traces: Iterable[Trace], signals: Iterable[str]) -> Set[Trace]:
    """Project every trace of a set (the paper's ``L(D) | S_B``)."""
    return {project(trace, signals) for trace in traces}


def unbalanced_set(trace: Sequence[str]) -> FrozenSet[str]:
    """Signals whose numbers of ``+`` and ``-`` transitions differ in the trace.

    This is the *unbalanced set* used by Definition 3.5(3).
    """
    balance: Dict[str, int] = {}
    for symbol in trace:
        label = SignalTransition.parse(symbol)
        balance[label.signal] = balance.get(label.signal, 0) \
            + (1 if label.is_rising else -1)
    return frozenset(signal for signal, value in balance.items() if value != 0)


def bounded_trace_equivalent(graph_a: StateGraph, stg_a: STG,
                             graph_b: StateGraph, stg_b: STG,
                             signals: Iterable[str], depth: int) -> bool:
    """Bounded version of trace equivalence by a signal set (Definition 2.4).

    Compares the projected trace sets up to a projected length of
    ``depth`` (transitions of signals outside ``signals`` do not consume
    depth).  Equality up to a bound does not prove full trace equivalence,
    but inequality disproves it; for the small cyclic specifications of the
    test-suite a depth that covers a full cycle of both systems is
    conclusive in practice.
    """
    signals = list(signals)
    traces_a = projected_traces_up_to(graph_a, stg_a, signals, depth)
    traces_b = projected_traces_up_to(graph_b, stg_b, signals, depth)
    return traces_a == traces_b


def bounded_io_equivalent(graph_a: StateGraph, stg_a: STG,
                          graph_b: StateGraph, stg_b: STG,
                          depth: int) -> bool:
    """Bounded I/O equivalence (Definition 2.5).

    Requires equal input and output alphabets plus bounded trace
    equivalence over the union of inputs and outputs.
    """
    if set(stg_a.inputs) != set(stg_b.inputs):
        return False
    if set(stg_a.outputs) != set(stg_b.outputs):
        return False
    observable = set(stg_a.inputs) | set(stg_a.outputs)
    return bounded_trace_equivalent(graph_a, stg_a, graph_b, stg_b,
                                    observable, depth)
