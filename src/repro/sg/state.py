"""States and state graphs.

A *full state* pairs a Petri-net marking with a binary signal code
(Section 3: "Each vertex in such a graph is labelled by a pair
(marking, state)").  Projecting every vertex onto its code component gives
the State Graph proper; this module keeps the full version because the
symbolic encoding of the paper does the same (the state vector
``y = (m, s)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.petri.marking import Marking


@dataclass(frozen=True)
class State:
    """A full state: a marking plus the binary code of all signals.

    ``code`` is stored as a frozenset of the signal names that are at 1
    (so states hash and compare cheaply); use :meth:`value_of` or
    :meth:`code_vector` for dictionary-style access.
    """

    marking: Marking
    high_signals: FrozenSet[str]

    @staticmethod
    def make(marking: Marking, values: Dict[str, bool]) -> "State":
        """Build a state from a marking and a ``{signal: value}`` dict."""
        return State(marking, frozenset(s for s, v in values.items() if v))

    def value_of(self, signal: str) -> bool:
        """Value of one signal in this state."""
        return signal in self.high_signals

    def code_vector(self, signals: List[str]) -> Tuple[int, ...]:
        """The binary code as a tuple following ``signals`` order."""
        return tuple(1 if s in self.high_signals else 0 for s in signals)

    def code_string(self, signals: List[str]) -> str:
        """The binary code as a string, e.g. ``"0110"``."""
        return "".join(str(bit) for bit in self.code_vector(signals))

    def with_signal(self, signal: str, value: bool) -> "State":
        """Copy of the state with one signal forced to ``value``."""
        high = set(self.high_signals)
        if value:
            high.add(signal)
        else:
            high.discard(signal)
        return State(self.marking, frozenset(high))

    def __repr__(self) -> str:
        high = ",".join(sorted(self.high_signals)) or "-"
        return f"State(high=[{high}], marking={self.marking!r})"


class StateGraph:
    """The full state graph of an STG.

    Vertices are :class:`State` objects, edges are labelled with the fired
    Petri-net transition name.  The graph is built by
    :func:`repro.sg.builder.build_state_graph`.
    """

    def __init__(self, stg, initial: State) -> None:
        self.stg = stg
        self.initial = initial
        self._successors: Dict[State, List[Tuple[str, State]]] = {initial: []}

    # Construction -------------------------------------------------------
    def _add_state(self, state: State) -> None:
        self._successors.setdefault(state, [])

    def _add_edge(self, source: State, transition: str, target: State) -> None:
        self._successors.setdefault(source, []).append((transition, target))
        self._successors.setdefault(target, [])

    # Queries -------------------------------------------------------------
    @property
    def states(self) -> List[State]:
        """All reachable full states (BFS order)."""
        return list(self._successors)

    @property
    def num_states(self) -> int:
        return len(self._successors)

    @property
    def num_edges(self) -> int:
        return sum(len(edges) for edges in self._successors.values())

    def successors(self, state: State) -> List[Tuple[str, State]]:
        """Outgoing edges of a state as ``(transition, successor)`` pairs."""
        return list(self._successors[state])

    def edges(self) -> Iterator[Tuple[State, str, State]]:
        for source, outgoing in self._successors.items():
            for transition, target in outgoing:
                yield source, transition, target

    def contains(self, state: State) -> bool:
        return state in self._successors

    def enabled_transitions(self, state: State) -> List[str]:
        """Labelled transitions enabled at a state (by its marking)."""
        return self.stg.net.enabled_transitions(state.marking)

    def enabled_signals(self, state: State) -> FrozenSet[str]:
        """Signals with an enabled transition at a state."""
        return frozenset(self.stg.signal_of(t)
                         for t in self.enabled_transitions(state))

    def enabled_noninput_signals(self, state: State) -> FrozenSet[str]:
        """Enabled signals that the circuit must produce (outputs/internal)."""
        return frozenset(s for s in self.enabled_signals(state)
                         if not self.stg.is_input(s))

    def distinct_codes(self) -> int:
        """Number of distinct binary codes over all states."""
        return len({state.high_signals for state in self._successors})

    def states_by_code(self) -> Dict[FrozenSet[str], List[State]]:
        """Group the states by their binary code."""
        groups: Dict[FrozenSet[str], List[State]] = {}
        for state in self._successors:
            groups.setdefault(state.high_signals, []).append(state)
        return groups

    def deadlocks(self) -> List[State]:
        """States without outgoing edges."""
        return [s for s, edges in self._successors.items() if not edges]

    def __repr__(self) -> str:
        return f"StateGraph(states={self.num_states}, edges={self.num_edges})"


@dataclass
class ConsistencyViolation:
    """One consistency violation observed while building the state graph.

    The transition ``transition`` fired (or was enabled) at ``state`` while
    the signal already had the value the transition is supposed to
    establish (Definition 3.1).
    """

    state: State
    transition: str
    signal: str
    expected_before: bool

    def __str__(self) -> str:
        actual = 0 if self.expected_before else 1
        return (f"transition {self.transition} enabled while {self.signal}="
                f"{actual} (inconsistent)")
