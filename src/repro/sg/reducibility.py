"""Explicit CSC-reducibility analysis (Definition 3.5, Proposition 3.2).

A consistent, persistent state graph of a bounded STG is *CSC-reducible*
(its CSC violations can be repaired by inserting non-input signals without
touching the interface) when it is

* deterministic -- no state has two successors under the same signal
  transition,
* commutative -- two transitions enabled together reach the same state in
  either order, and
* free from *mutually complementary input sequences* -- no state spawns
  two distinct input-only firing sequences with equal unbalanced sets that
  end in different states.

The check for complementary input sequences follows the construction of
Section 5.3: starting from the quiescent side of the contradictory states
``CONT(a)`` of each non-input ``a``, traverse backward and then forward
with all non-input signals frozen, and test whether the excitation side of
``CONT(a)`` is reached.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.sg.regions import compute_regions
from repro.sg.state import State, StateGraph
from repro.stg.stg import STG


# ----------------------------------------------------------------------
# Determinism and commutativity
# ----------------------------------------------------------------------
@dataclass
class DeterminismResult:
    """Outcome of the determinism check (Definition 3.5(1))."""

    deterministic: bool
    violations: List[Tuple[State, str]] = field(default_factory=list)


def check_determinism(graph: StateGraph, stg: STG) -> DeterminismResult:
    """No state may have two different successors via the same ``a*`` label.

    Two distinct transitions with the same generic label (``a+`` and
    ``a+/2``) enabled in the same state violate determinism only when they
    lead to different states.
    """
    violations: List[Tuple[State, str]] = []
    for state in graph.states:
        by_generic: Dict[str, Set[State]] = {}
        for transition, successor in graph.successors(state):
            generic = stg.label_of(transition).generic
            by_generic.setdefault(generic, set()).add(successor)
        for generic, successors in by_generic.items():
            if len(successors) > 1:
                violations.append((state, generic))
    return DeterminismResult(not violations, violations)


@dataclass
class CommutativityResult:
    """Outcome of the commutativity check (Definition 3.5(2))."""

    commutative: bool
    violations: List[Tuple[State, str, str]] = field(default_factory=list)


def check_commutativity(graph: StateGraph, stg: STG) -> CommutativityResult:
    """Both orders of two enabled transitions must reach the same state.

    The check is performed per state on the generic signal-transition
    labels, as in Definition 3.5(2): if ``s --a*--> s1 --b*--> s3`` and
    ``s --b*--> s2 --a*--> s4`` then ``s3`` must equal ``s4``.  Pairs where
    one order is not possible (the diamond does not close because a
    transition got disabled) are persistency problems, not commutativity
    problems, and are ignored here.
    """
    violations: List[Tuple[State, str, str]] = []
    for state in graph.states:
        outgoing = graph.successors(state)
        generic_targets: Dict[str, List[State]] = {}
        for transition, successor in outgoing:
            generic = stg.label_of(transition).generic
            generic_targets.setdefault(generic, []).append(successor)
        generics = sorted(generic_targets)
        for i, first in enumerate(generics):
            for second in generics[i + 1:]:
                ends_first: Set[State] = set()
                for mid in generic_targets[first]:
                    for transition, successor in graph.successors(mid):
                        if stg.label_of(transition).generic == second:
                            ends_first.add(successor)
                ends_second: Set[State] = set()
                for mid in generic_targets[second]:
                    for transition, successor in graph.successors(mid):
                        if stg.label_of(transition).generic == first:
                            ends_second.add(successor)
                if ends_first and ends_second and ends_first != ends_second:
                    violations.append((state, first, second))
    return CommutativityResult(not violations, violations)


# ----------------------------------------------------------------------
# Mutually complementary input sequences
# ----------------------------------------------------------------------
@dataclass
class ComplementarySequencesResult:
    """Outcome of the frozen-input traversal check of Section 5.3."""

    free: bool
    offending_signals: List[str] = field(default_factory=list)


def _frozen_input_edges(graph: StateGraph, stg: STG
                        ) -> Dict[State, List[State]]:
    """Successor map using only edges labelled with *input* transitions."""
    forward: Dict[State, List[State]] = {state: [] for state in graph.states}
    for source, transition, target in graph.edges():
        if stg.is_input(stg.signal_of(transition)):
            forward[source].append(target)
    return forward


def _reverse(edges: Dict[State, List[State]]) -> Dict[State, List[State]]:
    reverse: Dict[State, List[State]] = {state: [] for state in edges}
    for source, targets in edges.items():
        for target in targets:
            reverse[target].append(source)
    return reverse


def _closure(seeds: Set[State], edges: Dict[State, List[State]]) -> Set[State]:
    reached = set(seeds)
    queue = deque(seeds)
    while queue:
        state = queue.popleft()
        for successor in edges[state]:
            if successor not in reached:
                reached.add(successor)
                queue.append(successor)
    return reached


def check_complementary_input_sequences(graph: StateGraph, stg: STG
                                        ) -> ComplementarySequencesResult:
    """Detect mutually complementary input sequences (Section 5.3).

    For each non-input signal ``a`` with CSC conflicts, take the
    contradictory states on the quiescent side, close them backward and
    then forward over input-labelled edges only, and test whether the
    excitation side of the contradiction is reached.  If it is, the code
    conflict is caused purely by input behaviour with balanced signal
    changes and cannot be repaired by inserting non-input signals.
    """
    forward = _frozen_input_edges(graph, stg)
    backward = _reverse(forward)
    offending: List[str] = []
    signals = stg.signals
    for signal in stg.noninput_signals:
        regions = compute_regions(graph, stg, signal)
        er_states = regions.er_plus + regions.er_minus
        qr_states = regions.qr_plus + regions.qr_minus
        er_codes = {state.code_string(signals) for state in er_states}
        qr_codes = {state.code_string(signals) for state in qr_states}
        contradictory_codes = er_codes & qr_codes
        if not contradictory_codes:
            continue
        quiescent_seed = {state for state in qr_states
                          if state.code_string(signals) in contradictory_codes}
        reached_backward = _closure(quiescent_seed, backward)
        reached_frozen = _closure(reached_backward, forward)
        excitation_conflict = {state for state in er_states
                               if state.code_string(signals) in contradictory_codes}
        if reached_frozen & excitation_conflict:
            offending.append(signal)
    return ComplementarySequencesResult(not offending, offending)


# ----------------------------------------------------------------------
# Combined verdict
# ----------------------------------------------------------------------
@dataclass
class ReducibilityResult:
    """CSC-reducibility verdict and its three ingredients."""

    deterministic: bool
    commutative: bool
    complementary_free: bool
    offending_signals: List[str] = field(default_factory=list)

    @property
    def reducible(self) -> bool:
        """True when every CSC violation can be repaired by signal insertion."""
        return (self.deterministic and self.commutative
                and self.complementary_free)


def check_reducibility(graph: StateGraph, stg: STG) -> ReducibilityResult:
    """Run the three ingredient checks and combine them."""
    determinism = check_determinism(graph, stg)
    commutativity = check_commutativity(graph, stg)
    complementary = check_complementary_input_sequences(graph, stg)
    return ReducibilityResult(
        determinism.deterministic,
        commutativity.commutative,
        complementary.free,
        complementary.offending_signals,
    )
