"""Explicit (full) State Graphs and explicit implementability checks.

This package is the *enumeration baseline*: it builds the full state graph
(Section 3 of the paper, after [11]) whose vertices are pairs
``(marking, binary code)`` and checks every implementability property by
walking the graph explicitly.  The symbolic engine in :mod:`repro.core`
computes exactly the same verdicts; the test suite cross-validates the two
on every specification small enough to enumerate, and the benchmarks use
this package as the state-explosion-prone baseline.

Contents:

* :mod:`repro.sg.state` -- states and the :class:`~repro.sg.state.StateGraph`,
* :mod:`repro.sg.builder` -- full-state-graph construction and initial
  value inference,
* :mod:`repro.sg.consistency`, :mod:`repro.sg.persistency`,
  :mod:`repro.sg.regions`, :mod:`repro.sg.csc`,
  :mod:`repro.sg.reducibility`, :mod:`repro.sg.fake_conflicts` -- the
  property checks,
* :mod:`repro.sg.traces` -- projections and bounded trace equivalence,
* :mod:`repro.sg.checker` -- an explicit
  :class:`~repro.sg.checker.ExplicitChecker` facade mirroring the symbolic
  one.
"""

from repro.sg.state import State, StateGraph
from repro.sg.builder import build_state_graph, infer_initial_values
from repro.sg.checker import ExplicitChecker

__all__ = [
    "State",
    "StateGraph",
    "build_state_graph",
    "infer_initial_values",
    "ExplicitChecker",
]
