"""Explicit signal persistency check (Definition 3.2).

A state graph is persistent when

1. no non-input signal can be disabled by another signal, and
2. no input signal can be disabled by a non-input signal.

Disabling by an *input* of another *input* is interpreted as environment
choice and is allowed.  Arbitration points (e.g. the shared place of a
mutual-exclusion element) can be declared explicitly; conflicts whose
shared place is an arbitration place are then tolerated, following the
footnote to Definition 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from repro.sg.state import State, StateGraph
from repro.stg.stg import STG


@dataclass
class SignalPersistencyViolation:
    """Signal ``disabled_signal`` was enabled at ``state`` and is no longer
    enabled after firing ``fired_transition`` (of another signal)."""

    state: State
    fired_transition: str
    fired_signal: str
    disabled_signal: str
    disabled_is_input: bool

    def __str__(self) -> str:
        kind = "input" if self.disabled_is_input else "non-input"
        return (f"{kind} signal {self.disabled_signal} disabled by "
                f"{self.fired_signal} (firing {self.fired_transition})")


@dataclass
class PersistencyResult:
    """Outcome of the explicit persistency check."""

    persistent: bool
    violations: List[SignalPersistencyViolation] = field(default_factory=list)
    arbitration_skips: int = 0

    def violating_signal_pairs(self) -> List[tuple]:
        return sorted({(v.fired_signal, v.disabled_signal)
                       for v in self.violations})


def check_signal_persistency(graph: StateGraph, stg: STG,
                             arbitration_places: Optional[Iterable[str]] = None
                             ) -> PersistencyResult:
    """Check Definition 3.2 on an explicit state graph.

    Parameters
    ----------
    graph, stg:
        The state graph and its specification.
    arbitration_places:
        Places whose conflicts model arbitration; the disabling of
        non-input signals across such a place is tolerated (footnote to
        Definition 3.2).
    """
    arbitration: Set[str] = set(arbitration_places or ())
    violations: List[SignalPersistencyViolation] = []
    skips = 0
    for state in graph.states:
        enabled = graph.enabled_transitions(state)
        if len(enabled) < 2:
            continue
        enabled_signals = {stg.signal_of(t) for t in enabled}
        for fired in enabled:
            fired_signal = stg.signal_of(fired)
            successor_marking = stg.net.fire(fired, state.marking)
            still_enabled = {stg.signal_of(t)
                             for t in stg.net.enabled_transitions(successor_marking)}
            # Sorted: the violation list's order is part of the report
            # (and of stable JSON) -- set order would leak the hash seed.
            for signal in sorted(enabled_signals):
                if signal == fired_signal:
                    continue
                if signal in still_enabled:
                    continue
                # ``signal`` was disabled by firing ``fired``.
                disabled_is_input = stg.is_input(signal)
                fired_is_input = stg.is_input(fired_signal)
                if disabled_is_input and fired_is_input:
                    continue  # environment choice, always allowed
                if disabled_is_input and not fired_is_input:
                    pass  # case 2: input disabled by non-input -> violation
                if _is_arbitration_conflict(stg, state, fired, signal,
                                            arbitration):
                    skips += 1
                    continue
                violations.append(SignalPersistencyViolation(
                    state, fired, fired_signal, signal, disabled_is_input))
    return PersistencyResult(not violations, violations, skips)


def _is_arbitration_conflict(stg: STG, state: State, fired: str,
                             disabled_signal: str,
                             arbitration: Set[str]) -> bool:
    """True when the disabling happens across a declared arbitration place."""
    if not arbitration:
        return False
    fired_preset = stg.net.preset_of_transition(fired)
    for transition in stg.net.enabled_transitions(state.marking):
        if stg.signal_of(transition) != disabled_signal:
            continue
        shared = fired_preset & stg.net.preset_of_transition(transition)
        if shared & arbitration:
            return True
    return False
