"""Explicit fake-conflict analysis (Definition 3.6, Section 3.5).

A *direct conflict* between transitions ``ti`` and ``tj`` (they share an
input place and firing one disables the other) is **fake** with respect to
the direction ``ti -> tj`` when firing ``ti`` never disables the *signal*
of ``tj`` (another transition of the same signal is enabled afterwards).

Classification of a conflicting pair:

* **symmetric fake** -- both directions are fake,
* **asymmetric fake** -- exactly one direction is fake,
* **real** -- neither direction is fake (a genuine choice or disabling).

An STG is *fake-free* when it has no symmetric fake conflicts and no
asymmetric fake conflicts involving a non-input signal.  Fake-freedom
substitutes the expensive commutativity check (Section 5.4): a fake-free
STG is commutative, and it has a persistent SG iff all non-input
transitions are persistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.petri.reachability import ReachabilityGraph, build_reachability_graph
from repro.stg.stg import STG
from repro.stg.validate import direct_conflict_pairs


@dataclass
class ConflictClassification:
    """Classification of one unordered conflicting transition pair."""

    first: str
    second: str
    first_disables_second_signal: bool
    second_disables_first_signal: bool
    observed: bool  # the two transitions are enabled together somewhere

    @property
    def is_fake_symmetric(self) -> bool:
        return (self.observed and not self.first_disables_second_signal
                and not self.second_disables_first_signal)

    @property
    def is_fake_asymmetric(self) -> bool:
        return (self.observed
                and (self.first_disables_second_signal
                     != self.second_disables_first_signal))

    @property
    def is_real(self) -> bool:
        return (self.observed and self.first_disables_second_signal
                and self.second_disables_first_signal)

    def __str__(self) -> str:
        if not self.observed:
            return f"({self.first}, {self.second}): never enabled together"
        if self.is_fake_symmetric:
            kind = "symmetric fake"
        elif self.is_fake_asymmetric:
            kind = "asymmetric fake"
        else:
            kind = "real"
        return f"({self.first}, {self.second}): {kind} conflict"


@dataclass
class FakeConflictResult:
    """Outcome of the explicit fake-conflict analysis."""

    classifications: List[ConflictClassification] = field(default_factory=list)

    @property
    def symmetric_fake(self) -> List[ConflictClassification]:
        return [c for c in self.classifications if c.is_fake_symmetric]

    @property
    def asymmetric_fake(self) -> List[ConflictClassification]:
        return [c for c in self.classifications if c.is_fake_asymmetric]

    def fake_free(self, stg: STG) -> bool:
        """Fake-freedom as defined in Section 3.5."""
        if self.symmetric_fake:
            return False
        for classification in self.asymmetric_fake:
            signals = {stg.signal_of(classification.first),
                       stg.signal_of(classification.second)}
            if any(not stg.is_input(signal) for signal in signals):
                return False
        return True


def classify_conflicts(stg: STG,
                       reach: Optional[ReachabilityGraph] = None
                       ) -> FakeConflictResult:
    """Classify every structural conflict pair of the STG.

    ``reach`` may be passed in to reuse an existing reachability graph.
    """
    if reach is None:
        reach = build_reachability_graph(stg.net)
    # Collect unordered structural pairs.
    ordered = direct_conflict_pairs(stg)
    unordered = sorted({tuple(sorted(pair)) for pair in ordered})
    result = FakeConflictResult()
    for first, second in unordered:
        observed = False
        first_kills_second = False
        second_kills_first = False
        signal_first = stg.signal_of(first)
        signal_second = stg.signal_of(second)
        for marking in reach.markings:
            if not (stg.net.is_enabled(first, marking)
                    and stg.net.is_enabled(second, marking)):
                continue
            observed = True
            after_first = stg.net.fire(first, marking)
            if signal_second not in {stg.signal_of(t)
                                     for t in stg.net.enabled_transitions(after_first)}:
                first_kills_second = True
            after_second = stg.net.fire(second, marking)
            if signal_first not in {stg.signal_of(t)
                                    for t in stg.net.enabled_transitions(after_second)}:
                second_kills_first = True
        result.classifications.append(ConflictClassification(
            first, second, first_kills_second, second_kills_first, observed))
    return result
