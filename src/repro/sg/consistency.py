"""Explicit consistency check (Definition 3.1).

The state assignment is consistent when every edge labelled ``a+`` goes
from a state with ``a = 0`` to a state with ``a = 1`` (symmetrically for
``a-``) and every other signal keeps its value across the edge.  Because
:func:`repro.sg.builder.build_state_graph` always *sets* the target value,
checking the source value of the switching signal is sufficient, but this
module re-checks all three conditions independently so that it can also be
applied to state graphs built by other means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.sg.state import StateGraph
from repro.stg.stg import STG


@dataclass
class EdgeConsistencyViolation:
    """A single edge breaking Definition 3.1."""

    source_code: str
    target_code: str
    transition: str
    reason: str

    def __str__(self) -> str:
        return (f"edge {self.source_code} --{self.transition}--> "
                f"{self.target_code}: {self.reason}")


@dataclass
class ConsistencyResult:
    """Outcome of the explicit consistency check."""

    consistent: bool
    violations: List[EdgeConsistencyViolation] = field(default_factory=list)

    def violating_signals(self) -> List[str]:
        """Signals mentioned in at least one violation."""
        signals = set()
        for violation in self.violations:
            signals.add(violation.transition.split("+")[0].split("-")[0])
        return sorted(signals)


def check_consistency(graph: StateGraph, stg: STG) -> ConsistencyResult:
    """Check every edge of the state graph against Definition 3.1."""
    signals = stg.signals
    violations: List[EdgeConsistencyViolation] = []
    for source, transition, target in graph.edges():
        label = stg.label_of(transition)
        source_value = source.value_of(label.signal)
        target_value = target.value_of(label.signal)
        if label.is_rising and not (source_value is False and target_value is True):
            violations.append(EdgeConsistencyViolation(
                source.code_string(signals), target.code_string(signals),
                transition,
                f"{label.signal} must go 0 -> 1 on {transition}"))
        if label.is_falling and not (source_value is True and target_value is False):
            violations.append(EdgeConsistencyViolation(
                source.code_string(signals), target.code_string(signals),
                transition,
                f"{label.signal} must go 1 -> 0 on {transition}"))
        for other in signals:
            if other == label.signal:
                continue
            if source.value_of(other) != target.value_of(other):
                violations.append(EdgeConsistencyViolation(
                    source.code_string(signals), target.code_string(signals),
                    transition,
                    f"{other} changes although the edge is labelled {transition}"))
    return ConsistencyResult(not violations, violations)
