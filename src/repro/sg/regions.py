"""Excitation and quiescent regions of a state graph (explicit).

For a signal ``a`` (Section 5.3):

* ``ER(a+)`` -- states in which some transition ``a+`` is enabled,
* ``ER(a-)`` -- states in which some transition ``a-`` is enabled,
* ``QR(a+)`` -- states with ``a = 1`` and no ``a-`` enabled,
* ``QR(a-)`` -- states with ``a = 0`` and no ``a+`` enabled.

The union of the four regions covers the whole state graph for a
consistent specification, and the CSC condition compares the *binary
codes* occurring in opposite excitation / quiescent regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.sg.state import State, StateGraph
from repro.stg.stg import STG


@dataclass
class SignalRegions:
    """The four regions of one signal, as sets of states and of codes."""

    signal: str
    er_plus: List[State]
    er_minus: List[State]
    qr_plus: List[State]
    qr_minus: List[State]

    def codes(self, which: str, signals: List[str]) -> Set[str]:
        """Binary-code strings of one region (``"er+"``, ``"qr-"``, ...)."""
        region = {
            "er+": self.er_plus,
            "er-": self.er_minus,
            "qr+": self.qr_plus,
            "qr-": self.qr_minus,
        }[which]
        return {state.code_string(signals) for state in region}


def compute_regions(graph: StateGraph, stg: STG, signal: str) -> SignalRegions:
    """Compute the excitation and quiescent regions of ``signal``."""
    er_plus: List[State] = []
    er_minus: List[State] = []
    qr_plus: List[State] = []
    qr_minus: List[State] = []
    rising = set(stg.transitions_of(signal, "+"))
    falling = set(stg.transitions_of(signal, "-"))
    for state in graph.states:
        enabled = set(graph.enabled_transitions(state))
        plus_enabled = bool(enabled & rising)
        minus_enabled = bool(enabled & falling)
        if plus_enabled:
            er_plus.append(state)
        if minus_enabled:
            er_minus.append(state)
        value = state.value_of(signal)
        if value and not minus_enabled:
            qr_plus.append(state)
        if not value and not plus_enabled:
            qr_minus.append(state)
    return SignalRegions(signal, er_plus, er_minus, qr_plus, qr_minus)


def compute_all_regions(graph: StateGraph, stg: STG) -> Dict[str, SignalRegions]:
    """Regions for every signal of the STG."""
    return {signal: compute_regions(graph, stg, signal)
            for signal in stg.signals}
