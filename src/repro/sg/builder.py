"""Construction of the full state graph and initial-value inference."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.petri.marking import Marking
from repro.petri.reachability import build_reachability_graph
from repro.stg.signals import STGError
from repro.stg.stg import STG
from repro.sg.state import ConsistencyViolation, State, StateGraph
from repro.utils.timing import check_deadline


class StateGraphResult:
    """Outcome of :func:`build_state_graph`.

    Attributes
    ----------
    graph:
        The full state graph (contains every state reached, including the
        successors of inconsistent firings -- the signal value is simply
        overwritten, following Definition 3.1's edge conditions).
    consistency_violations:
        Every ``(state, transition)`` where firing the transition would
        violate the consistent state assignment.
    truncated:
        True when exploration stopped because ``max_states`` was hit.
    """

    def __init__(self, graph: StateGraph,
                 violations: List[ConsistencyViolation],
                 truncated: bool) -> None:
        self.graph = graph
        self.consistency_violations = violations
        self.truncated = truncated

    @property
    def consistent(self) -> bool:
        """True when no consistency violation was recorded."""
        return not self.consistency_violations


def build_state_graph(stg: STG,
                      initial_values: Optional[Dict[str, bool]] = None,
                      max_states: Optional[int] = 1_000_000,
                      deadline: Optional[float] = None
                      ) -> StateGraphResult:
    """Breadth-first construction of the full state graph of an STG.

    Parameters
    ----------
    stg:
        The specification.  Every signal must have an initial value, either
        declared on the STG or passed through ``initial_values``.
    initial_values:
        Overrides / completes the initial signal values.
    max_states:
        Exploration budget; ``None`` means unlimited.
    deadline:
        Optional absolute :func:`time.monotonic` instant checked
        cooperatively per dequeued state
        (:class:`~repro.utils.timing.DeadlineExceeded` past it) -- the
        explicit engine's counterpart of the symbolic traversal's
        per-iteration check.
    """
    values = dict(stg.initial_values)
    if initial_values:
        values.update(initial_values)
    missing = [s for s in stg.signals if s not in values]
    if missing:
        raise STGError(
            f"initial values unknown for signals {missing}; pass "
            f"initial_values= or use infer_initial_values()")

    initial = State.make(stg.initial_marking(), values)
    graph = StateGraph(stg, initial)
    violations: List[ConsistencyViolation] = []
    queue = deque([initial])
    visited: Set[State] = {initial}
    truncated = False
    while queue:
        check_deadline(deadline, "explicit state-graph enumeration")
        state = queue.popleft()
        for transition in stg.net.enabled_transitions(state.marking):
            label = stg.label_of(transition)
            before = state.value_of(label.signal)
            expected_before = not label.target_value
            if before != expected_before:
                violations.append(ConsistencyViolation(
                    state, transition, label.signal, expected_before))
            next_marking = stg.net.fire(transition, state.marking)
            successor = State(
                next_marking,
                state.with_signal(label.signal, label.target_value).high_signals)
            graph._add_edge(state, transition, successor)
            if successor not in visited:
                if max_states is not None and len(visited) >= max_states:
                    truncated = True
                    continue
                visited.add(successor)
                queue.append(successor)
    return StateGraphResult(graph, violations, truncated)


def infer_initial_values(stg: STG,
                         max_markings: Optional[int] = 100_000
                         ) -> Dict[str, bool]:
    """Infer initial signal values from the first observed transitions.

    Implements the simple scheme of Section 5.1: start with every signal
    unknown ("don't care"); as soon as a reachable marking enables some
    ``a+`` the signal ``a`` must have been 0 initially (and symmetrically
    for ``a-``), provided the STG is consistent.  Signals whose transitions
    are never enabled default to 0.

    The inference walks markings in BFS order, so the *first* enabling
    encountered decides; for a consistent STG any enabling of the signal
    gives the same answer.  Already-declared initial values are kept.
    """
    values: Dict[str, bool] = dict(stg.initial_values)
    unknown = {s for s in stg.signals if s not in values}
    if not unknown:
        return values
    reach = build_reachability_graph(stg.net, max_markings=max_markings)
    # BFS order is preserved by ReachabilityGraph.markings.
    for marking in reach.markings:
        if not unknown:
            break
        for transition in stg.net.enabled_transitions(marking):
            label = stg.label_of(transition)
            if label.signal in unknown:
                # a+ enabled somewhere reachable => a was 0 at that state;
                # trace the parity of changes back to the initial state is
                # not needed for consistent STGs built from the initial
                # marking: the number of fired transitions of the signal on
                # any path to this marking has fixed parity, and the paper's
                # scheme simply back-annotates the initial value.
                values[label.signal] = _initial_value_from_first_enabling(
                    stg, reach, label.signal)
                unknown.discard(label.signal)
    # Sorted: ``values`` insertion order must not leak set order.
    for signal in sorted(unknown):
        values[signal] = False
    return values


def _initial_value_from_first_enabling(stg: STG, reach, signal: str) -> bool:
    """Initial value of ``signal`` derived by parity along a shortest path.

    Finds the BFS-first marking enabling a transition of ``signal`` and
    counts how many transitions of the same signal fire along one shortest
    path from the initial marking; the enabled polarity then determines the
    value before that path, i.e. the initial value.
    """
    # Shortest-path parents via BFS over the explicit graph.
    parents: Dict[Marking, Tuple[Marking, str]] = {}
    order: List[Marking] = []
    start = reach.initial
    seen = {start}
    queue = deque([start])
    target: Optional[Marking] = None
    target_polarity: Optional[str] = None
    while queue:
        marking = queue.popleft()
        order.append(marking)
        for transition in stg.net.enabled_transitions(marking):
            label = stg.label_of(transition)
            if label.signal == signal and target is None:
                target = marking
                target_polarity = label.polarity
                break
        if target is not None:
            break
        for transition, successor in reach.successors(marking):
            if successor not in seen:
                seen.add(successor)
                parents[successor] = (marking, transition)
                queue.append(successor)
    if target is None or target_polarity is None:
        return False
    # Count the signal's transitions along the path back to the start.
    changes = 0
    current = target
    while current != start:
        current, transition = parents[current]
        if stg.signal_of(transition) == signal:
            changes += 1
    value_at_target = target_polarity == "-"  # a- enabled => a is 1 there
    if changes % 2 == 0:
        return value_at_target
    return not value_at_target
