"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. on offline machines where ``pip install -e .`` cannot build
an editable wheel).  When ``repro`` is already installed this is a no-op
apart from preferring the in-tree sources.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
