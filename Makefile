# Developer entry points. `make check` is the everyday gate: lint, the
# repo-specific static analyzer, the full unit and integration suite
# (including the cross-engine API-parity tests under tests/api/), plus a
# real sharded parallel sweep, so the runner path is exercised outside
# its unit tests on every run.
#
# `make ci` mirrors .github/workflows/ci.yml on one machine: lint, the
# analyzer (python -m tools.analysis -- determinism, schema round-trips,
# facade purity, registry hygiene), the suite with slow-test timings,
# then the sweep gate (tools/sweep_gate.py) -- every execution backend
# must produce byte-identical stable JSON, merging four shard stores
# must reproduce the unsharded sweep, and the chaos leg must prove the
# lease fabric: a sweep under deterministic fault injection (crashes,
# hangs, torn writes, renewal stalls) byte-identical to a clean sweep,
# every fault class visible in the fabric.retry.* metrics.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check ci lint analyze test test-ci smoke serve-smoke sweep-gate \
	bench bench-pytest

check: lint analyze test smoke

ci: lint analyze test-ci sweep-gate serve-smoke

lint:
	$(PYTHON) tools/lint.py src tests tools

analyze:
	$(PYTHON) -m tools.analysis src tests tools

test:
	$(PYTHON) -m pytest -q

test-ci:
	$(PYTHON) -m pytest -q --durations=10

smoke:
	$(PYTHON) -m pytest -q -m smoke
	$(PYTHON) -m repro batch-check --shard 0/8 --jobs 2

sweep-gate:
	$(PYTHON) tools/sweep_gate.py

# Boot a real `repro serve` daemon and walk the lifecycle: cold stream,
# warm cached repeat, raw .g text, /metrics scrape, drained shutdown
# (mirrors the CI serve job).
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

# The tracked benchmark harnesses: kernel rows + cold/warm --bdd-cache
# sweep to BENCH_sweep.json, then the serve-daemon load test (8
# concurrent clients, cold vs warm p50/p99, plus the incremental
# edit-loop scenario: cold vs --base-seeded re-checks) to
# BENCH_serve.json.
bench:
	$(PYTHON) tools/bench.py --quick
	$(PYTHON) tools/load_test.py --output BENCH_serve.json

bench-pytest:
	$(PYTHON) -m pytest benchmarks --benchmark-only
