# Developer entry points. `make check` is the gate: lint, the full unit
# and integration suite (including the cross-engine API-parity tests
# under tests/api/), plus a real sharded parallel sweep, so the runner
# path is exercised outside its unit tests on every run.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint test smoke bench

check: lint test smoke

lint:
	$(PYTHON) tools/lint.py src tests tools

test:
	$(PYTHON) -m pytest -q

smoke:
	$(PYTHON) -m pytest -q -m smoke
	$(PYTHON) -m repro batch-check --shard 0/8 --jobs 2

bench:
	$(PYTHON) -m pytest benchmarks --benchmark-only
