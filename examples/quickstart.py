#!/usr/bin/env python3
"""Quickstart: specify an STG, check its implementability, derive the logic.

This walks through the complete workflow of the library on the smallest
useful specification (a 4-phase handshake) and on a deliberately broken
variant, printing every intermediate result:

1. build an STG with the programmatic API,
2. validate its structure,
3. verify implementability through the ``repro.api`` facade (symbolic
   BDD traversal),
4. compare with the explicit enumeration engine,
5. derive and verify the complex-gate logic from the facade run's
   shared intermediates.

Run with::

    python examples/quickstart.py
"""

from repro import api
from repro.sg import build_state_graph
from repro.stg import STG, SignalKind, to_g_string
from repro.stg.validate import validate_structure
from repro.synthesis import (
    derive_next_state_functions,
    synthesize_complex_gates,
    verify_implementation,
)


def build_handshake() -> STG:
    """A 4-phase handshake: the environment raises ``r``, we answer ``a``."""
    stg = STG("quickstart_handshake")
    stg.add_signal("r", SignalKind.INPUT, initial_value=False)
    stg.add_signal("a", SignalKind.OUTPUT, initial_value=False)
    stg.connect("r+", "a+")
    stg.connect("a+", "r-")
    stg.connect("r-", "a-")
    stg.connect("a-", "r+", tokens=1)   # token: the environment starts
    return stg


def build_broken_handshake() -> STG:
    """The same interface, but the output may be disabled by the input."""
    stg = STG("broken_handshake")
    stg.add_signal("r", SignalKind.INPUT, initial_value=False)
    stg.add_signal("a", SignalKind.OUTPUT, initial_value=False)
    choice = stg.add_place("p_choice", tokens=1)
    for label in ("r+", "a+"):
        stg.ensure_transition(label)
        stg.add_arc(choice, label)
    stg.connect("r+", "r-")
    stg.ensure_transition("r-")
    stg.add_arc("r-", choice)
    stg.connect("a+", "a-")
    stg.ensure_transition("a-")
    stg.add_arc("a-", choice)
    return stg


def check_and_report(stg: STG) -> None:
    print("=" * 72)
    print(f"Specification: {stg.name}")
    print("=" * 72)
    print(to_g_string(stg))

    validation = validate_structure(stg)
    print(f"structural validation: {validation}")

    outcome = api.run(stg)              # symbolic engine, defaults
    symbolic_report = outcome.report
    print()
    print(symbolic_report.summary())

    explicit_report = api.verify(stg, api.EngineConfig(engine="explicit"))
    print()
    print(f"explicit engine agrees on the classification: "
          f"{explicit_report.classification == symbolic_report.classification}")

    if symbolic_report.gate_implementable:
        # The facade run already computed the shared intermediates --
        # encoding, image operator and reachable-state BDD -- reuse them.
        pipeline = outcome.pipeline
        functions = derive_next_state_functions(
            pipeline.encoding, pipeline.reached, pipeline.charfun)
        gates = synthesize_complex_gates(
            pipeline.encoding, pipeline.reached, pipeline.charfun)
        print()
        print("derived complex-gate equations:")
        for gate in gates.values():
            print(f"  {gate}")
        graph = build_state_graph(stg).graph
        verification = verify_implementation(
            pipeline.encoding, graph, gates, functions)
        print(f"verification against the explicit state graph: {verification}")
    print()


def main() -> None:
    check_and_report(build_handshake())
    check_and_report(build_broken_handshake())


if __name__ == "__main__":
    main()
