#!/usr/bin/env python3
"""The paper's Figure 1: a two-user mutual exclusion element.

Reproduces the running example of the paper end to end:

* builds the 9-place / 8-transition STG of Figure 1,
* shows the three state models of Figure 2 (reachability graph, state
  graph, full state graph) by printing their sizes and the binary codes,
* demonstrates the arbitration subtlety of Definition 3.2: the grant
  conflict violates persistency unless the shared place is declared an
  arbitration point,
* checks CSC and derives the grant logic (set/reset covers of a
  generalised C-element per grant signal).

Run with::

    python examples/mutex_element.py [users]
"""

import sys

from repro.core import ImplementabilityChecker
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import symbolic_traversal
from repro.petri import build_reachability_graph
from repro.sg import build_state_graph
from repro.stg import to_g_string
from repro.stg.generators import mutex_arbitration_places, mutex_element
from repro.synthesis import synthesize_generalized_c_elements


def main() -> None:
    users = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    stg = mutex_element(users)
    print(f"Mutual exclusion element with {users} users "
          f"({stg.net.num_places} places, {stg.net.num_transitions} "
          f"transitions, {len(stg.signals)} signals)")
    print()
    print(to_g_string(stg))

    # Figure 2: the three state models.
    reachability = build_reachability_graph(stg.net)
    full_state_graph = build_state_graph(stg).graph
    print(f"reachability graph : {reachability.num_markings} markings, "
          f"{reachability.num_edges} edges")
    print(f"full state graph   : {full_state_graph.num_states} states "
          f"({full_state_graph.distinct_codes()} distinct binary codes)")
    if users == 2:
        print("state codes (r1 r2 g1 g2):",
              sorted(s.code_string(stg.signals) for s in full_state_graph.states))
    print()

    # Persistency with and without arbitration (Definition 3.2 footnote).
    plain = ImplementabilityChecker(stg).check()
    print("--- without declaring the arbitration point ---")
    print(plain.summary())
    print()
    arbitration = mutex_arbitration_places(stg)
    tolerant = ImplementabilityChecker(stg, arbitration_places=arbitration).check()
    print(f"--- declaring {arbitration} as arbitration point(s) ---")
    print(tolerant.summary())
    print()

    # Grant logic (generalised C-elements).
    encoding = SymbolicEncoding(stg)
    image = SymbolicImage(encoding)
    reached, _ = symbolic_traversal(encoding, image=image)
    elements = synthesize_generalized_c_elements(encoding, reached, image.charfun)
    print("grant logic (set/reset covers):")
    for element in elements.values():
        print(f"  {element}")


if __name__ == "__main__":
    main()
