#!/usr/bin/env python3
"""State-space scaling: symbolic traversal vs explicit enumeration.

The motivation of the paper is that explicit state enumeration explodes on
highly concurrent specifications while BDD-based traversal does not.  This
example sweeps the Muller pipeline family, verifies each instance with
both engines (while the explicit one is still feasible) and prints the
growth of the state count against the size of the BDD representing it.

Run with::

    python examples/pipeline_scaling.py [max_stages]
"""

import sys
import time

from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import symbolic_traversal
from repro.sg import build_state_graph
from repro.stg.generators import muller_pipeline

EXPLICIT_LIMIT = 60_000  # beyond this many states the explicit engine is skipped


def main() -> None:
    max_stages = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    header = (f"{'stages':>6} {'states':>12} {'BDD final':>10} {'BDD peak':>10} "
              f"{'symbolic s':>11} {'explicit s':>11}")
    print(header)
    print("-" * len(header))
    for stages in range(1, max_stages + 1):
        stg = muller_pipeline(stages)
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)

        start = time.perf_counter()
        reached, stats = symbolic_traversal(encoding, image=image)
        symbolic_seconds = time.perf_counter() - start

        explicit_seconds = None
        if stats.num_states <= EXPLICIT_LIMIT:
            start = time.perf_counter()
            explicit = build_state_graph(stg).graph
            explicit_seconds = time.perf_counter() - start
            assert explicit.num_states == stats.num_states

        explicit_text = (f"{explicit_seconds:11.3f}"
                         if explicit_seconds is not None else f"{'skipped':>11}")
        print(f"{stages:>6} {stats.num_states:>12} {stats.final_nodes:>10} "
              f"{stats.peak_nodes:>10} {symbolic_seconds:11.3f} {explicit_text}")
    print()
    print("The reachable state count doubles with every stage while the BDD")
    print("representing it grows only linearly -- the effect the paper's")
    print("Table 1 demonstrates on its scalable benchmarks.")


if __name__ == "__main__":
    main()
