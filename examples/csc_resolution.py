#!/usr/bin/env python3
"""Complete State Coding: diagnosis, reducibility and manual resolution.

Walks through the three CSC situations distinguished by the paper:

1. a *reducible* CSC violation -- the specification is I/O-implementable
   but not gate-implementable; an internal phase signal inserted by the
   designer repairs it without touching the interface;
2. the repaired specification -- CSC (and even USC) hold and the output
   logic can be derived;
3. an *irreducible* CSC violation -- mutually complementary input
   sequences make the conflict unresolvable without changing the
   interface (Definition 3.5(3) / Section 5.3).

Run with::

    python examples/csc_resolution.py
"""

from repro.core import ImplementabilityChecker
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import symbolic_traversal
from repro.sg import build_state_graph
from repro.sg.traces import bounded_trace_equivalent
from repro.stg.generators import (
    csc_resolved_example,
    csc_violation_example,
    irreducible_csc_example,
)
from repro.synthesis import synthesize_complex_gates


def report(stg, title):
    print("=" * 72)
    print(title)
    print("=" * 72)
    result = ImplementabilityChecker(stg).check()
    print(result.summary())
    print()
    return result


def main() -> None:
    violating = csc_violation_example()
    resolved = csc_resolved_example()
    irreducible = irreducible_csc_example()

    report(violating, "1. Reducible CSC violation (alternating output pulses)")
    resolved_report = report(
        resolved, "2. The same behaviour with an inserted internal signal x")
    report(irreducible,
           "3. Irreducible violation (the input order carries the state)")

    # The insertion did not change the observable behaviour.
    graph_violating = build_state_graph(violating).graph
    graph_resolved = build_state_graph(resolved).graph
    observable = ["a", "b", "c"]
    equivalent = bounded_trace_equivalent(
        graph_violating, violating, graph_resolved, resolved, observable, 10)
    print(f"observable behaviour preserved by the insertion "
          f"(bounded I/O trace check): {equivalent}")

    if resolved_report.gate_implementable:
        encoding = SymbolicEncoding(resolved)
        image = SymbolicImage(encoding)
        reached, _ = symbolic_traversal(encoding, image=image)
        gates = synthesize_complex_gates(encoding, reached, image.charfun)
        print()
        print("derived logic for the repaired specification:")
        for gate in gates.values():
            print(f"  {gate}")


if __name__ == "__main__":
    main()
