#!/usr/bin/env python3
"""Incremental verification: the editor loop, warm-started re-checks.

The scenario this library's ``base=`` API exists for: you check a
specification, edit it, and re-check.  A cold re-check pays the full
symbolic traversal again; naming the previous run as the *base* lets
the engine reuse its cached reachable set -- adopting it outright when
the edit is a pure rename, seeding the traversal from it when the edit
is strictly monotone, and falling back to a cold run (with the reasons
spelled out) whenever reuse would be unsound.  Verdicts are always
byte-identical to a cold run; only the time to reach them changes.

This example builds a scalable Muller pipeline, checks it with a BDD
cache attached, adds a probe signal the way an engineer would mid-edit,
and re-checks with ``base=``, printing the reuse tier, the provenance
reasons and the iteration counts of both runs.

Run with::

    python examples/incremental_recheck.py
"""

import tempfile

from repro import api
from repro.stg.generators import build_example
from repro.stg.stg import SignalKind


def add_probe(stg, signal="probe"):
    """The canonical one-signal edit: a disconnected two-phase cycle."""
    rising, falling = f"{signal}+", f"{signal}-"
    p0, p1 = f"p_{signal}0", f"p_{signal}1"
    stg.add_signal(signal, SignalKind.INTERNAL, initial_value=False)
    stg.add_place(p0, tokens=1)
    stg.add_place(p1)
    stg.add_transition(rising)
    stg.add_transition(falling)
    for arc in ((p0, rising), (rising, p1), (p1, falling), (falling, p0)):
        stg.add_arc(*arc)
    return stg


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-recheck-") as cache:
        config = api.EngineConfig(bdd_cache_dir=cache)

        base = build_example("muller_pipeline", 10)
        print(f"checking base {base.name!r} (populates the BDD cache) ...")
        base_outcome = api.run(base, config, checks=("csc",))
        print(f"  classification: {base_outcome.report.classification}, "
              f"{base_outcome.traversal['iterations']} iterations")

        edited = add_probe(build_example("muller_pipeline", 10))
        print("re-checking the edited spec cold ...")
        cold = api.run(edited, api.EngineConfig(), checks=("csc",))
        print(f"  {cold.traversal['iterations']} iterations")

        print("re-checking the edited spec with base= ...")
        delta = api.run(edited, config, checks=("csc",), base=base)
        provenance = delta.report.delta
        print(f"  reuse tier: {provenance['tier']} "
              f"(closed={provenance['closed']})")
        for reason in provenance["reasons"]:
            print(f"    - {reason}")
        print(f"  {delta.traversal['iterations']} iterations "
              f"(vs {cold.traversal['iterations']} cold)")

        same = (cold.report.classification == delta.report.classification
                and cold.report.csc == delta.report.csc)
        print(f"  verdicts identical to the cold re-check: {same}")


if __name__ == "__main__":
    main()
