"""Tests for structural classification and the builder helpers."""

import pytest

from repro.petri import PetriNet
from repro.petri.builders import chain, free_choice_cell, net_from_arcs, parallel_join
from repro.petri.structure import (
    conflict_places,
    is_free_choice,
    is_marked_graph,
    is_state_machine,
    isolated_places,
    merge_places,
    source_transitions,
    structural_conflict_pairs,
    summarize_structure,
)


class TestStructuralClasses:
    def test_chain_is_marked_graph(self):
        net = chain(["t0", "t1", "t2"], closed=True)
        assert is_marked_graph(net)
        assert conflict_places(net) == []

    def test_choice_cell_is_state_machine(self):
        net = free_choice_cell({"ta": [], "tb": []})
        assert is_state_machine(net)
        assert not is_marked_graph(net)

    def test_parallel_join_is_marked_graph_but_not_state_machine(self):
        net = parallel_join([["a0"], ["b0"]])
        assert is_marked_graph(net)
        assert not is_state_machine(net)

    def test_free_choice_recognition(self):
        net = free_choice_cell({"ta": [], "tb": []})
        assert is_free_choice(net)

    def test_non_free_choice(self):
        # tb needs p0 and p1; ta needs only p0 -> asymmetric confusion.
        net = net_from_arcs(
            [("p0", "ta"), ("p0", "tb"), ("p1", "tb"),
             ("ta", "p2"), ("tb", "p3")],
            initial_marking={"p0": 1, "p1": 1},
        )
        assert not is_free_choice(net)

    def test_conflict_and_merge_places(self):
        net = net_from_arcs(
            [("p0", "ta"), ("p0", "tb"), ("ta", "p1"), ("tb", "p1")],
            initial_marking={"p0": 1},
        )
        assert conflict_places(net) == ["p0"]
        assert merge_places(net) == ["p1"]

    def test_structural_conflict_pairs(self):
        net = net_from_arcs(
            [("p0", "ta"), ("p0", "tb"), ("ta", "p1"), ("tb", "p2")],
            initial_marking={"p0": 1},
        )
        assert structural_conflict_pairs(net) == [("ta", "tb"), ("tb", "ta")]

    def test_source_transitions_and_isolated_places(self):
        net = PetriNet()
        net.add_transition("orphan_t")
        net.add_place("orphan_p")
        assert source_transitions(net) == ["orphan_t"]
        assert isolated_places(net) == ["orphan_p"]

    def test_summary(self):
        net = free_choice_cell({"ta": [], "tb": []})
        summary = summarize_structure(net)
        assert summary.num_places == 1
        assert summary.num_transitions == 2
        assert summary.conflict_places == ["p_choice"]
        assert summary.state_machine
        assert summary.as_dict()["free_choice"] is True


class TestNetFromArcs:
    def test_place_inference_by_prefix(self):
        net = net_from_arcs([("p0", "t0"), ("t0", "p1")],
                            initial_marking={"p0": 1})
        assert net.has_place("p0") and net.has_place("p1")
        assert net.has_transition("t0")
        assert net.initial_marking["p0"] == 1

    def test_explicit_kind_declarations_override_prefix(self):
        net = net_from_arcs([("start", "proc"), ("proc", "finish")],
                            places=["start", "finish"],
                            transitions=["proc"],
                            initial_marking={"start": 1})
        assert net.has_place("start") and net.has_transition("proc")

    def test_conflicting_declarations_rejected(self):
        with pytest.raises(ValueError):
            net_from_arcs([], places=["x"], transitions=["x"])

    def test_marked_place_without_arcs_created(self):
        net = net_from_arcs([("p0", "t0"), ("t0", "p1")],
                            initial_marking={"p0": 1, "p_extra": 1})
        assert net.has_place("p_extra")

    def test_declared_unused_nodes_created(self):
        net = net_from_arcs([("p0", "t0"), ("t0", "p1")],
                            initial_marking={"p0": 1},
                            places=["p_lone"], transitions=["t_lone"])
        assert net.has_place("p_lone")
        assert net.has_transition("t_lone")


class TestChainBuilder:
    def test_open_chain_has_start_place(self):
        net = chain(["t0", "t1"])
        assert net.has_place("p_start")
        assert net.initial_marking["p_start"] == 1

    def test_closed_chain_token_position(self):
        net = chain(["t0", "t1", "t2"], closed=True, marked_place=1)
        assert net.initial_marking["p_t1_t2"] == 1

    def test_empty_chain(self):
        net = chain([])
        assert net.num_transitions == 0
        assert net.num_places == 0


class TestParallelJoinBuilder:
    def test_branch_transitions_present(self):
        net = parallel_join([["a0", "a1"], ["b0"]])
        for name in ("fork", "join", "a0", "a1", "b0"):
            assert net.has_transition(name)

    def test_single_token_at_start(self):
        net = parallel_join([["a0"], ["b0"]])
        assert net.initial_marking.total_tokens() == 1
