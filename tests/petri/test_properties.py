"""Property-based tests of Petri-net invariants (hypothesis).

Random safe marked graphs (closed chains and fork/join nets with random
branch lengths) are generated and the classical invariants are checked:
token conservation on cycles, safeness preservation, persistency of marked
graphs, and agreement between the firing rule and reachability queries.
"""

from hypothesis import given, settings, strategies as st

from repro.petri import build_reachability_graph
from repro.petri.analysis import check_boundedness, check_transition_persistency
from repro.petri.builders import chain, parallel_join
from repro.petri.structure import is_marked_graph


@st.composite
def closed_chains(draw):
    length = draw(st.integers(min_value=1, max_value=7))
    marked = draw(st.integers(min_value=0, max_value=length - 1))
    names = [f"t{i}" for i in range(length)]
    return chain(names, closed=True, marked_place=marked)


@st.composite
def fork_join_nets(draw):
    num_branches = draw(st.integers(min_value=1, max_value=3))
    branches = []
    for index in range(num_branches):
        length = draw(st.integers(min_value=1, max_value=3))
        branches.append([f"b{index}_{step}" for step in range(length)])
    return parallel_join(branches)


class TestClosedChainInvariants:
    @settings(max_examples=30, deadline=None)
    @given(net=closed_chains())
    def test_token_count_invariant(self, net):
        graph = build_reachability_graph(net)
        total = net.initial_marking.total_tokens()
        for marking in graph.markings:
            assert marking.total_tokens() == total

    @settings(max_examples=30, deadline=None)
    @given(net=closed_chains())
    def test_reachable_markings_equal_chain_length(self, net):
        graph = build_reachability_graph(net)
        assert graph.num_markings == net.num_transitions

    @settings(max_examples=30, deadline=None)
    @given(net=closed_chains())
    def test_marked_graphs_are_persistent(self, net):
        assert is_marked_graph(net)
        assert check_transition_persistency(net).persistent


class TestForkJoinInvariants:
    @settings(max_examples=25, deadline=None)
    @given(net=fork_join_nets())
    def test_fork_join_is_safe(self, net):
        result = check_boundedness(net)
        assert result.bounded and result.safe

    @settings(max_examples=25, deadline=None)
    @given(net=fork_join_nets())
    def test_fork_join_state_count_is_product_plus_two(self, net):
        # Between fork and join each branch of length L contributes L+1
        # positions; idle and done add two more markings.
        graph = build_reachability_graph(net)
        product = 1
        lengths = {}
        for name in net.transitions:
            if name.startswith("b") and "_" in name:
                branch = name.split("_")[0]
                lengths[branch] = lengths.get(branch, 0) + 1
        for count in lengths.values():
            product *= count + 1
        assert graph.num_markings == product + 2

    @settings(max_examples=25, deadline=None)
    @given(net=fork_join_nets())
    def test_every_transition_fires(self, net):
        graph = build_reachability_graph(net)
        assert graph.dead_transitions() == []

    @settings(max_examples=25, deadline=None)
    @given(net=fork_join_nets())
    def test_successor_markings_are_in_graph(self, net):
        graph = build_reachability_graph(net)
        for marking in graph.markings:
            for transition in net.enabled_transitions(marking):
                assert graph.contains(net.fire(transition, marking))
