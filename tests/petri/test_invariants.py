"""Tests for place and transition invariants."""


from repro.petri import PetriNet, build_reachability_graph
from repro.petri.builders import chain, parallel_join
from repro.petri.invariants import (
    incidence_matrix,
    is_covered_by_positive_place_invariants,
    place_invariants,
    positive_place_invariants,
    structural_bound_from_invariants,
    transition_invariants,
)
from repro.stg.generators import handshake, muller_pipeline, mutex_element


class TestIncidenceMatrix:
    def test_shape(self):
        net = chain(["t0", "t1", "t2"], closed=True)
        places, transitions, matrix = incidence_matrix(net)
        assert len(matrix) == len(places) == 3
        assert len(matrix[0]) == len(transitions) == 3

    def test_column_sums_for_conservative_net(self):
        # In a closed chain every transition consumes and produces exactly
        # one token: each column sums to zero.
        net = chain(["t0", "t1", "t2"], closed=True)
        _, _, matrix = incidence_matrix(net)
        for column in range(3):
            assert sum(row[column] for row in matrix) == 0

    def test_entries(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "q")
        places, transitions, matrix = incidence_matrix(net)
        p_row = matrix[places.index("p")]
        q_row = matrix[places.index("q")]
        assert p_row[transitions.index("t")] == -1
        assert q_row[transitions.index("t")] == 1


class TestPlaceInvariants:
    def test_closed_chain_has_token_conservation_invariant(self):
        net = chain(["t0", "t1", "t2"], closed=True)
        invariants = place_invariants(net)
        assert len(invariants) == 1
        invariant = invariants[0]
        assert invariant.is_positive()
        assert set(invariant.support) == set(net.places)
        assert invariant.value(net.initial_marking) == 1

    def test_invariant_value_constant_over_reachable_markings(self):
        for net in (mutex_element().net, muller_pipeline(3).net,
                    parallel_join([["a0"], ["b0", "b1"]])):
            graph = build_reachability_graph(net)
            for invariant in place_invariants(net):
                reference = invariant.value(graph.initial)
                for marking in graph.markings:
                    assert invariant.value(marking) == reference

    def test_mutex_exclusion_invariant_exists(self):
        # Some positive semiflow containing p_me must have value 1:
        # the mutual-exclusion token is conserved.
        net = mutex_element().net
        candidates = [i for i in positive_place_invariants(net)
                      if i.is_positive() and "p_me" in i.support]
        assert candidates
        assert any(i.value(net.initial_marking) == 1 for i in candidates)

    def test_positive_semiflows_are_invariant_and_positive(self):
        net = mutex_element().net
        graph = build_reachability_graph(net)
        semiflows = positive_place_invariants(net)
        assert semiflows
        for invariant in semiflows:
            assert invariant.is_positive()
            reference = invariant.value(graph.initial)
            for marking in graph.markings:
                assert invariant.value(marking) == reference

    def test_coverage_proves_boundedness_for_marked_graphs(self):
        assert is_covered_by_positive_place_invariants(muller_pipeline(3).net)
        assert is_covered_by_positive_place_invariants(mutex_element().net)

    def test_unbounded_net_not_covered(self):
        net = PetriNet()
        net.add_place("src", tokens=1)
        net.add_place("sink")
        net.add_transition("emit")
        net.add_arc("src", "emit")
        net.add_arc("emit", "src")
        net.add_arc("emit", "sink")
        assert not is_covered_by_positive_place_invariants(net)

    def test_structural_bound(self):
        net = handshake().net
        for place in net.places:
            assert structural_bound_from_invariants(net, place) == 1

    def test_structural_bound_none_without_invariant(self):
        net = PetriNet()
        net.add_place("lonely")
        net.add_transition("t")
        net.add_place("feed", tokens=1)
        net.add_arc("feed", "t")
        net.add_arc("t", "lonely")
        net.add_arc("t", "feed")
        assert structural_bound_from_invariants(net, "lonely") is None

    def test_invariant_string_rendering(self):
        net = chain(["t0", "t1"], closed=True)
        text = str(place_invariants(net)[0])
        assert "+" in text


class TestTransitionInvariants:
    def test_cycle_has_uniform_t_invariant(self):
        net = chain(["t0", "t1", "t2"], closed=True)
        invariants = transition_invariants(net)
        assert len(invariants) == 1
        assert invariants[0].weights == {"t0": 1, "t1": 1, "t2": 1}

    def test_t_invariant_reproduces_marking(self):
        stg = handshake()
        net = stg.net
        invariants = transition_invariants(net)
        assert invariants
        # Fire each transition as often as the invariant says (the firing
        # order of the handshake cycle) and land on the initial marking.
        marking = net.fire_sequence(["r+", "a+", "r-", "a-"])
        assert marking == net.initial_marking

    def test_consistent_stg_has_balanced_t_invariants(self):
        # Every T-invariant of a consistent STG fires a+ and a- equally often.
        stg = muller_pipeline(2)
        invariants = transition_invariants(stg.net)
        assert invariants
        for invariant in invariants:
            for signal in stg.signals:
                rising = sum(invariant.weights.get(t, 0)
                             for t in stg.transitions_of(signal, "+"))
                falling = sum(invariant.weights.get(t, 0)
                              for t in stg.transitions_of(signal, "-"))
                assert rising == falling

    def test_acyclic_net_has_no_t_invariant(self):
        net = PetriNet()
        net.add_place("p0", tokens=1)
        net.add_place("p1")
        net.add_transition("t")
        net.add_arc("p0", "t")
        net.add_arc("t", "p1")
        assert transition_invariants(net) == []
