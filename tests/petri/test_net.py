"""Unit tests for the PetriNet structure and firing rule."""

import pytest

from repro.petri import Marking, PetriNet, PetriNetError


@pytest.fixture
def producer_consumer():
    """A tiny producer/consumer net with a 1-slot buffer."""
    net = PetriNet("producer_consumer")
    net.add_place("idle_p", tokens=1)
    net.add_place("ready_p")
    net.add_place("buffer")
    net.add_place("idle_c", tokens=1)
    net.add_place("ready_c")
    net.add_transition("produce")
    net.add_transition("send")
    net.add_transition("receive")
    net.add_transition("consume")
    for source, target in [
        ("idle_p", "produce"), ("produce", "ready_p"),
        ("ready_p", "send"), ("send", "idle_p"), ("send", "buffer"),
        ("buffer", "receive"), ("idle_c", "receive"), ("receive", "ready_c"),
        ("ready_c", "consume"), ("consume", "idle_c"),
    ]:
        net.add_arc(source, target)
    return net


class TestConstruction:
    def test_counts(self, producer_consumer):
        assert producer_consumer.num_places == 5
        assert producer_consumer.num_transitions == 4

    def test_duplicate_place_rejected(self):
        net = PetriNet()
        net.add_place("p")
        with pytest.raises(PetriNetError):
            net.add_place("p")

    def test_duplicate_transition_rejected(self):
        net = PetriNet()
        net.add_transition("t")
        with pytest.raises(PetriNetError):
            net.add_transition("t")

    def test_name_collision_between_kinds_rejected(self):
        net = PetriNet()
        net.add_place("x")
        with pytest.raises(PetriNetError):
            net.add_transition("x")

    def test_arc_must_connect_place_and_transition(self):
        net = PetriNet()
        net.add_place("p1")
        net.add_place("p2")
        net.add_transition("t1")
        net.add_transition("t2")
        with pytest.raises(PetriNetError):
            net.add_arc("p1", "p2")
        with pytest.raises(PetriNetError):
            net.add_arc("t1", "t2")

    def test_arc_to_unknown_node_rejected(self):
        net = PetriNet()
        net.add_place("p")
        with pytest.raises(PetriNetError):
            net.add_arc("p", "ghost")

    def test_duplicate_arcs_collapse(self, producer_consumer):
        producer_consumer.add_arc("idle_p", "produce")
        assert producer_consumer.preset_of_transition("produce") == {"idle_p"}

    def test_remove_arc(self, producer_consumer):
        producer_consumer.remove_arc("idle_p", "produce")
        assert producer_consumer.preset_of_transition("produce") == set()
        assert "produce" not in producer_consumer.postset_of_place("idle_p")

    def test_remove_arc_is_noop_when_absent(self, producer_consumer):
        producer_consumer.remove_arc("buffer", "consume")  # no such arc
        assert producer_consumer.preset_of_transition("consume") == {"ready_c"}

    def test_remove_arc_invalid_endpoints_rejected(self, producer_consumer):
        with pytest.raises(PetriNetError):
            producer_consumer.remove_arc("idle_p", "buffer")

    def test_negative_initial_tokens_rejected(self):
        net = PetriNet()
        with pytest.raises(PetriNetError):
            net.add_place("p", tokens=-1)

    def test_ensure_place_idempotent(self):
        net = PetriNet()
        first = net.ensure_place("p", tokens=1)
        second = net.ensure_place("p")
        assert first is second
        assert net.num_places == 1


class TestNeighbourhoods:
    def test_transition_preset_postset(self, producer_consumer):
        assert producer_consumer.preset_of_transition("send") == {"ready_p"}
        assert producer_consumer.postset_of_transition("send") == {"idle_p", "buffer"}

    def test_place_preset_postset(self, producer_consumer):
        assert producer_consumer.preset_of_place("buffer") == {"send"}
        assert producer_consumer.postset_of_place("buffer") == {"receive"}

    def test_unknown_node_raises(self, producer_consumer):
        with pytest.raises(PetriNetError):
            producer_consumer.preset_of_transition("ghost")
        with pytest.raises(PetriNetError):
            producer_consumer.postset_of_place("ghost")

    def test_arcs_iteration(self, producer_consumer):
        arcs = set(producer_consumer.arcs())
        assert ("idle_p", "produce") in arcs
        assert ("send", "buffer") in arcs
        assert len(arcs) == 10


class TestFiring:
    def test_initial_marking(self, producer_consumer):
        assert producer_consumer.initial_marking == Marking(
            {"idle_p": 1, "idle_c": 1})

    def test_enabled_transitions_at_start(self, producer_consumer):
        enabled = producer_consumer.enabled_transitions(
            producer_consumer.initial_marking)
        assert enabled == ["produce"]

    def test_fire_moves_tokens(self, producer_consumer):
        m0 = producer_consumer.initial_marking
        m1 = producer_consumer.fire("produce", m0)
        assert m1 == Marking({"ready_p": 1, "idle_c": 1})

    def test_fire_disabled_transition_rejected(self, producer_consumer):
        with pytest.raises(PetriNetError):
            producer_consumer.fire("consume", producer_consumer.initial_marking)

    def test_fire_sequence(self, producer_consumer):
        final = producer_consumer.fire_sequence(
            ["produce", "send", "receive", "consume"])
        assert final == producer_consumer.initial_marking

    def test_fire_sequence_detects_illegal_step(self, producer_consumer):
        with pytest.raises(PetriNetError):
            producer_consumer.fire_sequence(["produce", "receive"])

    def test_fire_does_not_mutate_input_marking(self, producer_consumer):
        m0 = producer_consumer.initial_marking
        producer_consumer.fire("produce", m0)
        assert m0 == producer_consumer.initial_marking

    def test_set_initial_tokens(self, producer_consumer):
        producer_consumer.set_initial_tokens("buffer", 1)
        assert producer_consumer.initial_marking["buffer"] == 1


class TestCopy:
    def test_copy_is_deep_for_structure(self, producer_consumer):
        clone = producer_consumer.copy()
        clone.add_place("extra")
        assert not producer_consumer.has_place("extra")

    def test_copy_preserves_marking_and_arcs(self, producer_consumer):
        clone = producer_consumer.copy()
        assert clone.initial_marking == producer_consumer.initial_marking
        assert set(clone.arcs()) == set(producer_consumer.arcs())

    def test_copy_preserves_labels(self):
        net = PetriNet()
        net.add_transition("t", label=("a", 1, "+"))
        assert net.copy().transition("t").label == ("a", 1, "+")
