"""Unit tests for the immutable Marking class."""

import pytest

from repro.petri import Marking


class TestConstruction:
    def test_empty_marking(self):
        m = Marking()
        assert len(m) == 0
        assert m.total_tokens() == 0

    def test_zero_entries_dropped(self):
        m = Marking({"p1": 1, "p2": 0})
        assert "p2" not in m
        assert m["p2"] == 0

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            Marking({"p1": -1})

    def test_construction_from_pairs(self):
        m = Marking([("a", 2), ("b", 1)])
        assert m["a"] == 2 and m["b"] == 1


class TestEqualityAndHashing:
    def test_equal_markings_equal_hash(self):
        m1 = Marking({"p1": 1, "p2": 2})
        m2 = Marking({"p2": 2, "p1": 1, "p3": 0})
        assert m1 == m2
        assert hash(m1) == hash(m2)

    def test_unequal_markings(self):
        assert Marking({"p1": 1}) != Marking({"p1": 2})

    def test_comparison_with_plain_dict(self):
        assert Marking({"p1": 1}) == {"p1": 1, "p2": 0}

    def test_usable_as_dict_key(self):
        d = {Marking({"p": 1}): "x"}
        assert d[Marking({"p": 1})] == "x"


class TestQueries:
    def test_marked_places(self):
        m = Marking({"a": 1, "b": 0, "c": 3})
        assert m.marked_places == frozenset({"a", "c"})

    def test_total_and_max(self):
        m = Marking({"a": 1, "b": 2})
        assert m.total_tokens() == 3
        assert m.max_tokens() == 2

    def test_is_safe(self):
        assert Marking({"a": 1, "b": 1}).is_safe()
        assert not Marking({"a": 2}).is_safe()

    def test_covers(self):
        big = Marking({"a": 2, "b": 1})
        small = Marking({"a": 1})
        assert big.covers(small)
        assert not small.covers(big)

    def test_as_vector(self):
        m = Marking({"a": 1, "c": 2})
        assert m.as_vector(["a", "b", "c"]) == (1, 0, 2)

    def test_restricted_to(self):
        m = Marking({"a": 1, "b": 2, "c": 1})
        assert m.restricted_to(["a", "c"]) == Marking({"a": 1, "c": 1})


class TestUpdates:
    def test_add_returns_new_marking(self):
        m = Marking({"a": 1})
        m2 = m.add(["a", "b"])
        assert m == Marking({"a": 1})
        assert m2 == Marking({"a": 2, "b": 1})

    def test_remove(self):
        m = Marking({"a": 2, "b": 1})
        assert m.remove(["a", "b"]) == Marking({"a": 1})

    def test_remove_below_zero_rejected(self):
        with pytest.raises(ValueError):
            Marking({"a": 1}).remove(["b"])

    def test_add_then_remove_roundtrip(self):
        m = Marking({"x": 1})
        assert m.add(["y"]).remove(["y"]) == m
