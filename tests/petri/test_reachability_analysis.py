"""Tests for explicit reachability, boundedness, deadlock and persistency."""

import pytest

from repro.petri import Marking, PetriNet, build_reachability_graph
from repro.petri.analysis import (
    check_boundedness,
    check_transition_persistency,
    find_deadlocks,
    is_quasi_live,
    is_safe,
    live_transitions,
)
from repro.petri.builders import chain, free_choice_cell, net_from_arcs, parallel_join
from repro.petri.reachability import BoundViolation


@pytest.fixture
def cycle():
    """A closed 3-transition cycle: 3 reachable markings, no deadlock."""
    return chain(["t0", "t1", "t2"], closed=True)


@pytest.fixture
def unbounded_net():
    """A net whose single transition produces tokens forever."""
    net = PetriNet("unbounded")
    net.add_place("src", tokens=1)
    net.add_place("sink")
    net.add_transition("emit")
    net.add_arc("src", "emit")
    net.add_arc("emit", "src")
    net.add_arc("emit", "sink")
    return net


@pytest.fixture
def conflict_net():
    """Two transitions compete for one token: a classical direct conflict."""
    return net_from_arcs(
        [("p0", "ta"), ("p0", "tb"), ("ta", "pa"), ("tb", "pb")],
        initial_marking={"p0": 1},
    )


class TestReachabilityGraph:
    def test_cycle_marking_count(self, cycle):
        graph = build_reachability_graph(cycle)
        assert graph.num_markings == 3
        assert graph.num_edges == 3

    def test_initial_marking_contained(self, cycle):
        graph = build_reachability_graph(cycle)
        assert graph.contains(cycle.initial_marking)

    def test_successors_labelled_with_transitions(self, cycle):
        graph = build_reachability_graph(cycle)
        start = cycle.initial_marking
        successors = graph.successors(start)
        assert len(successors) == 1
        transition, _target = successors[0]
        assert cycle.has_transition(transition)

    def test_parallel_join_state_count(self):
        # Two branches of 2 transitions: between fork and join the branches
        # interleave freely -> 3x3 intermediate positions.
        net = parallel_join([["a0", "a1"], ["b0", "b1"]])
        graph = build_reachability_graph(net)
        # idle + 9 interleavings + done = 11 markings.
        assert graph.num_markings == 11

    def test_max_markings_cap(self):
        net = parallel_join([["a0", "a1"], ["b0", "b1"]])
        with pytest.raises(BoundViolation):
            build_reachability_graph(net, max_markings=4)

    def test_bound_cap_detects_unsafe(self, unbounded_net):
        with pytest.raises(BoundViolation):
            build_reachability_graph(unbounded_net, max_markings=10, bound=1)

    def test_unknown_marking_query_raises(self, cycle):
        graph = build_reachability_graph(cycle)
        from repro.petri import PetriNetError

        with pytest.raises(PetriNetError):
            graph.successors(Marking({"nowhere": 1}))

    def test_custom_initial_marking(self, cycle):
        other_start = Marking({"p_t1_t2": 1})
        graph = build_reachability_graph(cycle, initial=other_start)
        assert graph.initial == other_start
        assert graph.num_markings == 3

    def test_edges_iteration_consistent_with_counts(self, cycle):
        graph = build_reachability_graph(cycle)
        assert len(list(graph.edges())) == graph.num_edges


class TestBoundedness:
    def test_safe_net(self, cycle):
        result = check_boundedness(cycle)
        assert result.bounded and result.safe
        assert result.bound == 1
        assert is_safe(cycle)

    def test_unbounded_net_reported(self, unbounded_net):
        result = check_boundedness(unbounded_net, max_markings=50)
        assert not result.bounded

    def test_two_bounded_net(self):
        # Two producers fill a shared buffer place: 2-bounded, not safe.
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b", tokens=1)
        net.add_place("buf")
        net.add_transition("ta")
        net.add_transition("tb")
        net.add_arc("a", "ta")
        net.add_arc("ta", "buf")
        net.add_arc("b", "tb")
        net.add_arc("tb", "buf")
        result = check_boundedness(net)
        assert result.bounded
        assert result.bound == 2
        assert not result.safe


class TestDeadlocksAndLiveness:
    def test_cycle_has_no_deadlock(self, cycle):
        assert find_deadlocks(cycle) == []

    def test_choice_net_consumes_token_and_deadlocks(self, conflict_net):
        deadlocks = find_deadlocks(conflict_net)
        assert len(deadlocks) == 2  # either branch ends stuck

    def test_live_transitions(self, conflict_net):
        assert set(live_transitions(conflict_net)) == {"ta", "tb"}

    def test_quasi_liveness(self, cycle, conflict_net):
        assert is_quasi_live(cycle)
        assert is_quasi_live(conflict_net)

    def test_dead_transition_detected(self):
        net = net_from_arcs([("p0", "t0"), ("t0", "p1")],
                            initial_marking={"p0": 1})
        net.add_transition("never")
        net.add_place("unmarked")
        net.add_arc("unmarked", "never")
        assert not is_quasi_live(net)


class TestTransitionPersistency:
    def test_marked_graph_is_persistent(self, cycle):
        result = check_transition_persistency(cycle)
        assert result.persistent
        assert result.violations == []

    def test_direct_conflict_detected(self, conflict_net):
        result = check_transition_persistency(conflict_net)
        assert not result.persistent
        pairs = result.conflicting_pairs()
        assert ("ta", "tb") in pairs and ("tb", "ta") in pairs

    def test_first_violation_only_stops_early(self, conflict_net):
        result = check_transition_persistency(conflict_net,
                                              first_violation_only=True)
        assert not result.persistent
        assert len(result.violations) == 1

    def test_free_choice_cell_conflict(self):
        net = free_choice_cell({"ta": ["ta2"], "tb": []})
        result = check_transition_persistency(net)
        assert not result.persistent

    def test_concurrent_transitions_are_persistent(self):
        net = parallel_join([["a0"], ["b0"]])
        assert check_transition_persistency(net).persistent
