"""End-to-end tests of the sweep runner.

The three contracts the ISSUE pins:

* shard partitions are disjoint and cover the corpus (test_plan.py),
* ``--jobs 1`` and ``--jobs 4`` produce identical verdict results,
* a poisoned entry is reported as ``error`` without killing the sweep.

Plus the cache lifecycle: a second run against a populated store serves
every unchanged entry as ``cached`` and a content change invalidates
exactly the affected entry.
"""

import json

import pytest

from repro.api import EngineConfig
from repro.runner import (
    RunStore,
    SweepPlan,
    SweepRunner,
    SweepTask,
    run_sweep,
)

#: A small but representative slice of the corpus (positive, negative,
#: arbitration, random entries) -- keeps the parallel tests fast.
SELECTION = ["handshake", "vme_read", "mutex_element", "inconsistent",
             "irreducible_csc", "random_ring_n4_s1", "random_parallel_r2_s3"]


def stable_json(sweep):
    return json.dumps(sweep.stable_json_dict(), sort_keys=True)


class TestSweepExecution:
    def test_sequential_sweep_matches_registry(self):
        sweep = run_sweep(SweepPlan(names=SELECTION))
        assert len(sweep) == len(SELECTION)
        assert sweep.matching == len(SELECTION)
        assert sweep.succeeded

    def test_results_preserve_plan_order(self):
        sweep = run_sweep(SweepPlan(names=SELECTION, jobs=3))
        assert [result.name for result in sweep] == SELECTION

    @pytest.mark.smoke
    def test_jobs1_and_jobs4_are_byte_identical(self):
        sequential = run_sweep(SweepPlan(names=SELECTION, jobs=1))
        parallel = run_sweep(SweepPlan(names=SELECTION, jobs=4))
        assert stable_json(sequential) == stable_json(parallel)

    def test_symbolic_results_carry_traversal_stats(self):
        sweep = run_sweep(SweepPlan(names=["handshake"]))
        traversal = sweep.results[0].traversal
        assert traversal is not None and traversal["num_states"] == 4

    def test_explicit_engine_sweep(self):
        sweep = run_sweep(SweepPlan(names=["handshake", "choice_controller"],
                                    config=EngineConfig(engine="explicit")))
        assert sweep.succeeded
        assert sweep.results[0].traversal is None

    def test_progress_callback_sees_every_result(self):
        seen = []
        SweepRunner(SweepPlan(names=SELECTION, jobs=2),
                    progress=seen.append).run()
        assert sorted(result.name for result in seen) == sorted(SELECTION)


class PoisonedPlan(SweepPlan):
    """A plan with an unparseable specification injected mid-sweep."""

    def tasks(self):
        tasks = super().tasks()
        tasks.insert(1, SweepTask(name="poisoned",
                                  g_text=".bogus_directive\n"))
        return tasks


class TestFailureIsolation:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_poisoned_entry_reported_as_error_sweep_survives(self, jobs):
        plan = PoisonedPlan(names=["handshake", "vme_read"], jobs=jobs)
        sweep = SweepRunner(plan).run()
        by_name = {result.name: result for result in sweep}
        assert by_name["poisoned"].status == "error"
        assert "bogus_directive" in by_name["poisoned"].error
        assert by_name["handshake"].status == "ok"
        assert by_name["vme_read"].status == "ok"
        assert not sweep.succeeded

    def test_timeout_terminates_the_worker_not_the_sweep(self):
        class SlowPlan(SweepPlan):
            def tasks(self):
                slow = SweepTask(name="slow", g_text="", delay=30.0,
                                 config=EngineConfig(timeout=0.2))
                return [slow] + super().tasks()

        sweep = SweepRunner(SlowPlan(names=["handshake"], jobs=2)).run()
        by_name = {result.name: result for result in sweep}
        assert by_name["slow"].status == "timeout"
        assert by_name["handshake"].status == "ok"


class TestResultCache:
    def test_second_run_serves_everything_from_cache(self, tmp_path):
        plan = SweepPlan(names=SELECTION)
        first = run_sweep(plan, cache_dir=str(tmp_path))
        second = run_sweep(plan, cache_dir=str(tmp_path))
        assert first.cached == 0
        assert second.cached == len(SELECTION)
        assert all(result.cached for result in second)
        # Cache hits change provenance, never verdicts.
        assert stable_json(first) == stable_json(second)

    def test_content_change_invalidates_only_the_affected_entry(
            self, tmp_path):
        class EditedPlan(SweepPlan):
            """As if one corpus entry's .g text had been edited."""

            def tasks(self):
                tasks = super().tasks()
                victim = tasks[2]
                tasks[2] = SweepTask(
                    name=victim.name,
                    g_text=victim.g_text + "\n",  # content change
                    config=victim.config,
                    expected=victim.expected)
                return tasks

        run_sweep(SweepPlan(names=SELECTION), cache_dir=str(tmp_path))
        edited = SweepRunner(EditedPlan(names=SELECTION),
                             store=RunStore(str(tmp_path))).run()
        recomputed = [result.name for result in edited if not result.cached]
        assert recomputed == [SELECTION[2]]

    def test_engine_switch_invalidates_everything(self, tmp_path):
        names = ["handshake", "vme_read"]
        explicit_config = EngineConfig(engine="explicit")
        run_sweep(SweepPlan(names=names), cache_dir=str(tmp_path))
        explicit = run_sweep(SweepPlan(names=names, config=explicit_config),
                             cache_dir=str(tmp_path))
        assert explicit.cached == 0
        # Both configs now coexist in the store: alternating engines
        # keeps hitting the cache instead of evicting each other.
        symbolic_again = run_sweep(SweepPlan(names=names),
                                   cache_dir=str(tmp_path))
        explicit_again = run_sweep(SweepPlan(names=names,
                                             config=explicit_config),
                                   cache_dir=str(tmp_path))
        assert symbolic_again.cached == 2
        assert explicit_again.cached == 2

    def test_error_results_are_retried_not_cached(self, tmp_path):
        plan = PoisonedPlan(names=["handshake"])
        store = RunStore(str(tmp_path))
        SweepRunner(plan, store=store).run()
        second = SweepRunner(plan, store=RunStore(str(tmp_path))).run()
        by_name = {result.name: result for result in second}
        assert by_name["handshake"].cached
        assert not by_name["poisoned"].cached  # recomputed, still an error
        assert by_name["poisoned"].status == "error"


class TestResume:
    """Interrupted sweeps: incremental persistence + fingerprint triage."""

    class Kill(RuntimeError):
        """Stands in for SIGKILL mid-sweep."""

    def killed_sweep(self, plan, store, survivors):
        """Run ``plan`` but die after ``survivors`` results (serial
        backend: the kill point is deterministic)."""
        seen = []

        def die_after(result):
            seen.append(result)
            if len(seen) >= survivors:
                raise self.Kill

        with pytest.raises(self.Kill):
            SweepRunner(plan, store=store, progress=die_after,
                        backend="serial").run()

    def test_results_persist_incrementally(self, tmp_path):
        store = RunStore(str(tmp_path))
        self.killed_sweep(SweepPlan(names=SELECTION), store, survivors=3)
        # Everything finished before the kill is already on disk.
        assert len(RunStore(str(tmp_path))) == 3

    def test_resume_computes_only_the_missing_fingerprints(self, tmp_path):
        plan = SweepPlan(names=SELECTION)
        self.killed_sweep(plan, RunStore(str(tmp_path)), survivors=3)
        resumed = SweepRunner(plan, store=RunStore(str(tmp_path))).run()
        assert [r.name for r in resumed if r.cached] == SELECTION[:3]
        assert [r.name for r in resumed if not r.cached] == SELECTION[3:]
        # The resumed sweep is indistinguishable from an uninterrupted one.
        assert stable_json(resumed) == stable_json(run_sweep(plan))

    def test_resume_survives_a_truncated_trailing_record(self, tmp_path):
        import os

        from repro.runner import RunStoreWarning
        from repro.runner.store import RESULTS_FILE

        plan = SweepPlan(names=SELECTION)
        self.killed_sweep(plan, RunStore(str(tmp_path)), survivors=3)
        path = os.path.join(str(tmp_path), RESULTS_FILE)
        with open(path, encoding="utf-8") as handle:
            content = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content + content.splitlines()[-1][:50])
        with pytest.warns(RunStoreWarning):
            store = RunStore(str(tmp_path))
        resumed = SweepRunner(plan, store=store).run()
        assert sum(1 for r in resumed if r.cached) == 3
        assert resumed.succeeded


class TestFamilySweeps:
    @pytest.mark.smoke
    def test_family_scale_range_sweep(self):
        plan = SweepPlan(names=["handshake"],
                         families=[("random_ring", range(1, 9))], jobs=2)
        sweep = SweepRunner(plan).run()
        assert len(sweep) == 9
        assert sweep.succeeded
        names = [result.name for result in sweep]
        assert names[1] == "random_ring@1" and names[-1] == "random_ring@8"
