"""Tests of the pluggable execution-backend layer.

The contracts the ISSUE pins:

* the backend registry mirrors ``repro.engines`` (register/available/get,
  did-you-mean on unknown names),
* ``process``, ``thread``, ``serial`` and ``asyncio`` produce
  byte-identical ``SweepResult.stable_json_dict()`` output for the same
  plan,
* failure isolation holds on every backend, and
* results carry per-entry execution provenance while the stable view
  stays provenance-free.
"""

import json

import pytest

from repro.runner import (
    SweepPlan,
    SweepRunner,
    UnknownBackendError,
    backends,
    run_sweep,
)

SELECTION = ["handshake", "vme_read", "mutex_element", "inconsistent",
             "random_ring_n4_s1"]

BUILTINS = ("process", "thread", "serial", "asyncio")


def stable_json(sweep):
    return json.dumps(sweep.stable_json_dict(), sort_keys=True)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = backends.available()
        for name in BUILTINS:
            assert name in names
        assert names[0] == backends.DEFAULT_BACKEND == "process"

    def test_get_returns_the_named_backend(self):
        for name in BUILTINS:
            assert backends.get(name).name == name

    def test_unknown_backend_has_did_you_mean(self):
        with pytest.raises(UnknownBackendError) as info:
            backends.get("thraed")
        assert "unknown execution backend 'thraed'" in str(info.value)
        assert "thread" in str(info.value)

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            backends.register("serial", backends.SerialBackend())

    def test_custom_backend_plugs_in(self):
        class Tagged(backends.SerialBackend):
            name = "tagged"

        backends.register("tagged", Tagged())
        try:
            sweep = run_sweep(SweepPlan(names=["handshake"],
                                        backend="tagged"))
            assert sweep.backend == "tagged"
            assert sweep.succeeded
        finally:
            backends.unregister("tagged")

    def test_resolve_accepts_instances_names_and_none(self):
        instance = backends.SerialBackend()
        assert backends.resolve(instance) is instance
        assert backends.resolve("thread").name == "thread"
        assert backends.resolve(None).name == backends.DEFAULT_BACKEND


class TestBackendParity:
    @pytest.mark.smoke
    def test_all_builtin_backends_are_byte_identical(self):
        sweeps = {name: run_sweep(SweepPlan(names=SELECTION, jobs=2),
                                  backend=name)
                  for name in BUILTINS}
        reference = stable_json(sweeps["process"])
        for name in BUILTINS:
            assert stable_json(sweeps[name]) == reference, name
            assert sweeps[name].backend == name

    def test_plan_backend_selects_execution(self):
        sweep = SweepRunner(SweepPlan(names=["handshake"],
                                      backend="serial")).run()
        assert sweep.backend == "serial"

    def test_runner_backend_overrides_plan(self):
        plan = SweepPlan(names=["handshake"], backend="serial")
        sweep = SweepRunner(plan, backend="thread").run()
        assert sweep.backend == "thread"

    @pytest.mark.parametrize("backend", ["thread", "asyncio"])
    def test_results_preserve_plan_order_on_pools(self, backend):
        sweep = run_sweep(SweepPlan(names=SELECTION, jobs=4),
                          backend=backend)
        assert [result.name for result in sweep] == SELECTION

    def test_asyncio_backend_is_the_serve_machinery(self):
        # The daemon awaits execute_payload_async directly; the backend
        # must be the same primitive behind the sweep-facing protocol.
        backend = backends.get("asyncio")
        assert isinstance(backend, backends.AsyncioBackend)
        assert not backend.supports_timeouts


class TestFailureIsolationAcrossBackends:
    @pytest.mark.parametrize("backend", BUILTINS)
    def test_poisoned_entry_is_isolated(self, backend):
        from repro.runner import SweepTask

        class Poisoned(SweepPlan):
            def tasks(self):
                tasks = super().tasks()
                tasks.insert(1, SweepTask(name="poisoned",
                                          g_text=".bogus_directive\n"))
                return tasks

        plan = Poisoned(names=["handshake", "vme_read"], jobs=2)
        sweep = SweepRunner(plan, backend=backend).run()
        by_name = {result.name: result for result in sweep}
        assert by_name["poisoned"].status == "error"
        assert by_name["handshake"].status == "ok"
        assert by_name["vme_read"].status == "ok"


class TestProvenance:
    def test_fresh_results_are_stamped(self):
        sweep = run_sweep(SweepPlan(names=["handshake"], backend="thread"))
        provenance = sweep.results[0].provenance
        assert provenance == {"backend": "thread", "shard": "0/1"}

    def test_cached_results_keep_the_computing_backend(self, tmp_path):
        plan = SweepPlan(names=["handshake"])
        run_sweep(plan, cache_dir=str(tmp_path), backend="thread")
        second = run_sweep(plan, cache_dir=str(tmp_path), backend="serial")
        assert second.results[0].cached
        assert second.results[0].provenance["backend"] == "thread"

    def test_header_records_backend_but_stable_json_does_not(self):
        sweep = run_sweep(SweepPlan(names=["handshake"]), backend="serial")
        header = sweep.to_json_dict()
        assert header["backend"] == "serial"
        stable = sweep.stable_json_dict()
        assert "backend" not in stable
        assert "provenance" not in stable["entries"][0]
