"""Tests of the persistent JSONL result cache."""

import json
import os

import pytest

from repro.runner import EntryResult, RunStore, RunStoreWarning, parse_gc_spec
from repro.runner.store import RESULTS_FILE


def make_result(name="handshake", status="ok", fingerprint="f" * 64,
                **overrides):
    data = dict(name=name, status=status, engine="symbolic",
                fingerprint=fingerprint,
                report={"stg_name": name, "method": "symbolic"},
                mismatches=[], duration=0.01)
    data.update(overrides)
    return EntryResult(**data)


class TestRoundtrip:
    def test_put_then_lookup(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.put(make_result())
        hit = store.lookup("handshake", "f" * 64)
        assert hit is not None
        assert hit.status == "ok"
        assert hit.cached  # served results are marked as cache hits
        assert hit.report["stg_name"] == "handshake"

    def test_persists_across_instances(self, tmp_path):
        RunStore(str(tmp_path)).put(make_result())
        reopened = RunStore(str(tmp_path))
        assert len(reopened) == 1
        assert reopened.lookup("handshake", "f" * 64) is not None

    def test_cached_results_are_not_rewritten(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.put(make_result())
        hit = store.lookup("handshake", "f" * 64)
        store.put(hit)  # a no-op: the original computation is on disk
        path = os.path.join(str(tmp_path), RESULTS_FILE)
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 1
        # ... and what is on disk is never marked cached.
        assert json.loads(lines[0])["cached"] is False


class TestInvalidation:
    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.put(make_result(fingerprint="a" * 64))
        assert store.lookup("handshake", "b" * 64) is None

    def test_unknown_name_is_a_miss(self, tmp_path):
        store = RunStore(str(tmp_path))
        assert store.lookup("handshake", "f" * 64) is None

    def test_errors_and_timeouts_are_never_served(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.put(make_result(name="bad", status="error", report=None,
                              error="boom"))
        store.put(make_result(name="slow", status="timeout", report=None,
                              error="timed out"))
        assert store.lookup("bad", "f" * 64) is None
        assert store.lookup("slow", "f" * 64) is None

    def test_mismatches_are_served(self, tmp_path):
        # A mismatch is a complete, reproducible verdict -- recomputing
        # it would produce the same answer.
        store = RunStore(str(tmp_path))
        store.put(make_result(status="mismatch",
                              mismatches=["csc: expected True"]))
        hit = store.lookup("handshake", "f" * 64)
        assert hit is not None and hit.status == "mismatch"

    def test_configs_coexist_per_fingerprint(self, tmp_path):
        # Two engine configs (or two content versions) of the same entry
        # share the store without evicting each other: the index key is
        # (name, fingerprint), so alternating sweeps keep hitting.
        store = RunStore(str(tmp_path))
        store.put(make_result(fingerprint="a" * 64))
        store.put(make_result(fingerprint="b" * 64))
        assert store.lookup("handshake", "a" * 64) is not None
        assert store.lookup("handshake", "b" * 64) is not None
        assert store.lookup("handshake", "c" * 64) is None


class TestRobustness:
    def test_corrupt_lines_are_skipped_with_a_warning(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.put(make_result())
        path = os.path.join(str(tmp_path), RESULTS_FILE)
        with open(path, "a") as handle:
            handle.write("{not json\n")
            handle.write('{"json but": "not a result"}\n')
        with pytest.warns(RunStoreWarning, match="corrupt result record"):
            reopened = RunStore(str(tmp_path))
        assert len(reopened) == 1
        assert reopened.skipped_lines == 2
        assert reopened.lookup("handshake", "f" * 64) is not None

    def test_truncated_trailing_line_is_survivable_and_repairable(
            self, tmp_path):
        # The exact state a killed sweep leaves behind: the final record
        # cut mid-write, no trailing newline.  Loading must keep every
        # complete record and compact() must repair the file.
        store = RunStore(str(tmp_path))
        store.put(make_result(fingerprint="a" * 64))
        store.put(make_result(fingerprint="b" * 64))
        path = os.path.join(str(tmp_path), RESULTS_FILE)
        with open(path, encoding="utf-8") as handle:
            intact = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(intact + intact.splitlines()[0][:37])
        with pytest.warns(RunStoreWarning):
            survivor = RunStore(str(tmp_path))
        assert len(survivor) == 2
        assert survivor.skipped_lines == 1
        survivor.compact()
        assert survivor.skipped_lines == 0
        reloaded = RunStore(str(tmp_path))  # clean now: no warning
        assert len(reloaded) == 2
        assert reloaded.skipped_lines == 0

    def test_compact_drops_duplicate_and_corrupt_records(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.put(make_result(fingerprint="a" * 64, duration=0.1))
        store.put(make_result(fingerprint="b" * 64))
        path = os.path.join(str(tmp_path), RESULTS_FILE)
        with open(path, "a") as handle:
            handle.write("garbage\n")
        # Re-record the same (name, fingerprint) key: latest wins.
        rewritten = RunStore(str(tmp_path))
        rewritten.put(make_result(fingerprint="a" * 64, duration=0.2))
        rewritten.compact()
        with open(path) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert len(records) == 2
        by_fingerprint = {record["fingerprint"]: record
                          for record in records}
        assert by_fingerprint["a" * 64]["duration"] == 0.2
        assert "b" * 64 in by_fingerprint


class TestMerge:
    def test_disjoint_shard_stores_combine(self, tmp_path):
        left = RunStore(str(tmp_path / "left"))
        left.put(make_result(name="a", fingerprint="a" * 64))
        right = RunStore(str(tmp_path / "right"))
        right.put(make_result(name="b", fingerprint="b" * 64))
        adopted = left.merge(right)
        assert adopted == 1
        assert len(left) == 2
        assert left.lookup("a", "a" * 64) is not None
        assert left.lookup("b", "b" * 64) is not None

    def test_merge_accepts_a_directory_path(self, tmp_path):
        RunStore(str(tmp_path / "other")).put(
            make_result(name="x", fingerprint="c" * 64))
        store = RunStore(str(tmp_path / "mine"))
        assert store.merge(str(tmp_path / "other")) == 1
        assert store.lookup("x", "c" * 64) is not None

    def test_merge_persists_to_disk(self, tmp_path):
        other = RunStore(str(tmp_path / "other"))
        other.put(make_result(name="y", fingerprint="d" * 64))
        RunStore(str(tmp_path / "mine")).merge(other)
        reopened = RunStore(str(tmp_path / "mine"))
        assert reopened.lookup("y", "d" * 64) is not None

    def test_verdict_beats_retryable_on_conflict(self, tmp_path):
        # One machine finished the entry, another crashed on it: the
        # verdict wins regardless of merge direction.
        finished = RunStore(str(tmp_path / "finished"))
        finished.put(make_result())
        crashed = RunStore(str(tmp_path / "crashed"))
        crashed.put(make_result(status="error", report=None, error="oom"))
        crashed.merge(finished)
        hit = crashed.lookup("handshake", "f" * 64)
        assert hit is not None and hit.status == "ok"
        reopened = RunStore(str(tmp_path / "finished"))
        reopened.merge(RunStore(str(tmp_path / "crashed")))
        assert reopened.lookup("handshake", "f" * 64).status == "ok"

    def test_two_retryables_keep_the_newest(self, tmp_path, monkeypatch):
        import repro.runner.store as store_module

        clock = iter([100.0, 200.0])
        monkeypatch.setattr(store_module.time, "time",
                            lambda: next(clock))
        old = RunStore(str(tmp_path / "old"))
        old.put(make_result(status="error", report=None, error="stale"))
        new = RunStore(str(tmp_path / "new"))
        new.put(make_result(status="error", report=None, error="recent"))
        old.merge(new)
        record = old._index[("handshake", "f" * 64)]
        assert record["error"] == "recent"

    def test_merge_is_idempotent(self, tmp_path):
        left = RunStore(str(tmp_path / "left"))
        left.put(make_result(name="a", fingerprint="a" * 64))
        right = RunStore(str(tmp_path / "right"))
        right.put(make_result(name="b", fingerprint="b" * 64))
        left.merge(right)
        assert left.merge(RunStore(str(tmp_path / "right"))) == 0
        assert len(left) == 2


class TestGC:
    def put_at(self, store, monkeypatch, name, stamp):
        import repro.runner.store as store_module

        monkeypatch.setattr(store_module.time, "time", lambda: stamp)
        store.put(make_result(name=name, fingerprint=f"{len(name):x}" * 64))

    def test_max_entries_keeps_the_most_recent(self, tmp_path, monkeypatch):
        store = RunStore(str(tmp_path))
        self.put_at(store, monkeypatch, "a", 100.0)
        self.put_at(store, monkeypatch, "bb", 300.0)
        self.put_at(store, monkeypatch, "ccc", 200.0)
        evicted = store.gc(max_entries=2)
        assert evicted == 1
        assert "a" not in store  # oldest stamp goes first
        assert "bb" in store and "ccc" in store

    def test_max_age_drops_old_records(self, tmp_path, monkeypatch):
        store = RunStore(str(tmp_path))
        self.put_at(store, monkeypatch, "old", 100.0)
        self.put_at(store, monkeypatch, "recent", 900.0)
        assert store.gc(max_age=500.0, now=1000.0) == 1
        assert "old" not in store and "recent" in store

    def test_gc_compacts_the_file(self, tmp_path, monkeypatch):
        store = RunStore(str(tmp_path))
        self.put_at(store, monkeypatch, "a", 1.0)
        self.put_at(store, monkeypatch, "bb", 2.0)
        store.gc(max_entries=1)
        reopened = RunStore(str(tmp_path))
        assert len(reopened) == 1 and "bb" in reopened

    def test_gc_needs_a_bound(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries and/or max_age"):
            RunStore(str(tmp_path)).gc()

    def test_pre_stamp_records_count_as_oldest(self, tmp_path, monkeypatch):
        store = RunStore(str(tmp_path))
        self.put_at(store, monkeypatch, "new", 500.0)
        record = make_result(name="legacy", fingerprint="e" * 64).to_dict()
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")  # no stored_at stamp
        reopened = RunStore(str(tmp_path))
        assert reopened.gc(max_entries=1) == 1
        assert "legacy" not in reopened and "new" in reopened


class TestGcSpecParsing:
    def test_entries(self):
        assert parse_gc_spec("entries=1000") == {"max_entries": 1000}

    def test_age_units(self):
        assert parse_gc_spec("age=90") == {"max_age": 90.0}
        assert parse_gc_spec("age=90s") == {"max_age": 90.0}
        assert parse_gc_spec("age=2m") == {"max_age": 120.0}
        assert parse_gc_spec("age=2h") == {"max_age": 7200.0}
        assert parse_gc_spec("age=7d") == {"max_age": 604800.0}

    def test_combined(self):
        assert parse_gc_spec("entries=500,age=12h") == {
            "max_entries": 500, "max_age": 43200.0}

    @pytest.mark.parametrize("bad", [
        "", "entries", "entries=many", "age=soon", "size=3", "entries=,age=1",
    ])
    def test_invalid_specs_are_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_gc_spec(bad)


class TestMergeEdgeCases:
    def test_nonexistent_source_directory_is_an_error(self, tmp_path):
        store = RunStore(str(tmp_path / "mine"))
        with pytest.raises(ValueError, match="no such run-store directory"):
            store.merge(str(tmp_path / "typo-never-created"))
        assert not (tmp_path / "typo-never-created").exists()

    def test_retryable_tie_is_idempotent(self, tmp_path, monkeypatch):
        # Equal stored_at stamps (a retried merge of the same shard
        # store): the incumbent wins and nothing is re-adopted.
        import repro.runner.store as store_module

        monkeypatch.setattr(store_module.time, "time", lambda: 500.0)
        left = RunStore(str(tmp_path / "left"))
        left.put(make_result(status="error", report=None, error="boom"))
        right = RunStore(str(tmp_path / "right"))
        right.put(make_result(status="error", report=None, error="boom"))
        assert left.merge(right) == 0
        assert left.merge(RunStore(str(tmp_path / "right"))) == 0

    def test_deferred_compaction(self, tmp_path):
        one = RunStore(str(tmp_path / "one"))
        one.put(make_result(name="a", fingerprint="a" * 64))
        two = RunStore(str(tmp_path / "two"))
        two.put(make_result(name="b", fingerprint="b" * 64))
        target = RunStore(str(tmp_path / "target"))
        target.merge(one, compact=False)
        target.merge(two, compact=False)
        assert not os.path.exists(target.path)  # nothing flushed yet
        target.compact()
        assert len(RunStore(str(tmp_path / "target"))) == 2


class TestGcSpecValidation:
    @pytest.mark.parametrize("bad", ["entries=-1", "age=-5", "age=-2d"])
    def test_negative_bounds_are_rejected_at_parse_time(self, bad):
        with pytest.raises(ValueError):
            parse_gc_spec(bad)
