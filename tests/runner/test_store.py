"""Tests of the persistent JSONL result cache."""

import json
import os

from repro.runner import EntryResult, RunStore
from repro.runner.store import RESULTS_FILE


def make_result(name="handshake", status="ok", fingerprint="f" * 64,
                **overrides):
    data = dict(name=name, status=status, engine="symbolic",
                fingerprint=fingerprint,
                report={"stg_name": name, "method": "symbolic"},
                mismatches=[], duration=0.01)
    data.update(overrides)
    return EntryResult(**data)


class TestRoundtrip:
    def test_put_then_lookup(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.put(make_result())
        hit = store.lookup("handshake", "f" * 64)
        assert hit is not None
        assert hit.status == "ok"
        assert hit.cached  # served results are marked as cache hits
        assert hit.report["stg_name"] == "handshake"

    def test_persists_across_instances(self, tmp_path):
        RunStore(str(tmp_path)).put(make_result())
        reopened = RunStore(str(tmp_path))
        assert len(reopened) == 1
        assert reopened.lookup("handshake", "f" * 64) is not None

    def test_cached_results_are_not_rewritten(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.put(make_result())
        hit = store.lookup("handshake", "f" * 64)
        store.put(hit)  # a no-op: the original computation is on disk
        path = os.path.join(str(tmp_path), RESULTS_FILE)
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 1
        # ... and what is on disk is never marked cached.
        assert json.loads(lines[0])["cached"] is False


class TestInvalidation:
    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.put(make_result(fingerprint="a" * 64))
        assert store.lookup("handshake", "b" * 64) is None

    def test_unknown_name_is_a_miss(self, tmp_path):
        store = RunStore(str(tmp_path))
        assert store.lookup("handshake", "f" * 64) is None

    def test_errors_and_timeouts_are_never_served(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.put(make_result(name="bad", status="error", report=None,
                              error="boom"))
        store.put(make_result(name="slow", status="timeout", report=None,
                              error="timed out"))
        assert store.lookup("bad", "f" * 64) is None
        assert store.lookup("slow", "f" * 64) is None

    def test_mismatches_are_served(self, tmp_path):
        # A mismatch is a complete, reproducible verdict -- recomputing
        # it would produce the same answer.
        store = RunStore(str(tmp_path))
        store.put(make_result(status="mismatch",
                              mismatches=["csc: expected True"]))
        hit = store.lookup("handshake", "f" * 64)
        assert hit is not None and hit.status == "mismatch"

    def test_configs_coexist_per_fingerprint(self, tmp_path):
        # Two engine configs (or two content versions) of the same entry
        # share the store without evicting each other: the index key is
        # (name, fingerprint), so alternating sweeps keep hitting.
        store = RunStore(str(tmp_path))
        store.put(make_result(fingerprint="a" * 64))
        store.put(make_result(fingerprint="b" * 64))
        assert store.lookup("handshake", "a" * 64) is not None
        assert store.lookup("handshake", "b" * 64) is not None
        assert store.lookup("handshake", "c" * 64) is None


class TestRobustness:
    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.put(make_result())
        path = os.path.join(str(tmp_path), RESULTS_FILE)
        with open(path, "a") as handle:
            handle.write("{not json\n")
            handle.write('{"json but": "not a result"}\n')
        reopened = RunStore(str(tmp_path))
        assert len(reopened) == 1
        assert reopened.lookup("handshake", "f" * 64) is not None

    def test_compact_drops_duplicate_and_corrupt_records(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.put(make_result(fingerprint="a" * 64, duration=0.1))
        store.put(make_result(fingerprint="b" * 64))
        path = os.path.join(str(tmp_path), RESULTS_FILE)
        with open(path, "a") as handle:
            handle.write("garbage\n")
        # Re-record the same (name, fingerprint) key: latest wins.
        rewritten = RunStore(str(tmp_path))
        rewritten.put(make_result(fingerprint="a" * 64, duration=0.2))
        rewritten.compact()
        with open(path) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert len(records) == 2
        by_fingerprint = {record["fingerprint"]: record
                          for record in records}
        assert by_fingerprint["a" * 64]["duration"] == 0.2
        assert "b" * 64 in by_fingerprint
