"""Sweep-level check batching, --profile and the --bdd-cache wiring."""

import json

import pytest

from repro import api
from repro.cli import main
from repro.runner import SweepPlan, SweepRunner
from repro.runner.worker import execute_payload


class TestCheckSelectionOnPlans:
    def test_checks_ride_every_task_and_its_payload(self):
        plan = SweepPlan(names=["handshake", "vme_read"],
                         checks=("consistency", "csc"))
        for task in plan.tasks():
            assert task.checks == ("consistency", "csc")
            assert task.to_payload()["checks"] == ["consistency", "csc"]

    def test_checks_change_the_fingerprint(self):
        full = SweepPlan(names=["handshake"]).tasks()[0]
        subset = SweepPlan(names=["handshake"],
                           checks=("consistency",)).tasks()[0]
        assert full.fingerprint != subset.fingerprint

    def test_bdd_cache_dir_does_not_change_the_fingerprint(self, tmp_path):
        base = SweepPlan(names=["handshake"]).tasks()[0]
        cached = SweepPlan(
            names=["handshake"],
            config=api.EngineConfig(bdd_cache_dir=str(tmp_path))
        ).tasks()[0]
        assert base.fingerprint == cached.fingerprint

    def test_worker_runs_only_the_selected_checks(self):
        task = SweepPlan(names=["handshake"],
                         checks=("consistency",)).tasks()[0]
        result = execute_payload(task.to_payload())
        assert result["status"] == "ok"
        verdict_names = [verdict["name"]
                         for verdict in result["report"]["verdicts"]]
        assert any("consistent" in name for name in verdict_names)
        assert not any("CSC" in name for name in verdict_names)
        assert result["report"]["csc"] is None

    def test_subset_sweep_still_validates_checked_metadata(self):
        plan = SweepPlan(names=["handshake", "csc_violation"],
                         checks=("consistency", "csc"))
        sweep = SweepRunner(plan).run()
        assert all(result.status == "ok" for result in sweep)


class TestCliFlags:
    def test_batch_check_checks_subset(self, capsys):
        exit_code = main(["batch-check", "handshake", "vme_read",
                          "--checks", "consistency,csc"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "2 entries, 2 matching" in output

    def test_batch_check_unknown_check_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "handshake", "--checks", "cs"])
        assert excinfo.value.code == 2
        assert "csc" in capsys.readouterr().err  # did-you-mean

    def test_profile_prints_slowest_entries(self, capsys):
        exit_code = main(["batch-check", "handshake", "vme_read",
                          "mutex_element", "--profile", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "profile: 2 slowest entries" in output
        assert "traversal=" in output
        assert "hit_rate=" in output

    def test_profile_works_on_every_backend(self, capsys):
        for backend in ("serial", "thread"):
            exit_code = main(["batch-check", "handshake",
                              "--backend", backend, "--profile", "1"])
            assert exit_code == 0
            assert "profile: 1 slowest" in capsys.readouterr().out

    def test_bdd_cache_flag_populates_the_store(self, tmp_path, capsys):
        store = tmp_path / "bdd"
        exit_code = main(["batch-check", "handshake",
                          "--bdd-cache", str(store)])
        assert exit_code == 0
        assert (store / "handshake.bdd").exists()

    def test_single_check_mode_accepts_bdd_cache(self, tmp_path, capsys):
        store = tmp_path / "bdd"
        assert main(["handshake", "--bdd-cache", str(store)]) == 0
        assert (store / "handshake.bdd").exists()
        # Second run hits the store; the summary must be unchanged.
        first = capsys.readouterr().out
        assert main(["handshake", "--bdd-cache", str(store)]) == 0
        second = capsys.readouterr().out
        strip = [line for line in first.splitlines() if "time" not in line]
        strip2 = [line for line in second.splitlines() if "time" not in line]
        assert strip == strip2


class TestStableJsonStripsVolatileStats:
    def test_stable_json_is_identical_with_and_without_bdd_cache(
            self, tmp_path, capsys):
        def stable(arguments):
            path = tmp_path / "out.json"
            assert main(["batch-check", "handshake", "vme_read",
                         "--stable-json", str(path), *arguments]) == 0
            capsys.readouterr()
            return path.read_bytes()

        store = str(tmp_path / "bdd")
        plain = stable([])
        cold = stable(["--bdd-cache", store])
        warm = stable(["--bdd-cache", store])
        assert plain == cold == warm

    def test_volatile_traversal_fields_present_in_json_absent_in_stable(
            self, tmp_path, capsys):
        json_path = tmp_path / "full.json"
        stable_path = tmp_path / "stable.json"
        assert main(["batch-check", "handshake",
                     "--json", str(json_path),
                     "--stable-json", str(stable_path)]) == 0
        capsys.readouterr()
        full = json.loads(json_path.read_text())
        stable = json.loads(stable_path.read_text())
        traversal = full["entries"][0]["traversal"]
        assert "wall_time_s" in traversal
        assert "peak_live_nodes" in traversal
        assert "cache_hits" in traversal and "cache_lookups" in traversal
        stable_traversal = stable["entries"][0]["traversal"]
        for volatile in ("wall_time_s", "peak_live_nodes",
                         "cache_hits", "cache_lookups",
                         "iterations", "images_computed", "peak_nodes"):
            # Path-dependent counters (delta warm-starts take a
            # different path to the same fixpoint) stay out of the
            # stable view.
            assert volatile not in stable_traversal
        assert stable_traversal["num_states"] == traversal["num_states"]
        assert stable_traversal["final_nodes"] == traversal["final_nodes"]
