"""Tests of sweep planning: task expansion, sharding, fingerprints."""

import pytest

from repro import corpus
from repro.api import ApiError, EngineConfig
from repro.runner import PlanError, ShardSpec, SweepPlan, parse_family_spec


class TestShardSpec:
    def test_parse(self):
        spec = ShardSpec.parse("3/8")
        assert spec.index == 3 and spec.count == 8

    def test_default_is_the_whole_sweep(self):
        spec = ShardSpec()
        assert all(spec.owns(position) for position in range(10))

    @pytest.mark.parametrize("text", ["", "3", "3/", "/8", "a/b", "3/0",
                                      "8/8", "-1/4"])
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(PlanError):
            ShardSpec.parse(text)

    def test_str_roundtrip(self):
        assert str(ShardSpec.parse("2/5")) == "2/5"


class TestShardPartition:
    """The core sharding contract: disjoint and jointly covering."""

    @pytest.mark.parametrize("count", [1, 2, 4, 8])
    def test_shards_partition_the_corpus(self, count):
        full = [task.name for task in SweepPlan().tasks()]
        shard_names = []
        for index in range(count):
            plan = SweepPlan(shard=ShardSpec(index, count))
            shard_names.append([task.name for task in plan.shard_tasks()])
        combined = [name for names in shard_names for name in names]
        # Disjoint: no name appears in two shards.
        assert len(combined) == len(set(combined))
        # Covering: the union is exactly the unsharded sweep.
        assert sorted(combined) == sorted(full)

    def test_round_robin_interleaves(self):
        full = [task.name for task in SweepPlan().tasks()]
        plan = SweepPlan(shard=ShardSpec(1, 4))
        assert [task.name for task in plan.shard_tasks()] == full[1::4]


class TestTaskExpansion:
    def test_default_plan_covers_the_corpus_in_order(self):
        assert [task.name for task in SweepPlan().tasks()] == corpus.names()

    def test_selection_preserves_given_order(self):
        plan = SweepPlan(names=["vme_read", "handshake"])
        assert [task.name for task in plan.tasks()] == \
            ["vme_read", "handshake"]

    def test_tasks_carry_registry_data(self):
        task = SweepPlan(names=["mutex_element"]).tasks()[0]
        assert task.config.arbitration_places == ("p_me",)
        assert task.g_text == corpus.g_text("mutex_element")
        assert task.expected["csc"] is True
        assert task.expected["classification"] == "gate-implementable"

    def test_family_instances_appended(self):
        plan = SweepPlan(names=["handshake"],
                         families=[("muller_pipeline", [2, 3])])
        names = [task.name for task in plan.tasks()]
        assert names == ["handshake", "muller_pipeline@2",
                         "muller_pipeline@3"]

    def test_unknown_family_is_a_plan_error(self):
        with pytest.raises(PlanError, match="muller_pipeline"):
            SweepPlan(families=[("no_such_family", [1])]).tasks()

    def test_out_of_range_scale_is_a_plan_error(self):
        with pytest.raises(PlanError, match="rejected scale 0"):
            SweepPlan(families=[("muller_pipeline", [0])]).tasks()

    def test_expansion_is_memoised_but_copied(self):
        plan = SweepPlan(names=["handshake", "vme_read"])
        first = plan.tasks()
        first.pop()  # callers get a copy; mutating it is harmless
        assert [task.name for task in plan.tasks()] == \
            ["handshake", "vme_read"]

    def test_invalid_engine_rejected(self):
        # Engine validation happens in EngineConfig (with a did-you-mean
        # suggestion), so a plan can never carry an unknown engine.
        with pytest.raises(ApiError, match="symbolic"):
            SweepPlan(config=EngineConfig(engine="symbolc"))

    def test_invalid_jobs_rejected(self):
        with pytest.raises(PlanError):
            SweepPlan(jobs=0)


class TestFamilySpecParsing:
    def test_single_scale(self):
        assert parse_family_spec("muller_pipeline:6") == \
            ("muller_pipeline", [6])

    def test_range(self):
        assert parse_family_spec("random_ring:3-6") == \
            ("random_ring", [3, 4, 5, 6])

    @pytest.mark.parametrize("text", ["random_ring", "random_ring:",
                                      ":3-6", "random_ring:a-b",
                                      "random_ring:6-3"])
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(PlanError):
            parse_family_spec(text)


class TestFingerprints:
    def test_stable_across_processes(self):
        first = SweepPlan(names=["handshake"]).tasks()[0]
        second = SweepPlan(names=["handshake"]).tasks()[0]
        assert first.fingerprint == second.fingerprint

    def test_sensitive_to_content_and_engine_config(self):
        base = SweepPlan(names=["handshake"]).tasks()[0]
        changed_text = SweepPlan(names=["vme_read"]).tasks()[0]
        explicit = SweepPlan(
            names=["handshake"],
            config=EngineConfig(engine="explicit")).tasks()[0]
        ordering = SweepPlan(
            names=["handshake"],
            config=EngineConfig(ordering="declaration")).tasks()[0]
        fingerprints = {base.fingerprint, changed_text.fingerprint,
                        explicit.fingerprint, ordering.fingerprint}
        assert len(fingerprints) == 4

    def test_execution_knobs_do_not_invalidate(self):
        base = SweepPlan(names=["handshake"]).tasks()[0]
        with_timeout = SweepPlan(
            names=["handshake"],
            config=EngineConfig(timeout=5.0)).tasks()[0]
        assert base.fingerprint == with_timeout.fingerprint

    def test_fingerprint_material_is_the_config_dict(self):
        # The acceptance contract of the api redesign: the cache key is
        # computed from EngineConfig.to_dict(), so any semantic config
        # change (and nothing else) invalidates cached results.
        import hashlib
        import json

        from repro.api.config import EXECUTION_KNOB_FIELDS
        from repro.runner.plan import SCHEMA_VERSION, normalise_expected

        task = SweepPlan(names=["handshake"]).tasks()[0]
        config = task.config.to_dict()
        for knob in EXECUTION_KNOB_FIELDS:
            config.pop(knob)
        material = json.dumps(
            {"schema": SCHEMA_VERSION, "g_text": task.g_text,
             "config": config,
             "checks": None,
             "expected": normalise_expected(task.expected)},
            sort_keys=True)
        expected = hashlib.sha256(material.encode("utf-8")).hexdigest()
        assert task.fingerprint == expected
