"""Cooperative deadlines: the ``deadline``/``timeout`` execution knobs
enforced inside the engines, so *every* backend -- not just the
preemptive ``process`` pool -- yields ``timeout`` records."""

import time

import pytest

from repro.api import EngineConfig
from repro.runner import SweepPlan, SweepRunner, SweepTask
from repro.utils.timing import (
    DeadlineExceeded,
    check_deadline,
    deadline_from_timeout,
)


class TestCheckDeadline:
    def test_no_deadline_is_a_no_op(self):
        check_deadline(None, "anywhere")

    def test_future_deadline_passes(self):
        check_deadline(time.monotonic() + 60.0, "anywhere")

    def test_past_deadline_raises_with_the_context(self):
        with pytest.raises(DeadlineExceeded) as info:
            check_deadline(time.monotonic() - 1.0, "symbolic traversal")
        assert "symbolic traversal" in str(info.value)

    def test_deadline_from_timeout_is_absolute_monotonic(self):
        before = time.monotonic()
        deadline = deadline_from_timeout(5.0)
        assert before + 4.5 < deadline < time.monotonic() + 5.5


class SlowPlan(SweepPlan):
    """A plan whose first task sleeps past its cooperative budget."""

    def __init__(self, config, **kwargs):
        super().__init__(names=["handshake"], **kwargs)
        self._slow_config = config

    def tasks(self):
        slow = SweepTask(name="slow", g_text="", delay=0.3,
                         config=self._slow_config)
        return [slow] + super().tasks()


#: The backends with no preemptive kill of their own: they rely
#: entirely on the cooperative in-engine deadline checks.
COOPERATIVE_BACKENDS = ("serial", "thread", "asyncio")


class TestCooperativeTimeouts:
    @pytest.mark.parametrize("backend", COOPERATIVE_BACKENDS)
    def test_timeout_knob_times_out_on_cooperative_backends(
            self, backend):
        plan = SlowPlan(EngineConfig(timeout=0.05), jobs=2,
                        backend=backend)
        sweep = SweepRunner(plan).run()
        by_name = {result.name: result for result in sweep}
        assert by_name["slow"].status == "timeout"
        assert "DeadlineExceeded" in by_name["slow"].error
        assert by_name["handshake"].status == "ok"

    @pytest.mark.parametrize("engine", ["symbolic", "explicit"])
    def test_both_engines_check_the_deadline(self, engine):
        plan = SlowPlan(EngineConfig(engine=engine, timeout=0.05),
                        backend="serial")
        sweep = SweepRunner(plan).run()
        by_name = {result.name: result for result in sweep}
        assert by_name["slow"].status == "timeout"

    def test_explicit_deadline_knob_overrides_timeout_derivation(self):
        # An already-expired absolute deadline: the entry times out on
        # its first traversal iteration without any sleeping.
        config = EngineConfig(deadline=time.monotonic() - 1.0)
        plan = SweepPlan(names=["handshake"], backend="serial",
                         config=config)
        sweep = SweepRunner(plan).run()
        assert sweep.results[0].status == "timeout"

    def test_generous_deadline_changes_nothing(self):
        config = EngineConfig(deadline=time.monotonic() + 300.0)
        reference = SweepRunner(SweepPlan(names=["handshake"],
                                          backend="serial")).run()
        sweep = SweepRunner(SweepPlan(names=["handshake"],
                                      backend="serial",
                                      config=config)).run()
        assert sweep.results[0].status == "ok"
        assert sweep.results[0].stable_dict() == \
            reference.results[0].stable_dict()


class TestDeadlineKnobSemantics:
    def test_deadline_and_fault_plan_are_execution_knobs(self):
        from repro.api.config import EXECUTION_KNOB_FIELDS

        assert "deadline" in EXECUTION_KNOB_FIELDS
        assert "fault_plan" in EXECUTION_KNOB_FIELDS
        base = SweepPlan(names=["handshake"]).tasks()[0]
        knobbed = SweepPlan(
            names=["handshake"],
            config=EngineConfig(deadline=time.monotonic() + 60.0,
                                fault_plan="crash=0.5,seed=1")
        ).tasks()[0]
        assert base.fingerprint == knobbed.fingerprint

    def test_bad_deadline_and_fault_plan_are_config_errors(self):
        from repro.api import ApiError

        with pytest.raises(ApiError):
            EngineConfig(deadline=0.0)
        with pytest.raises(ApiError):
            EngineConfig(fault_plan="bogus")

    def test_knobs_round_trip_through_the_config_dict(self):
        config = EngineConfig(deadline=12345.0,
                              fault_plan="hang=0.25,seed=3")
        replayed = EngineConfig.from_dict(config.to_dict())
        assert replayed.deadline == 12345.0
        assert replayed.fault_plan == "hang=0.25,seed=3"
        stripped = config.without_execution_knobs()
        assert stripped.deadline is None
        assert stripped.fault_plan is None
