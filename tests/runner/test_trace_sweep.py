"""Sweep tracing: one JSONL trace per entry keyed by fingerprint,
provenance stamped by the runner, and strict trace-on/off parity of the
stable results."""

import json
import os

import pytest

from repro.api import EngineConfig
from repro.obs.report import trace_meta
from repro.obs.sinks import FINGERPRINT_PREFIX, read_trace_records
from repro.runner import SweepPlan, run_sweep

SELECTION = ["handshake", "vme_read", "inconsistent"]


def traced_plan(trace_dir, backend=None, jobs=1):
    return SweepPlan(names=SELECTION, jobs=jobs, backend=backend,
                     config=EngineConfig(trace_dir=str(trace_dir)))


def stable_json(sweep):
    return json.dumps(sweep.stable_json_dict(), sort_keys=True)


class TestPerEntryTraceFiles:
    def test_one_file_per_entry_keyed_by_fingerprint(self, tmp_path):
        sweep = run_sweep(traced_plan(tmp_path))
        files = sorted(os.listdir(tmp_path))
        assert len(files) == len(SELECTION)
        for result in sweep:
            prefix = result.fingerprint[:FINGERPRINT_PREFIX]
            expected = f"{result.name}-{prefix}.jsonl"
            assert expected in files

    def test_traces_carry_entry_spans_and_meta(self, tmp_path):
        sweep = run_sweep(traced_plan(tmp_path))
        for result in sweep:
            path = tmp_path / (f"{result.name}-"
                               f"{result.fingerprint[:FINGERPRINT_PREFIX]}"
                               f".jsonl")
            records, skipped = read_trace_records(str(path))
            assert skipped == 0
            meta = trace_meta(records)
            assert meta["entry"] == result.name
            assert meta["fingerprint"] == result.fingerprint
            names = {r["name"] for r in records if r["type"] == "span"}
            assert "entry" in names

    def test_runner_stamps_backend_and_shard_provenance(self, tmp_path):
        run_sweep(traced_plan(tmp_path, backend="serial"))
        path = tmp_path / sorted(os.listdir(tmp_path))[0]
        meta = trace_meta(read_trace_records(str(path))[0])
        assert meta["provenance"]["backend"] == "serial"
        assert meta["provenance"]["shard"] == "0/1"

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backends_write_disjoint_files(self, tmp_path,
                                                    backend):
        sweep = run_sweep(traced_plan(tmp_path, backend=backend, jobs=2))
        assert len(os.listdir(tmp_path)) == len(SELECTION)
        assert sweep.succeeded


class TestTraceParity:
    def test_stable_json_identical_with_and_without_tracing(self,
                                                            tmp_path):
        untraced = run_sweep(SweepPlan(names=SELECTION))
        traced = run_sweep(traced_plan(tmp_path))
        assert stable_json(untraced) == stable_json(traced)

    def test_trace_dir_is_not_fingerprint_material(self, tmp_path):
        plain = SweepPlan(names=SELECTION).tasks()
        traced = traced_plan(tmp_path).tasks()
        assert [t.fingerprint for t in plain] == \
            [t.fingerprint for t in traced]

    def test_traced_sweep_reuses_the_untraced_cache(self, tmp_path):
        store_dir = tmp_path / "store"
        trace_dir = tmp_path / "traces"
        from repro.runner import RunStore, SweepRunner

        first = SweepRunner(SweepPlan(names=SELECTION),
                            store=RunStore(str(store_dir))).run()
        assert first.cached == 0
        second = SweepRunner(traced_plan(trace_dir),
                             store=RunStore(str(store_dir))).run()
        assert second.cached == len(SELECTION)
        assert stable_json(first) == stable_json(second)
