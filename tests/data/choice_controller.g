.model choice_controller
.inputs r1 r2
.outputs g
.graph
p0 r1+ r2+
r1+ g+
g+ r1-
r1- g-
g- p0
r2+ g+/2
g+/2 r2-
r2- g-/2
g-/2 p0
.marking { p0 }
.initial_values g=0 r1=0 r2=0
.end
