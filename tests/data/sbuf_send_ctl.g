.model sbuf_send_ctl
.inputs req done
.outputs ack latch
.graph
req+ latch+
latch+ done+
done+ ack+
ack+ req-
req- latch-
latch- done-
done- ack-
ack- req+
.marking { <ack-,req+> }
.initial_values ack=0 done=0 latch=0 req=0
.end
