.model broken_double_rise
.inputs a
.outputs b
.graph
b+ a+
a+ b+/2
b+/2 b-
b- a-
a- b+
.marking { <a-,b+> }
.initial_values a=0 b=0
.end
