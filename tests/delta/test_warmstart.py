"""Delta warm-starts end to end through the facade (repro.delta.warmstart).

Every tier is driven the way users reach it -- ``api.run(..., base=...)``
against a populated BDD store -- and observed through the report's
``delta`` provenance block and the store's delta counters.
"""

import pytest

from repro import api
from repro.cache import BDDStore
from repro.delta import TIER_COLD, TIER_PREWARM, TIER_SEED
from repro.delta.warmstart import TIER_HIT


@pytest.fixture
def config(tmp_path):
    return api.EngineConfig(bdd_cache_dir=str(tmp_path / "bdd-store"))


@pytest.fixture
def store(config):
    return BDDStore.shared(config.bdd_cache_dir)


@pytest.fixture
def populated(base_stg, config):
    """Run the base cold so the store holds its reachable set."""
    api.run(base_stg, config)
    return base_stg


class TestSeedTier:
    def test_closed_edit_seeds_and_matches_cold(self, populated, config,
                                                store, edit_closed):
        cold = api.run(edit_closed, api.EngineConfig())
        warm = api.run(edit_closed, config, base=populated)
        assert warm.report.delta["tier"] == TIER_SEED
        assert warm.report.delta["closed"] is True
        assert store.delta_seeds == 1
        assert warm.report.num_states == cold.report.num_states
        assert warm.report.csc == cold.report.csc
        assert warm.report.consistent == cold.report.consistent

    def test_open_edit_seeds_full_sweep(self, populated, config, store,
                                        edit_open):
        warm = api.run(edit_open, config, base=populated)
        assert warm.report.delta["tier"] == TIER_SEED
        assert warm.report.delta["closed"] is False
        assert store.delta_seeds == 1

    def test_provenance_names_the_base_and_summary(self, populated,
                                                   config, edit_closed):
        warm = api.run(edit_closed, config, base=populated)
        delta = warm.report.delta
        assert len(delta["base"]) == 64
        assert delta["summary"]["added_signals"] == 1
        assert delta["reasons"]
        assert "delta: tier seed" in warm.report.summary()


class TestHitTier:
    def test_model_rename_adopts_the_stored_set(self, populated, config,
                                                store, copy_stg):
        renamed = copy_stg(populated, name="renamed")
        cold = api.run(renamed, api.EngineConfig())
        warm = api.run(renamed, config, base=populated)
        assert warm.report.delta["tier"] == TIER_HIT
        assert store.delta_hits == 1
        assert warm.report.num_states == cold.report.num_states
        assert warm.report.csc == cold.report.csc
        # No traversal at all: the stored set was adopted wholesale.
        assert warm.traversal["iterations"] == \
            api.run(populated, config).traversal["iterations"]


class TestPrewarmTier:
    def test_new_arc_prewarms(self, populated, config, store,
                              edit_new_arc):
        warm = api.run(edit_new_arc, config, base=populated)
        assert warm.report.delta["tier"] == TIER_PREWARM
        assert store.delta_prewarms == 1
        assert store.delta_seeds == 0


class TestColdTier:
    def test_removed_arc_falls_back_cold(self, base_with_cycle, config,
                                         store, edit_removed_arc):
        api.run(base_with_cycle, config)
        warm = api.run(edit_removed_arc, config, base=base_with_cycle)
        assert warm.report.delta["tier"] == TIER_COLD
        assert store.delta_colds == 1
        assert any("removed arc" in reason
                   for reason in warm.report.delta["reasons"])

    def test_unknown_base_fingerprint_is_cold(self, config, store,
                                              edit_closed):
        warm = api.run(edit_closed, config, base="0" * 64)
        assert warm.report.delta["tier"] == TIER_COLD
        assert warm.report.delta["reasons"] == \
            ["no stored entry matches the base fingerprint"]


class TestFacadeValidation:
    def test_base_requires_a_cache_dir(self, base_stg):
        with pytest.raises(api.ApiError, match="bdd_cache_dir"):
            api.run(base_stg, api.EngineConfig(), base="0" * 64)

    def test_base_requires_the_symbolic_engine(self, base_stg, tmp_path):
        config = api.EngineConfig(engine="explicit",
                                  bdd_cache_dir=str(tmp_path))
        with pytest.raises(api.ApiError, match="symbolic"):
            api.run(base_stg, config, base="0" * 64)

    def test_unknown_base_name_is_an_api_error(self, base_stg, config):
        with pytest.raises(api.ApiError, match="neither a reachability"):
            api.run(base_stg, config, base="no-such-entry")

    def test_bad_fingerprint_config_is_rejected(self):
        with pytest.raises(api.ApiError, match="base_fingerprint"):
            api.EngineConfig(base_fingerprint="not-hex")
