"""Shared material for the incremental-verification (repro.delta) tests.

The canonical editor-loop scenario: a Muller-pipeline base specification
plus small programmatic edits of every reuse tier -- a disconnected
probe cycle (seed, closed), the same cycle reading an existing place
(seed, full sweep), an arc between existing nodes (prewarm) and
removals/renames (cold).
"""

import pytest

from repro.stg.generators import build_example
from repro.stg.parser import parse_g
from repro.stg.stg import SignalKind
from repro.stg.writer import to_g_string


def copy_stg(stg, name=None):
    """A deep copy via the canonical text round-trip.

    ``name`` rewrites the ``.model`` line (``parse_g``'s own ``name=``
    is only a fallback for texts without one), so the copy really is a
    differently-named model with different canonical text.
    """
    text = to_g_string(stg)
    if name is not None:
        text = "\n".join(f".model {name}"
                         if line.startswith(".model") else line
                         for line in text.splitlines()) + "\n"
    return parse_g(text, name=name or stg.name)


def add_probe_cycle(stg, signal="xprobe", skip_arc=None,
                    read_place=None):
    """Add a two-phase cycle of a fresh internal signal.

    ``skip_arc`` omits one of the cycle's arcs (used to build a base
    that has strictly *more* structure than the edit, i.e. a removal
    delta).  ``read_place`` additionally self-loops the rising
    transition on an existing place -- marking-preserving, so the net
    stays safe, but the added transition's environment now touches the
    base net (seed tier, not closed).
    """
    rising, falling = f"{signal}+", f"{signal}-"
    p0, p1 = f"p_{signal}0", f"p_{signal}1"
    stg.add_signal(signal, SignalKind.INTERNAL, initial_value=False)
    stg.add_place(p0, tokens=1)
    stg.add_place(p1)
    stg.add_transition(rising)
    stg.add_transition(falling)
    for arc in ((p0, rising), (rising, p1), (p1, falling), (falling, p0)):
        if arc != skip_arc:
            stg.add_arc(*arc)
    if read_place is not None:
        stg.add_arc(read_place, rising)
        stg.add_arc(rising, read_place)
    return stg


@pytest.fixture(name="copy_stg")
def copy_stg_fixture():
    return copy_stg


@pytest.fixture(name="add_probe_cycle")
def add_probe_cycle_fixture():
    return add_probe_cycle


@pytest.fixture
def base_stg():
    return build_example("muller_pipeline", 4)


@pytest.fixture
def edit_closed(base_stg):
    """Seed tier, closed: the probe cycle is disconnected from the base."""
    return add_probe_cycle(copy_stg(base_stg, name="edited"))


@pytest.fixture
def edit_open(base_stg):
    """Seed tier, not closed: the probe reads an existing place."""
    place = sorted(base_stg.places)[0]
    return add_probe_cycle(copy_stg(base_stg, name="edited"),
                           read_place=place)


@pytest.fixture
def edit_new_arc(base_stg):
    """Prewarm tier: an arc between two *existing* nodes.

    A marking-preserving self-loop of an existing transition on an
    existing place it did not touch before -- additive, but it changes
    that transition's environment.
    """
    edited = copy_stg(base_stg, name="edited")
    transition = sorted(edited.transitions)[0]
    touched = (set(edited.net.preset_of_transition(transition))
               | set(edited.net.postset_of_transition(transition)))
    marking = edited.initial_marking()
    place = sorted(place for place in edited.places
                   if place not in touched and marking.get(place, 0))[0]
    edited.add_arc(place, transition)
    edited.add_arc(transition, place)
    return edited


@pytest.fixture
def edit_removed_arc(base_stg):
    """Cold tier: the "edit" removes an arc (base has more structure)."""
    return add_probe_cycle(copy_stg(base_stg, name="edited"),
                           skip_arc=(f"p_xprobe1", f"xprobe-"))


@pytest.fixture
def base_with_cycle(base_stg):
    """The base that edit_removed_arc / edit_renamed diff against."""
    return add_probe_cycle(copy_stg(base_stg, name="base"))


@pytest.fixture
def edit_renamed(base_stg):
    """Cold tier: the probe signal is renamed (a removal plus an add)."""
    return add_probe_cycle(copy_stg(base_stg, name="edited"),
                           signal="yprobe")
