"""The monotone-compatibility classifier (repro.delta.classify)."""

from repro.delta import (
    TIER_COLD,
    TIER_PREWARM,
    TIER_SEED,
    TIERS,
    DeltaClassification,
    classify_delta,
    diff_stg,
)


class TestSeedTier:
    def test_disconnected_addition_is_seed_closed(self, base_stg,
                                                  edit_closed):
        c = classify_delta(diff_stg(base_stg, edit_closed), edit_closed)
        assert c.tier == TIER_SEED
        assert c.closed
        assert any("monotone" in reason for reason in c.reasons)

    def test_reading_an_existing_place_defeats_closed(self, base_stg,
                                                      edit_open):
        c = classify_delta(diff_stg(base_stg, edit_open), edit_open)
        assert c.tier == TIER_SEED
        assert not c.closed
        assert any("full sweep" in reason for reason in c.reasons)

    def test_existing_signal_on_added_transition_defeats_closed(
            self, base_stg, copy_stg):
        # A new transition of an *existing* signal toggles that signal's
        # variable: old transitions can then reach codes the seed never
        # saw, so the sweep must stay full-width even though the
        # transition's place environment is entirely new.
        signal = sorted(base_stg.signals)[0]
        edited = copy_stg(base_stg, name="edited")
        edited.add_place("p_x0", tokens=1)
        edited.add_place("p_x1")
        edited.add_transition(f"{signal}+/9")
        edited.add_arc("p_x0", f"{signal}+/9")
        edited.add_arc(f"{signal}+/9", "p_x1")
        c = classify_delta(diff_stg(base_stg, edited), edited)
        assert c.tier == TIER_SEED
        assert not c.closed

    def test_identical_is_seed_closed(self, base_stg):
        c = classify_delta(diff_stg(base_stg, base_stg), base_stg)
        assert c.tier == TIER_SEED
        assert c.closed


class TestPrewarmTier:
    def test_arc_between_existing_nodes_is_prewarm(self, base_stg,
                                                   edit_new_arc):
        c = classify_delta(diff_stg(base_stg, edit_new_arc), edit_new_arc)
        assert c.tier == TIER_PREWARM
        assert not c.closed
        assert any("changes existing transition" in reason
                   for reason in c.reasons)


class TestColdTier:
    def test_removed_arc_is_cold(self, base_with_cycle, edit_removed_arc):
        c = classify_delta(diff_stg(base_with_cycle, edit_removed_arc),
                           edit_removed_arc)
        assert c.tier == TIER_COLD
        assert any("removed arc" in reason for reason in c.reasons)

    def test_signal_rename_is_cold(self, base_with_cycle, edit_renamed):
        c = classify_delta(diff_stg(base_with_cycle, edit_renamed),
                           edit_renamed)
        assert c.tier == TIER_COLD
        assert any("removed signal" in reason for reason in c.reasons)

    def test_changed_initial_value_is_cold(self, base_stg, copy_stg):
        edited = copy_stg(base_stg)
        signal = sorted(base_stg.signals)[0]
        edited.set_initial_values(dict(
            edited.initial_values,
            **{signal: not bool(edited.initial_values.get(signal))}))
        c = classify_delta(diff_stg(base_stg, edited), edited)
        assert c.tier == TIER_COLD


class TestSerialisation:
    def test_tiers_catalogue(self):
        assert TIERS == (TIER_SEED, TIER_PREWARM, TIER_COLD)

    def test_round_trip(self, base_stg, edit_closed):
        c = classify_delta(diff_stg(base_stg, edit_closed), edit_closed)
        assert DeltaClassification.from_dict(c.to_dict()) == c
