"""The delta-parity contract: a warm-started re-check's *stable* JSON is
byte-identical to a cold run's, for every edit tier and every executor
backend.

This is the acceptance bar of the incremental-verification redesign: the
base entry may only change *how fast* the fixpoint is reached, never
what it is.  Each scenario runs the edited specification twice through
the real worker path (``SweepTask`` -> backend -> ``execute_payload``)
-- once cold, once with ``base_fingerprint`` pointing at the populated
store -- and byte-compares ``EntryResult.stable_dict()``.
"""

import json

import pytest

from repro import api
from repro.cache import reachable_fingerprint
from repro.runner import backends
from repro.runner.plan import SweepTask
from repro.runner.results import EntryResult
from repro.stg.writer import to_g_string

BUILTINS = ("process", "thread", "serial", "asyncio")

#: Edit fixtures by expected reuse tier (the removed-arc and renamed
#: edits diff against base_with_cycle; the rest against base_stg).
SCENARIOS = (
    ("edit_closed", "base_stg", "seed"),
    ("edit_open", "base_stg", "seed"),
    ("edit_new_arc", "base_stg", "prewarm"),
    ("edit_removed_arc", "base_with_cycle", "cold"),
    ("edit_renamed", "base_with_cycle", "cold"),
)


def run_task(task):
    """One task through a real backend, as the sweep fabric would."""
    results = {}
    backend = backends.get("serial")
    backend.execute([(0, task)], 1, lambda pos, res: results.update(
        {pos: res}))
    return results[0]


def stable(result: EntryResult) -> str:
    return json.dumps(result.stable_dict(), sort_keys=True)


@pytest.mark.parametrize("edit_name,base_name,tier", SCENARIOS)
def test_every_tier_matches_cold_byte_for_byte(edit_name, base_name,
                                               tier, request, tmp_path):
    base = request.getfixturevalue(base_name)
    edited = request.getfixturevalue(edit_name)
    cache = str(tmp_path / "bdd-store")
    config = api.EngineConfig(bdd_cache_dir=cache)
    api.run(base, config)  # populate the store with the base entry

    fingerprint = reachable_fingerprint(to_g_string(base), config)
    g_text = to_g_string(edited)
    cold_task = SweepTask(name="edited", g_text=g_text,
                          config=api.EngineConfig())
    delta_task = SweepTask(name="edited", g_text=g_text,
                           config=api.EngineConfig(
                               bdd_cache_dir=cache,
                               base_fingerprint=fingerprint))
    # base_fingerprint is an execution knob: same task content.
    assert cold_task.fingerprint == delta_task.fingerprint

    cold = run_task(cold_task)
    delta = run_task(delta_task)
    assert cold.status == "ok"
    assert delta.status == "ok"
    assert stable(delta) == stable(cold)
    # Not vacuous: the classifier really applied the expected tier.
    assert delta.report["delta"]["tier"] == tier
    assert cold.report["delta"] is None


@pytest.mark.parametrize("backend", BUILTINS)
def test_seed_parity_on_every_backend(backend, base_stg, edit_closed,
                                      tmp_path):
    cache = str(tmp_path / "bdd-store")
    config = api.EngineConfig(bdd_cache_dir=cache)
    api.run(base_stg, config)
    fingerprint = reachable_fingerprint(to_g_string(base_stg), config)
    g_text = to_g_string(edit_closed)

    cold = run_task(SweepTask(name="edited", g_text=g_text,
                              config=api.EngineConfig()))
    results = {}
    backends.get(backend).execute(
        [(0, SweepTask(name="edited", g_text=g_text,
                       config=api.EngineConfig(
                           bdd_cache_dir=cache,
                           base_fingerprint=fingerprint)))],
        1, lambda pos, res: results.update({pos: res}))
    delta = results[0]
    assert delta.status == "ok"
    assert stable(delta) == stable(cold)
    assert delta.report["delta"]["tier"] == "seed"


def test_volatile_counters_leave_the_stable_view(base_stg, edit_closed,
                                                 tmp_path):
    """The seeded traversal takes fewer iterations -- which is exactly
    why those counters are volatile and the stable views still match."""
    cache = str(tmp_path / "bdd-store")
    config = api.EngineConfig(bdd_cache_dir=cache)
    api.run(base_stg, config)
    fingerprint = reachable_fingerprint(to_g_string(base_stg), config)
    g_text = to_g_string(edit_closed)

    cold = run_task(SweepTask(name="edited", g_text=g_text,
                              config=api.EngineConfig()))
    delta = run_task(SweepTask(name="edited", g_text=g_text,
                               config=api.EngineConfig(
                                   bdd_cache_dir=cache,
                                   base_fingerprint=fingerprint)))
    assert delta.traversal["iterations"] < cold.traversal["iterations"]
    for volatile in ("iterations", "images_computed", "peak_nodes"):
        assert volatile not in delta.stable_dict()["traversal"]
    assert delta.stable_dict()["report"]["delta"] is None
    assert delta.stable_dict()["report"]["bdd_peak_nodes"] is None
    # The canonical fixpoint fields stay, and agree.
    for stable_field in ("num_states", "final_nodes", "num_variables"):
        assert delta.traversal[stable_field] == \
            cold.traversal[stable_field]
