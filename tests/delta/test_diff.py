"""Structural diffing (repro.delta.diff): field coverage, determinism,
round-trip."""

from repro.delta import STGDelta, diff_stg
from repro.stg.parser import parse_g
from repro.stg.writer import to_g_string


class TestIdentity:
    def test_self_diff_is_identical(self, base_stg):
        delta = diff_stg(base_stg, base_stg)
        assert delta.identical
        assert delta.additive
        assert delta == STGDelta()

    def test_model_rename_is_not_an_edit(self, base_stg, copy_stg):
        renamed = copy_stg(base_stg, name="totally-different")
        assert diff_stg(base_stg, renamed).identical

    def test_text_round_trip_is_identical(self, base_stg, copy_stg):
        assert diff_stg(base_stg, copy_stg(base_stg)).identical


class TestAdditions:
    def test_probe_cycle_reports_every_added_element(self, base_stg,
                                                     edit_closed):
        delta = diff_stg(base_stg, edit_closed)
        assert delta.added_signals == ("xprobe",)
        assert delta.added_transitions == ("xprobe+", "xprobe-")
        assert delta.added_places == ("p_xprobe0", "p_xprobe1")
        assert len(delta.added_arcs) == 4
        assert delta.additive and not delta.identical
        assert not delta.removed_signals

    def test_arcs_are_sorted_pairs(self, base_stg, edit_closed):
        delta = diff_stg(base_stg, edit_closed)
        assert list(delta.added_arcs) == sorted(delta.added_arcs)
        assert all(isinstance(arc, tuple) and len(arc) == 2
                   for arc in delta.added_arcs)


class TestRemovalsAndChanges:
    def test_removed_arc_is_not_additive(self, base_with_cycle,
                                         edit_removed_arc):
        delta = diff_stg(base_with_cycle, edit_removed_arc)
        assert delta.removed_arcs == (("p_xprobe1", "xprobe-"),)
        assert not delta.additive

    def test_signal_rename_is_removal_plus_addition(self, base_with_cycle,
                                                    edit_renamed):
        delta = diff_stg(base_with_cycle, edit_renamed)
        assert delta.removed_signals == ("xprobe",)
        assert delta.added_signals == ("yprobe",)
        assert not delta.additive

    def test_changed_initial_value(self, base_stg, copy_stg):
        edited = copy_stg(base_stg)
        signal = sorted(base_stg.signals)[0]
        edited.set_initial_values(dict(
            edited.initial_values,
            **{signal: not bool(edited.initial_values.get(signal))}))
        delta = diff_stg(base_stg, edited)
        assert delta.changed_initial_values == (signal,)
        assert not delta.additive

    def test_changed_signal_kind(self, base_with_cycle, copy_stg):
        edited = copy_stg(base_with_cycle)
        # Re-declare the probe as an output instead of internal.
        text = to_g_string(edited).replace(
            ".internal xprobe", ".outputs xprobe")
        edited = parse_g(text, name="edited")
        assert edited.kind_of("xprobe") != base_with_cycle.kind_of("xprobe")
        delta = diff_stg(base_with_cycle, edited)
        assert delta.changed_signal_kinds == ("xprobe",)


class TestSerialisation:
    def test_round_trip(self, base_stg, edit_closed):
        delta = diff_stg(base_stg, edit_closed)
        assert STGDelta.from_dict(delta.to_dict()) == delta

    def test_summary_counts(self, base_stg, edit_closed):
        summary = diff_stg(base_stg, edit_closed).summary()
        assert summary["added_signals"] == 1
        assert summary["added_transitions"] == 2
        assert summary["added_arcs"] == 4
        assert summary["removed_arcs"] == 0
