"""The persistent reachable-set cache: hits, invalidation, warm starts.

The invalidation contract mirrors the RunStore's: a fingerprint mismatch
(content or engine-config change) silently falls back to a cold
traversal, while a *corrupt* entry warns with :class:`BDDStoreWarning`
and recomputes -- never crashes, never serves garbage.
"""

import os
import warnings

import pytest

from repro import api
from repro.cache import (
    BDDStore,
    BDDStoreWarning,
    bind_pipeline,
    reachable_fingerprint,
)
from repro.core.pipeline import VerificationPipeline
from repro.stg.generators import build_example
from repro.stg.writer import to_g_string


@pytest.fixture
def store(tmp_path):
    return BDDStore(str(tmp_path / "bdd-store"))


def fresh_pipeline(scale=6):
    return VerificationPipeline(build_example("muller_pipeline", scale))


def bound_pipeline(store, scale=6, config=None):
    pipeline = fresh_pipeline(scale)
    config = config or api.EngineConfig()
    bind_pipeline(pipeline, store, name=pipeline.stg.name, config=config)
    return pipeline


class TestHitPath:
    def test_cold_run_persists_then_warm_run_hits(self, store):
        cold = bound_pipeline(store)
        cold_reached = cold.reached
        assert pipeline_name(cold) in store
        assert store.hits == 0

        warm = bound_pipeline(store)
        warm_reached = warm.reached
        assert store.hits == 1
        care = warm.encoding.all_variables
        assert (warm_reached.sat_count(care)
                == cold_reached.sat_count(care))

    def test_hit_restores_the_cold_traversal_stats(self, store):
        cold = bound_pipeline(store)
        cold.reached
        warm = bound_pipeline(store)
        warm.reached
        assert warm.traversal_stats.to_dict() == \
            cold.traversal_stats.to_dict()

    def test_hit_report_matches_cold_report_except_timings(self, store):
        cold = bound_pipeline(store).run()
        warm = bound_pipeline(store).run()
        cold_dict, warm_dict = cold.to_dict(), warm.to_dict()
        cold_dict["timings"] = warm_dict["timings"] = None
        assert cold_dict == warm_dict


class TestInvalidation:
    def test_fingerprint_covers_the_reachability_config(self):
        g_text = to_g_string(build_example("muller_pipeline", 4))
        base = reachable_fingerprint(g_text, api.EngineConfig())
        assert base == reachable_fingerprint(g_text, api.EngineConfig())
        assert base != reachable_fingerprint(
            g_text, api.EngineConfig(ordering="declaration"))
        assert base != reachable_fingerprint(
            g_text, api.EngineConfig(traversal_strategy="frontier"))
        assert base != reachable_fingerprint(g_text + "\n#x",
                                             api.EngineConfig())

    def test_execution_knobs_do_not_invalidate(self):
        g_text = to_g_string(build_example("muller_pipeline", 4))
        base = reachable_fingerprint(g_text, api.EngineConfig())
        assert base == reachable_fingerprint(
            g_text, api.EngineConfig(timeout=9.0,
                                     bdd_cache_dir="/elsewhere",
                                     arbitration_places=("p0",)))

    def test_config_mismatch_falls_back_to_cold_traversal(self, store):
        cold = bound_pipeline(store)
        cold.reached
        changed = bound_pipeline(
            store, config=api.EngineConfig(ordering="declaration"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # must NOT warn: plain miss
            changed.reached
        assert store.hits == 0
        assert store.invalidations == 1
        # The cold fallback computed (and re-persisted) a real result.
        assert changed.traversal_stats.iterations > 0

    def test_corrupt_entry_warns_and_recomputes(self, store):
        cold = bound_pipeline(store)
        cold.reached
        path = store._path(pipeline_name(cold))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("bddstore 2\nmeta {not json\ngarbage\n")
        recovered = bound_pipeline(store)
        with pytest.warns(BDDStoreWarning, match="corrupt BDD-store"):
            recovered.reached
        assert recovered.traversal_stats.iterations > 0
        care = recovered.encoding.all_variables
        assert (recovered.reached.sat_count(care)
                == cold.reached.sat_count(care))

    def test_wrong_store_header_is_corrupt(self, store):
        cold = bound_pipeline(store)
        cold.reached
        path = store._path(pipeline_name(cold))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("bddstore 999\n")
        with pytest.warns(BDDStoreWarning):
            bound_pipeline(store).reached

    def test_truncated_bdd_section_is_corrupt(self, store):
        cold = bound_pipeline(store)
        cold.reached
        path = store._path(pipeline_name(cold))
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:3])  # cut mid-serialisation
        with pytest.warns(BDDStoreWarning):
            bound_pipeline(store).reached


class TestNameSharing:
    """Two contents under one name coexist (the editor-loop shape: an
    edited spec usually keeps the base's ``.model`` name, and its run
    must not evict the base entry)."""

    def test_second_content_parks_on_the_overflow_path(self, store):
        bound_pipeline(store).reached
        changed = bound_pipeline(
            store, config=api.EngineConfig(ordering="declaration"))
        changed.reached  # miss + re-persist under the same name
        name = pipeline_name(changed)
        assert store._path(name) != store._alt_path(
            name, reachable_fingerprint(
                to_g_string(changed.stg),
                api.EngineConfig(ordering="declaration")))
        # Both contents now serve warm, neither evicted the other.
        bound_pipeline(store).reached
        bound_pipeline(
            store,
            config=api.EngineConfig(ordering="declaration")).reached
        assert store.hits == 2

    def test_corrupt_primary_is_reclaimed_not_overflowed(self, store):
        cold = bound_pipeline(store)
        cold.reached
        path = store._path(pipeline_name(cold))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("bddstore 2\nmeta {not json\ngarbage\n")
        recovered = bound_pipeline(store)
        with pytest.warns(BDDStoreWarning, match="corrupt BDD-store"):
            recovered.reached
        # The unreadable primary was overwritten in place, no overflow
        # file appeared, and the entry serves warm again.
        assert sorted(entry for entry in os.listdir(store.directory)
                      if entry.endswith(".bdd")) == [
            f"{pipeline_name(cold)}.bdd"]
        bound_pipeline(store).reached
        assert store.hits == 1


class TestWarmStart:
    def test_smaller_scale_warm_starts_the_next(self, store):
        small = bound_pipeline(store, scale=5)
        small.reached
        large = bound_pipeline(store, scale=6)
        large.reached
        assert store.warm_starts == 1
        assert large.traversal_stats.iterations > 0  # still a real run

    def test_warm_start_does_not_change_the_result(self, store):
        plain = fresh_pipeline(scale=6)
        plain_reached = plain.reached
        bound_pipeline(store, scale=5).reached
        warm = bound_pipeline(store, scale=6)
        warm.reached
        care = plain.encoding.all_variables
        assert (warm.reached.sat_count(care)
                == plain_reached.sat_count(care))
        stats = warm.traversal_stats.to_dict()
        plain_stats = plain.traversal_stats.to_dict()
        for volatile in ("wall_time_s", "peak_live_nodes",
                         "cache_lookups", "cache_hits"):
            stats.pop(volatile)
            plain_stats.pop(volatile)
        assert stats == plain_stats

    def test_unrelated_names_do_not_warm_start(self, store):
        manager_pipeline = fresh_pipeline(scale=4)
        assert store.warm_start("no-scale-suffix",
                                manager_pipeline.encoding.manager) is None
        assert store.warm_starts == 0


class TestEngineIntegration:
    def test_engine_config_dir_round_trips_through_the_facade(
            self, tmp_path):
        directory = str(tmp_path / "engine-store")
        stg = build_example("muller_pipeline", 5)
        config = api.EngineConfig(bdd_cache_dir=directory)
        first = api.run(stg, config)
        second = api.run(stg, config)
        assert first.traversal == second.traversal
        first_dict = first.report.to_dict()
        second_dict = second.report.to_dict()
        first_dict["timings"] = second_dict["timings"] = None
        assert first_dict == second_dict

    def test_different_checks_share_the_stored_traversal(self, tmp_path):
        directory = str(tmp_path / "engine-store")
        stg = build_example("muller_pipeline", 5)
        config = api.EngineConfig(bdd_cache_dir=directory)
        full = api.run(stg, config)
        subset = api.run(stg, config, checks=("csc",))
        assert subset.traversal == full.traversal  # served, not re-run
        assert subset.report.csc == full.report.csc


class TestSharedStore:
    def test_shared_returns_one_instance_per_directory(self, tmp_path):
        first = BDDStore.shared(str(tmp_path / "a"))
        again = BDDStore.shared(str(tmp_path / "a"))
        other = BDDStore.shared(str(tmp_path / "b"))
        assert first is again
        assert first is not other

    def test_engine_runs_aggregate_counters_on_the_shared_store(
            self, tmp_path):
        # The always-warm contract of repro.serve: the facade binds the
        # process-wide instance, so its counters span runs.
        directory = str(tmp_path / "engine-store")
        stg = build_example("muller_pipeline", 5)
        config = api.EngineConfig(bdd_cache_dir=directory)
        store = BDDStore.shared(directory)
        api.run(stg, config)
        assert store.misses == 1 and store.hits == 0
        api.run(stg, config, checks=("csc",))
        assert store.hits == 1  # second run served from the same object


def pipeline_name(pipeline) -> str:
    return pipeline.stg.name
