"""Tests for witness (firing-sequence) extraction and the liveness phase."""

import pytest

from repro.core import ImplementabilityChecker
from repro.core.csc import compute_regions
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import symbolic_traversal
from repro.core.witness import WitnessError, explain_state, find_firing_sequence
from repro.stg.generators import (
    csc_violation_example,
    fake_conflict_d1,
    handshake,
    muller_pipeline,
    mutex_element,
    vme_read_cycle,
)


def setup(stg):
    encoding = SymbolicEncoding(stg)
    image = SymbolicImage(encoding)
    reached, _ = symbolic_traversal(encoding, image=image)
    return encoding, image, reached


class TestFindFiringSequence:
    def test_empty_sequence_for_initial_state(self):
        stg = handshake()
        encoding, image, _ = setup(stg)
        assert find_firing_sequence(encoding, encoding.initial_state(),
                                    image) == []

    def test_sequence_to_specific_code(self):
        stg = handshake()
        encoding, image, _ = setup(stg)
        target = encoding.signal("r") & encoding.signal("a")
        sequence = find_firing_sequence(encoding, target, image)
        assert sequence == ["r+", "a+"]

    def test_sequence_is_replayable_on_the_net(self):
        stg = vme_read_cycle()
        encoding, image, reached = setup(stg)
        charfun = image.charfun
        # Target: the famous CSC-conflict code on its quiescent side.
        regions = compute_regions(encoding, reached, charfun, "d")
        target = regions.qr_minus_states & regions.contradictory_codes
        sequence = find_firing_sequence(encoding, target, image)
        assert sequence
        marking = stg.initial_marking()
        values = dict(stg.initial_state_vector())
        for transition in sequence:
            assert stg.net.is_enabled(transition, marking)
            marking = stg.net.fire(transition, marking)
            label = stg.label_of(transition)
            values[label.signal] = label.target_value
        final = encoding.state_minterm(marking, values)
        assert final <= target

    def test_shortest_sequence_length(self):
        stg = muller_pipeline(3)
        encoding, image, _ = setup(stg)
        # Reaching c3=1 requires the wave to traverse all four signals.
        target = encoding.signal("c3")
        sequence = find_firing_sequence(encoding, target, image)
        assert len(sequence) == 4
        assert sequence == ["c0+", "c1+", "c2+", "c3+"]

    def test_unreachable_target_raises(self):
        stg = handshake()
        encoding, image, _ = setup(stg)
        # r and a can never be 1 with the token back on the initial place.
        impossible = (encoding.signal("r") & encoding.signal("a")
                      & encoding.place("<a-,r+>"))
        with pytest.raises(WitnessError):
            find_firing_sequence(encoding, impossible, image)

    def test_witness_to_deadlock(self):
        stg = fake_conflict_d1()
        encoding, image, reached = setup(stg)
        from repro.core.deadlock import deadlock_states

        dead = deadlock_states(encoding, reached, image.charfun)
        sequence = find_firing_sequence(encoding, dead, image)
        assert len(sequence) == 3  # one interleaving of a/b plus c+
        assert sequence[-1] == "c+"

    def test_explain_state(self):
        stg = handshake()
        encoding, image, _ = setup(stg)
        info = explain_state(encoding, encoding.initial_state())
        assert info["code"] == {"r": False, "a": False}
        with pytest.raises(WitnessError):
            explain_state(encoding, encoding.manager.false)


class TestLivenessPhase:
    def test_liveness_verdicts_added(self):
        report = ImplementabilityChecker(mutex_element(),
                                         arbitration_places=["p_me"],
                                         include_liveness=True).check()
        names = {verdict.name for verdict in report.verdicts}
        assert "deadlock freedom" in names
        assert "reversibility" in names
        assert "live" in report.timings
        assert all(verdict.holds for verdict in report.verdicts
                   if verdict.name in ("deadlock freedom", "reversibility"))

    def test_liveness_failure_reported(self):
        report = ImplementabilityChecker(fake_conflict_d1(),
                                         include_liveness=True).check()
        by_name = {verdict.name: verdict for verdict in report.verdicts}
        assert not by_name["deadlock freedom"].holds
        assert not by_name["reversibility"].holds

    def test_liveness_not_included_by_default(self):
        report = ImplementabilityChecker(csc_violation_example()).check()
        names = {verdict.name for verdict in report.verdicts}
        assert "deadlock freedom" not in names
        assert "live" not in report.timings
