"""Tests of the symbolic property checks (consistency, safeness,
persistency, CSC, determinism, complementary sequences, fake conflicts)."""

import pytest

from repro.core.consistency import check_consistency
from repro.core.csc import check_csc, compute_regions
from repro.core.encoding import SymbolicEncoding
from repro.core.fake_conflicts import classify_conflicts
from repro.core.image import SymbolicImage
from repro.core.persistency import (
    check_signal_persistency,
    check_transition_persistency,
)
from repro.core.reducibility import (
    check_complementary_input_sequences,
    check_determinism,
)
from repro.core.safeness import check_safeness
from repro.core.traversal import symbolic_traversal
from repro.stg import STG, SignalKind
from repro.stg.generators import (
    asymmetric_fake_conflict_example,
    csc_resolved_example,
    csc_violation_example,
    fake_conflict_d1,
    fake_conflict_d2,
    handshake,
    inconsistent_example,
    irreducible_csc_example,
    master_read,
    muller_pipeline,
    mutex_arbitration_places,
    mutex_element,
    output_disabled_by_input,
)


def symbolic_setup(stg):
    encoding = SymbolicEncoding(stg)
    image = SymbolicImage(encoding)
    reached, _ = symbolic_traversal(encoding, image=image)
    return encoding, image, reached


class TestConsistency:
    @pytest.mark.parametrize("factory, expected", [
        (handshake, True),
        (mutex_element, True),
        (inconsistent_example, False),
        (csc_violation_example, True),
        (lambda: muller_pipeline(4), True),
    ], ids=["handshake", "mutex", "inconsistent", "csc_viol", "pipeline4"])
    def test_verdicts(self, factory, expected):
        stg = factory()
        encoding, image, reached = symbolic_setup(stg)
        result = check_consistency(encoding, reached, image.charfun)
        assert result.consistent is expected

    def test_violating_signal_and_witness(self):
        stg = inconsistent_example()
        encoding, image, reached = symbolic_setup(stg)
        result = check_consistency(encoding, reached, image.charfun)
        assert result.violating_signals == ["b"]
        witness = result.witnesses["b"]
        assert witness["code"]["b"] is True  # b+ enabled while b already 1

    def test_wrong_initial_value_detected(self):
        stg = handshake()
        stg.set_initial_value("r", True)  # r+ initially enabled while r=1
        encoding, image, reached = symbolic_setup(stg)
        result = check_consistency(encoding, reached, image.charfun)
        assert not result.consistent
        assert "r" in result.violating_signals


class TestSafeness:
    @pytest.mark.parametrize("factory", [
        handshake, mutex_element, lambda: muller_pipeline(4),
        lambda: master_read(2),
    ], ids=["handshake", "mutex", "pipeline4", "master_read2"])
    def test_safe_examples(self, factory):
        stg = factory()
        encoding, image, reached = symbolic_setup(stg)
        assert check_safeness(encoding, reached, image.charfun).safe

    def test_unsafe_net_detected(self):
        # Two producers feed the same place without consuming it: the second
        # firing overflows the shared place.
        stg = STG("unsafe")
        stg.add_signal("a", SignalKind.INPUT, initial_value=False)
        stg.add_signal("b", SignalKind.INPUT, initial_value=False)
        stg.add_place("p_a", tokens=1)
        stg.add_place("p_b", tokens=1)
        stg.add_place("p_shared")
        stg.ensure_transition("a+")
        stg.ensure_transition("b+")
        stg.add_arc("p_a", "a+")
        stg.add_arc("p_b", "b+")
        stg.add_arc("a+", "p_shared")
        stg.add_arc("b+", "p_shared")
        encoding, image, reached = symbolic_setup(stg)
        result = check_safeness(encoding, reached, image.charfun)
        assert not result.safe
        assert any(place == "p_shared" for _, place in result.overflows)
        assert result.witness is not None


class TestPersistency:
    def test_marked_graphs_are_persistent(self):
        for stg in (muller_pipeline(4), master_read(2)):
            encoding, image, reached = symbolic_setup(stg)
            assert check_signal_persistency(encoding, reached, image).persistent
            assert check_transition_persistency(encoding, reached, image).persistent

    def test_output_disabled_by_input(self):
        stg = output_disabled_by_input()
        encoding, image, reached = symbolic_setup(stg)
        result = check_signal_persistency(encoding, reached, image)
        assert not result.persistent
        assert ("a+", "b+") in result.violating_pairs()
        witness = result.violations[0].witness
        assert witness is not None

    def test_mutex_needs_arbitration(self):
        stg = mutex_element()
        encoding, image, reached = symbolic_setup(stg)
        plain = check_signal_persistency(encoding, reached, image)
        assert not plain.persistent
        tolerant = check_signal_persistency(
            encoding, reached, image,
            arbitration_places=mutex_arbitration_places(stg))
        assert tolerant.persistent
        assert tolerant.arbitration_skips > 0

    def test_fake_conflict_d1_signal_persistent_but_not_transition_persistent(self):
        stg = fake_conflict_d1()
        encoding, image, reached = symbolic_setup(stg)
        assert check_signal_persistency(encoding, reached, image).persistent
        transition_level = check_transition_persistency(encoding, reached, image)
        assert not transition_level.persistent
        assert ("a+", "b+/2") in transition_level.violating_pairs()

    def test_input_choice_allowed(self):
        stg = irreducible_csc_example()
        encoding, image, reached = symbolic_setup(stg)
        assert check_signal_persistency(encoding, reached, image).persistent

    def test_asymmetric_fake_conflict_violates_persistency(self):
        stg = asymmetric_fake_conflict_example()
        encoding, image, reached = symbolic_setup(stg)
        assert not check_signal_persistency(encoding, reached, image).persistent


class TestCSC:
    @pytest.mark.parametrize("factory, expect_csc, expect_usc", [
        (handshake, True, True),
        (mutex_element, True, True),
        (csc_violation_example, False, False),
        (csc_resolved_example, True, True),
        (irreducible_csc_example, False, False),
        (lambda: muller_pipeline(3), True, True),
    ], ids=["handshake", "mutex", "csc_viol", "csc_resolved", "irreducible",
            "pipeline3"])
    def test_verdicts(self, factory, expect_csc, expect_usc):
        stg = factory()
        encoding, image, reached = symbolic_setup(stg)
        result = check_csc(encoding, reached, image.charfun)
        assert result.csc is expect_csc
        assert result.usc is expect_usc

    def test_violating_signals_and_witness_code(self):
        stg = csc_violation_example()
        encoding, image, reached = symbolic_setup(stg)
        result = check_csc(encoding, reached, image.charfun)
        assert set(result.violating_signals) == {"b", "c"}
        witness = result.witnesses["b"]["code"]
        assert witness == {"a": True, "b": False, "c": False}

    def test_regions_partition_reached_set(self):
        stg = mutex_element()
        encoding, image, reached = symbolic_setup(stg)
        for signal in stg.signals:
            regions = compute_regions(encoding, reached, image.charfun, signal)
            union = (regions.er_plus_states | regions.er_minus_states
                     | regions.qr_plus_states | regions.qr_minus_states)
            assert union == reached

    def test_only_requested_signals_checked(self):
        stg = csc_violation_example()
        encoding, image, reached = symbolic_setup(stg)
        result = check_csc(encoding, reached, image.charfun, signals=["b"])
        assert result.violating_signals == ["b"]


class TestReducibility:
    def test_deterministic_examples(self):
        for factory in (handshake, mutex_element, csc_violation_example):
            stg = factory()
            encoding, image, reached = symbolic_setup(stg)
            assert check_determinism(encoding, reached, image.charfun).deterministic

    def test_nondeterministic_same_label_different_effect(self):
        # Two a+ transitions enabled in the same state with different
        # postsets: a real nondeterminism.
        stg = STG("nondet")
        stg.add_signal("a", SignalKind.INPUT, initial_value=False)
        stg.add_signal("o", SignalKind.OUTPUT, initial_value=False)
        stg.add_place("p0", tokens=1)
        stg.ensure_transition("a+")
        stg.ensure_transition("a+/2")
        stg.add_arc("p0", "a+")
        stg.add_arc("p0", "a+/2")
        stg.connect("a+", "o+")
        stg.connect("a+/2", "a-")
        encoding, image, reached = symbolic_setup(stg)
        result = check_determinism(encoding, reached, image.charfun)
        assert not result.deterministic
        assert ("a+", "a+/2") in result.violating_pairs

    def test_csc_violation_is_complementary_free(self):
        stg = csc_violation_example()
        encoding, image, reached = symbolic_setup(stg)
        assert check_complementary_input_sequences(encoding, reached, image).free

    def test_irreducible_example_detected(self):
        stg = irreducible_csc_example()
        encoding, image, reached = symbolic_setup(stg)
        result = check_complementary_input_sequences(encoding, reached, image)
        assert not result.free
        assert result.offending_signals == ["o"]

    def test_csc_clean_examples_trivially_free(self):
        for factory in (handshake, mutex_element, lambda: muller_pipeline(3)):
            stg = factory()
            encoding, image, reached = symbolic_setup(stg)
            assert check_complementary_input_sequences(
                encoding, reached, image).free


class TestFakeConflicts:
    def test_d1_symmetric_fake(self):
        stg = fake_conflict_d1()
        encoding, image, reached = symbolic_setup(stg)
        result = classify_conflicts(encoding, reached, image)
        assert len(result.symmetric_fake) == 1
        assert not result.fake_free(stg)

    def test_d2_no_conflicts(self):
        stg = fake_conflict_d2()
        encoding, image, reached = symbolic_setup(stg)
        result = classify_conflicts(encoding, reached, image)
        assert result.classifications == []
        assert result.fake_free(stg)

    def test_asymmetric_fake_conflict(self):
        stg = asymmetric_fake_conflict_example()
        encoding, image, reached = symbolic_setup(stg)
        result = classify_conflicts(encoding, reached, image)
        assert len(result.asymmetric_fake) == 1
        assert not result.fake_free(stg)

    def test_mutex_real_conflict_is_fake_free(self):
        stg = mutex_element()
        encoding, image, reached = symbolic_setup(stg)
        result = classify_conflicts(encoding, reached, image)
        assert result.fake_free(stg)
        real = [c for c in result.classifications if c.is_real]
        assert {(c.first, c.second) for c in real} == {("g1+", "g2+")}
