"""Tests for characteristic functions and the symbolic transition function.

The symbolic firing is validated against the explicit Petri-net/STG firing
rule state by state on several examples, which is the strongest functional
guarantee the rest of the engine builds upon.
"""

import pytest

from repro.core.charfun import CharacteristicFunctions
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.sg import build_state_graph
from repro.stg.generators import (
    csc_violation_example,
    fake_conflict_d1,
    handshake,
    irreducible_csc_example,
    master_read,
    muller_pipeline,
    mutex_element,
)


@pytest.fixture
def mutex_setup():
    stg = mutex_element()
    encoding = SymbolicEncoding(stg)
    return stg, encoding, CharacteristicFunctions(encoding), SymbolicImage(encoding)


class TestCharacteristicFunctions:
    def test_enabled_cube(self, mutex_setup):
        stg, encoding, charfun, _ = mutex_setup
        enabled = charfun.enabled("g1+")
        # g1+ needs its request place and the shared mutual exclusion place.
        assert set(enabled.support()) == {
            encoding.place_variable("<r1+,g1+>"),
            encoding.place_variable("p_me"),
        }

    def test_enabled_matches_markings(self, mutex_setup):
        stg, encoding, charfun, _ = mutex_setup
        graph = build_state_graph(stg).graph
        for state in graph.states:
            minterm = encoding.marking_minterm(state.marking)
            for transition in stg.transitions:
                symbolically_enabled = not (
                    minterm & charfun.enabled(transition)).is_false()
                assert symbolically_enabled == stg.net.is_enabled(
                    transition, state.marking)

    def test_npm_nsm_asm_supports(self, mutex_setup):
        stg, encoding, charfun, _ = mutex_setup
        for transition in stg.transitions:
            preset = {encoding.place_variable(p)
                      for p in stg.net.preset_of_transition(transition)}
            postset = {encoding.place_variable(p)
                       for p in stg.net.postset_of_transition(transition)}
            assert set(charfun.no_predecessor_marked(transition).support()) == preset
            assert set(charfun.all_successors_marked(transition).support()) == postset
            assert set(charfun.no_successor_marked(transition).support()) == postset

    def test_signal_enabled_is_union(self, mutex_setup):
        stg, encoding, charfun, _ = mutex_setup
        union = charfun.enabled("r1+") | charfun.enabled("r1-")
        assert charfun.signal_enabled("r1") == union

    def test_generic_enabled_selects_polarity(self):
        stg = csc_violation_example()
        encoding = SymbolicEncoding(stg)
        charfun = CharacteristicFunctions(encoding)
        generic = charfun.generic_enabled("a", "+")
        assert generic == charfun.enabled("a+") | charfun.enabled("a+/2")


@pytest.mark.parametrize("factory", [
    handshake,
    mutex_element,
    csc_violation_example,
    irreducible_csc_example,
    fake_conflict_d1,
    lambda: muller_pipeline(3),
    lambda: master_read(2),
], ids=["handshake", "mutex", "csc_viol", "irreducible", "fake_d1",
        "pipeline3", "master_read2"])
class TestImageAgainstExplicitFiring:
    def test_forward_image_matches_explicit_firing(self, factory):
        stg = factory()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        graph = build_state_graph(stg).graph
        for state in graph.states:
            source = encoding.state_minterm(
                state.marking,
                {s: state.value_of(s) for s in stg.signals})
            for transition, successor in graph.successors(state):
                fired = image.fire(source, transition)
                expected = encoding.state_minterm(
                    successor.marking,
                    {s: successor.value_of(s) for s in stg.signals})
                assert fired == expected, (stg.name, transition)

    def test_forward_image_empty_for_disabled_transitions(self, factory):
        stg = factory()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        graph = build_state_graph(stg).graph
        for state in graph.states[:10]:
            source = encoding.state_minterm(
                state.marking,
                {s: state.value_of(s) for s in stg.signals})
            enabled = set(graph.enabled_transitions(state))
            for transition in stg.transitions:
                if transition in enabled:
                    continue
                assert image.fire(source, transition).is_false()

    def test_backward_image_inverts_forward(self, factory):
        stg = factory()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        graph = build_state_graph(stg).graph
        for state in graph.states:
            source = encoding.state_minterm(
                state.marking,
                {s: state.value_of(s) for s in stg.signals})
            for transition, successor in graph.successors(state):
                target = encoding.state_minterm(
                    successor.marking,
                    {s: successor.value_of(s) for s in stg.signals})
                assert image.fire_backward(target, transition) == source


class TestImageSets:
    def test_image_over_all_transitions(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        initial = encoding.initial_state()
        successors = image.image(initial)
        assert encoding.count_states(successors) == 1  # only r+ enabled

    def test_preimage_of_initial_state(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        initial = encoding.initial_state()
        predecessors = image.preimage(initial)
        # Only a- leads back to the initial state.
        assert encoding.count_states(predecessors) == 1

    def test_input_transitions_listed(self):
        stg = mutex_element()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        assert set(image.input_transitions()) == {
            "r1+", "r1-", "r2+", "r2-"}

    def test_image_of_empty_set_is_empty(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        assert image.image(encoding.manager.false).is_false()
        assert image.preimage(encoding.manager.false).is_false()


class TestBackwardNetFiring:
    """fire_net_backward inverts fire_net (both read one _FirePlan)."""

    def test_net_backward_recovers_the_source_marking(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        source = encoding.marking_minterm(stg.initial_marking())
        for transition in stg.transitions:
            forward = image.fire_net(source, transition)
            if forward.is_false():
                continue
            back = image.fire_net_backward(forward, transition)
            # The source marking is among the predecessors.
            assert not (back & source).is_false()

    def test_net_backward_of_unreachable_target_is_empty(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        # States where no postset place of r+ is marked have no r+
        # predecessor.
        place = encoding.place_variable
        postset = stg.net.postset_of_transition("r+")
        empty_post = encoding.manager.cube(
            {place(p): False for p in postset})
        assert image.fire_net_backward(empty_post, "r+").is_false()
