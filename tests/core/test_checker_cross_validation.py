"""Cross-validation: the symbolic checker must agree with the explicit one.

This is the central correctness argument of the reproduction: on every
specification small enough to enumerate, the BDD-based engine and the
explicit state-graph engine must return identical verdicts for every
property and the same reachable-state count.
"""

import pytest

from repro.core import ImplementabilityChecker
from repro.report import ImplementabilityClass
from repro.sg import ExplicitChecker
from repro.stg.generators import (
    FIXED_EXAMPLES,
    master_read,
    muller_pipeline,
    mutex_arbitration_places,
    mutex_element,
    parallel_handshakes,
)

CROSS_VALIDATION_CASES = [
    ("handshake", lambda: FIXED_EXAMPLES["handshake"]()),
    ("mutex_element", lambda: FIXED_EXAMPLES["mutex_element"]()),
    ("inconsistent", lambda: FIXED_EXAMPLES["inconsistent"]()),
    ("output_disabled_by_input",
     lambda: FIXED_EXAMPLES["output_disabled_by_input"]()),
    ("csc_violation", lambda: FIXED_EXAMPLES["csc_violation"]()),
    ("csc_resolved", lambda: FIXED_EXAMPLES["csc_resolved"]()),
    ("irreducible_csc", lambda: FIXED_EXAMPLES["irreducible_csc"]()),
    ("fake_conflict_d1", lambda: FIXED_EXAMPLES["fake_conflict_d1"]()),
    ("fake_conflict_d2", lambda: FIXED_EXAMPLES["fake_conflict_d2"]()),
    ("asymmetric_fake_conflict",
     lambda: FIXED_EXAMPLES["asymmetric_fake_conflict"]()),
    ("muller_pipeline_4", lambda: muller_pipeline(4)),
    ("master_read_2", lambda: master_read(2)),
    ("parallel_handshakes_3", lambda: parallel_handshakes(3)),
    ("mutex_3", lambda: mutex_element(3)),
]

# Fields compared on every specification; the coding-related fields are
# only compared on consistent specifications because the state graph of an
# inconsistent STG is not well defined (the explicit builder keeps firing
# through the violation while the symbolic transition function drops the
# offending successors, as in the paper).
ALWAYS_COMPARED_FIELDS = [
    "consistent",
    "output_persistent",
    "fake_free",
]
CONSISTENT_ONLY_FIELDS = [
    "csc",
    "usc",
    "deterministic",
    "complementary_free",
]


@pytest.mark.parametrize("name, factory", CROSS_VALIDATION_CASES,
                         ids=[name for name, _ in CROSS_VALIDATION_CASES])
class TestSymbolicAgreesWithExplicit:
    def test_property_verdicts_agree(self, name, factory):
        stg = factory()
        symbolic = ImplementabilityChecker(stg).check()
        explicit = ExplicitChecker(stg).check()
        for field in ALWAYS_COMPARED_FIELDS:
            assert getattr(symbolic, field) == getattr(explicit, field), field
        if symbolic.consistent:
            for field in CONSISTENT_ONLY_FIELDS:
                assert getattr(symbolic, field) == getattr(explicit, field), field

    def test_state_counts_agree_for_consistent_specs(self, name, factory):
        stg = factory()
        symbolic = ImplementabilityChecker(stg).check()
        explicit = ExplicitChecker(stg).check()
        if symbolic.consistent:
            assert symbolic.num_states == explicit.num_states

    def test_classification_agrees(self, name, factory):
        stg = factory()
        symbolic = ImplementabilityChecker(stg).check()
        explicit = ExplicitChecker(stg).check()
        assert symbolic.classification == explicit.classification

    def test_commutativity_agrees_when_symbolic_decides(self, name, factory):
        stg = factory()
        symbolic = ImplementabilityChecker(stg).check()
        explicit = ExplicitChecker(stg).check()
        if symbolic.commutative is not None:
            assert symbolic.commutative == explicit.commutative


class TestSymbolicCheckerFacade:
    def test_report_metadata(self):
        report = ImplementabilityChecker(muller_pipeline(3)).check()
        assert report.method == "symbolic"
        assert report.num_states == 16
        assert report.bdd_peak_nodes >= report.bdd_final_nodes
        assert report.bdd_variables == len(muller_pipeline(3).places) + 4
        assert set(report.timings) == {"T+C", "NI-p", "CSC"}

    def test_classifications(self):
        assert ImplementabilityChecker(handshake_factory()).check() \
            .classification is ImplementabilityClass.GATE
        assert ImplementabilityChecker(
            FIXED_EXAMPLES["csc_violation"]()).check() \
            .classification is ImplementabilityClass.IO
        assert ImplementabilityChecker(
            FIXED_EXAMPLES["irreducible_csc"]()).check() \
            .classification is ImplementabilityClass.SI
        assert ImplementabilityChecker(
            FIXED_EXAMPLES["inconsistent"]()).check() \
            .classification is ImplementabilityClass.NOT_IMPLEMENTABLE

    def test_mutex_with_arbitration(self):
        stg = mutex_element()
        report = ImplementabilityChecker(
            stg, arbitration_places=mutex_arbitration_places(stg)).check()
        assert report.output_persistent
        assert report.classification is ImplementabilityClass.GATE

    def test_ordering_strategies_do_not_change_verdicts(self):
        for ordering in ("force", "structural", "declaration", "signals_first"):
            report = ImplementabilityChecker(muller_pipeline(3),
                                             ordering=ordering).check()
            assert report.num_states == 16
            assert report.classification is ImplementabilityClass.GATE

    def test_traversal_strategy_option(self):
        report = ImplementabilityChecker(muller_pipeline(3),
                                         traversal_strategy="frontier").check()
        assert report.num_states == 16

    def test_initial_values_override(self):
        stg = FIXED_EXAMPLES["handshake"]()
        stg._initial_values.clear()
        report = ImplementabilityChecker(
            stg, initial_values={"r": False, "a": False}).check()
        assert report.consistent

    def test_summary_rendering(self):
        report = ImplementabilityChecker(muller_pipeline(2)).check()
        text = report.summary()
        assert "symbolic" in text
        assert "BDD nodes" in text
        assert "gate-implementable" in text


def handshake_factory():
    return FIXED_EXAMPLES["handshake"]()
